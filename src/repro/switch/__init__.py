"""Simulated OpenFlow switch substrate (the OVS stand-in)."""

from repro.switch.datapath import SwitchLog, SwitchSim
from repro.switch.flow_table import FlowEntry, FlowTable, matches_overlap
from repro.switch.latency import (
    HARDWARE_PROFILE,
    OVS_LOADED_PROFILE,
    OVS_PROFILE,
    PROFILES,
    SLOW_VENDOR_PROFILE,
    SwitchTimingProfile,
)
from repro.switch.pipeline import Pipeline, PipelineResult

__all__ = [
    "FlowEntry",
    "FlowTable",
    "HARDWARE_PROFILE",
    "OVS_LOADED_PROFILE",
    "OVS_PROFILE",
    "PROFILES",
    "Pipeline",
    "PipelineResult",
    "SLOW_VENDOR_PROFILE",
    "SwitchLog",
    "SwitchSim",
    "SwitchTimingProfile",
    "matches_overlap",
]
