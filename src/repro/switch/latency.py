"""Switch timing profiles: how long rule changes take to apply.

The demo measures "update time of flow tables in OpenFlow switches (OVS)";
footnote 2 warns that multi-vendor *hardware* switches behave much worse
(citing Kuzniar, Peresini, Kostic, PAM'15).  These profiles encode that
spectrum so experiments can sweep from OVS-like microsecond installs to
TCAM-like heavy tails without touching the switch logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.latency_models import Constant, LatencyModel, LogNormal, Uniform


@dataclass(frozen=True)
class SwitchTimingProfile:
    """Per-message processing delays of a simulated switch (milliseconds)."""

    name: str = "ovs"
    flowmod_install: LatencyModel = field(default_factory=lambda: Constant(0.3))
    barrier_processing: LatencyModel = field(default_factory=lambda: Constant(0.05))
    control_processing: LatencyModel = field(default_factory=lambda: Constant(0.01))

    def mean_install_ms(self) -> float:
        return self.flowmod_install.mean()


#: OVS applying FlowMods from a warm userspace: sub-millisecond, low jitter.
OVS_PROFILE = SwitchTimingProfile(
    name="ovs",
    flowmod_install=Uniform(0.1, 0.5),
    barrier_processing=Constant(0.05),
)

#: OVS under CPU load: slower and noisier.
OVS_LOADED_PROFILE = SwitchTimingProfile(
    name="ovs-loaded",
    flowmod_install=LogNormal(median=1.0, sigma=0.6),
    barrier_processing=Constant(0.2),
)

#: Hardware TCAM updates: tens of ms with a heavy tail (PAM'15-like).
HARDWARE_PROFILE = SwitchTimingProfile(
    name="hardware",
    flowmod_install=LogNormal(median=30.0, sigma=0.8),
    barrier_processing=Constant(1.0),
)

#: A pathological slow vendor: barrier replies arrive before rules are in
#: the datapath on some hardware; we model the *honest* variant here, but
#: with extreme install times so schedulers feel the worst case.
SLOW_VENDOR_PROFILE = SwitchTimingProfile(
    name="slow-vendor",
    flowmod_install=LogNormal(median=200.0, sigma=1.0),
    barrier_processing=Constant(5.0),
)

PROFILES: dict[str, SwitchTimingProfile] = {
    profile.name: profile
    for profile in (
        OVS_PROFILE,
        OVS_LOADED_PROFILE,
        HARDWARE_PROFILE,
        SLOW_VENDOR_PROFILE,
    )
}
