"""Flow table with OpenFlow 1.3 add/modify/delete and matching semantics.

Implements the parts of the spec the experiments depend on:

* priority-ordered lookup (deterministic tie-break by insertion order),
* OFPFC_ADD replacing an entry with identical match+priority,
* OFPFC_MODIFY[_STRICT] / OFPFC_DELETE[_STRICT] aggregate vs strict
  semantics (non-strict operations apply to entries *subsumed* by the
  request's match),
* optional overlap checking (OFPFF_CHECK_OVERLAP),
* idle/hard timeout expiry,
* per-entry packet/byte counters,
* a capacity limit raising :class:`TableFullError` (hardware tables are
  small; Kuzniar et al. PAM'15 motivates modelling this).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Iterator, Mapping

from repro.errors import SwitchError, TableFullError
from repro.openflow.actions import Instruction
from repro.openflow.constants import FlowModFlags, FlowRemovedReason, Port
from repro.openflow.flowmod import FlowMod
from repro.openflow.match import Match, parse_ipv4_prefix


@dataclass
class FlowEntry:
    """One installed flow entry plus its counters."""

    match: Match
    priority: int
    instructions: tuple[Instruction, ...] = ()
    cookie: int = 0
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    flags: int = 0
    table_id: int = 0
    install_time: float = 0.0
    last_match_time: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    seq: int = 0  # insertion order, the deterministic tie-breaker

    def key(self) -> tuple[int, Match]:
        """Identity for ADD-replace and strict operations."""
        return (self.priority, self.match)

    def matches_packet(self, fields: Mapping[str, Any]) -> bool:
        return self.match.matches(fields)

    def expired(self, now: float) -> FlowRemovedReason | None:
        """Which timeout (if any) has fired by ``now``."""
        if self.hard_timeout and now >= self.install_time + self.hard_timeout:
            return FlowRemovedReason.HARD_TIMEOUT
        reference = max(self.last_match_time, self.install_time)
        if self.idle_timeout and now >= reference + self.idle_timeout:
            return FlowRemovedReason.IDLE_TIMEOUT
        return None

    def touch(self, now: float, n_bytes: int) -> None:
        self.last_match_time = now
        self.packet_count += 1
        self.byte_count += n_bytes


def matches_overlap(a: Match, b: Match) -> bool:
    """Can some packet match both ``a`` and ``b``?

    Fields set in only one match are wildcards in the other (compatible);
    fields set in both must be reconcilable.
    """
    a_fields, b_fields = a.set_fields(), b.set_fields()
    for name in a_fields.keys() & b_fields.keys():
        va, vb = a_fields[name], b_fields[name]
        if name in ("ipv4_src", "ipv4_dst"):
            addr_a, mask_a = parse_ipv4_prefix(str(va))
            addr_b, mask_b = parse_ipv4_prefix(str(vb))
            common = mask_a & mask_b
            if addr_a & common != addr_b & common:
                return False
        elif va != vb:
            return False
    return True


class FlowTable:
    """One flow table of a switch."""

    def __init__(self, table_id: int = 0, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise SwitchError(f"capacity must be positive, got {capacity}")
        self.table_id = table_id
        self.capacity = capacity
        self._entries: dict[tuple[int, Match], FlowEntry] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(sorted(self._entries.values(), key=lambda e: e.seq))

    def entries(self) -> list[FlowEntry]:
        return list(self)

    def find(self, match: Match, priority: int) -> FlowEntry | None:
        """Exact (strict) lookup by identity."""
        return self._entries.get((priority, match))

    # ------------------------------------------------------------------
    # mutation (FlowMod application)
    # ------------------------------------------------------------------
    def apply_flow_mod(self, mod: FlowMod, now: float = 0.0) -> list[FlowEntry]:
        """Apply a FlowMod; returns entries removed by a delete.

        Raises :class:`TableFullError` / :class:`SwitchError` on the error
        conditions the spec maps to OFPET_FLOW_MOD_FAILED.
        """
        if mod.is_add():
            self._add(mod, now)
            return []
        if mod.is_modify():
            self._modify(mod)
            return []
        return self._delete(mod)

    def _add(self, mod: FlowMod, now: float) -> None:
        key = (mod.priority, mod.match)
        if mod.flags & FlowModFlags.CHECK_OVERLAP:
            for entry in self._entries.values():
                if entry.priority == mod.priority and entry.key() != key and matches_overlap(
                    entry.match, mod.match
                ):
                    raise SwitchError(
                        f"overlap check failed against entry {entry.key()!r}"
                    )
        replacing = key in self._entries
        if not replacing and len(self._entries) >= self.capacity:
            raise TableFullError(
                f"table {self.table_id} is full ({self.capacity} entries)"
            )
        self._seq += 1
        self._entries[key] = FlowEntry(
            match=mod.match,
            priority=mod.priority,
            instructions=mod.instructions,
            cookie=mod.cookie,
            idle_timeout=float(mod.idle_timeout),
            hard_timeout=float(mod.hard_timeout),
            flags=mod.flags,
            table_id=self.table_id,
            install_time=now,
            last_match_time=now,
            seq=self._seq,
        )

    def _modify(self, mod: FlowMod) -> None:
        if mod.is_strict():
            entry = self._entries.get((mod.priority, mod.match))
            if entry is not None:
                entry.instructions = mod.instructions
                entry.cookie = mod.cookie or entry.cookie
            return
        for entry in self._entries.values():
            if self._aggregate_selected(entry, mod):
                entry.instructions = mod.instructions
                entry.cookie = mod.cookie or entry.cookie

    def _delete(self, mod: FlowMod) -> list[FlowEntry]:
        removed: list[FlowEntry] = []
        if mod.is_strict():
            entry = self._entries.pop((mod.priority, mod.match), None)
            if entry is not None and self._out_port_selected(entry, mod):
                removed.append(entry)
            elif entry is not None:  # out_port filter failed: put it back
                self._entries[entry.key()] = entry
            return removed
        for key, entry in list(self._entries.items()):
            if self._aggregate_selected(entry, mod) and self._out_port_selected(entry, mod):
                removed.append(self._entries.pop(key))
        return removed

    @staticmethod
    def _aggregate_selected(entry: FlowEntry, mod: FlowMod) -> bool:
        """Non-strict selection: the request's match subsumes the entry's."""
        if mod.cookie_mask and (entry.cookie & mod.cookie_mask) != (
            mod.cookie & mod.cookie_mask
        ):
            return False
        return mod.match.subsumes(entry.match)

    @staticmethod
    def _out_port_selected(entry: FlowEntry, mod: FlowMod) -> bool:
        if mod.out_port == int(Port.ANY):
            return True
        from repro.openflow.actions import ApplyActions, OutputAction, WriteActions

        for instruction in entry.instructions:
            if isinstance(instruction, (ApplyActions, WriteActions)):
                for action in instruction.actions:
                    if isinstance(action, OutputAction) and action.port == mod.out_port:
                        return True
        return False

    # ------------------------------------------------------------------
    # lookup and expiry
    # ------------------------------------------------------------------
    def lookup(
        self, fields: Mapping[str, Any], now: float = 0.0, touch: bool = True,
        n_bytes: int = 0,
    ) -> FlowEntry | None:
        """Highest-priority matching entry (counters updated when ``touch``)."""
        best: FlowEntry | None = None
        for entry in self._entries.values():
            # NB: IDLE_TIMEOUT is enum value 0 -- compare against None
            if entry.expired(now) is not None:
                continue
            if not entry.matches_packet(fields):
                continue
            if best is None or (entry.priority, -entry.seq) > (best.priority, -best.seq):
                best = entry
        if best is not None and touch:
            best.touch(now, n_bytes)
        return best

    def expire(self, now: float) -> list[tuple[FlowEntry, FlowRemovedReason]]:
        """Remove and return all entries whose timeout fired."""
        fired: list[tuple[FlowEntry, FlowRemovedReason]] = []
        for key, entry in list(self._entries.items()):
            reason = entry.expired(now)
            if reason is not None:
                del self._entries[key]
                fired.append((entry, reason))
        return fired
