"""Multi-table packet processing pipeline (OpenFlow 1.3 semantics subset).

Packets enter at table 0; instructions either apply actions immediately
(APPLY_ACTIONS), stage them in the action set (WRITE_ACTIONS, executed when
the pipeline ends), clear that set, or jump to a later table (GOTO_TABLE).
A table miss punts to the controller or drops, depending on switch
configuration (real switches express this with a table-miss entry; the
simulator makes it a knob).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SwitchError
from repro.openflow.actions import (
    Action,
    ApplyActions,
    ClearActions,
    GotoTable,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
    WriteActions,
)
from repro.dataplane.packets import Packet
from repro.switch.flow_table import FlowEntry, FlowTable


@dataclass
class PipelineResult:
    """What happened to one packet inside the switch."""

    packet: Packet
    out_ports: list[int] = field(default_factory=list)
    punt: bool = False            # table miss -> PacketIn
    dropped: bool = False         # explicit or implicit drop
    matched: list[FlowEntry] = field(default_factory=list)

    @property
    def forwarded(self) -> bool:
        return bool(self.out_ports)


class Pipeline:
    """Drives a packet through a switch's flow tables."""

    def __init__(self, tables: list[FlowTable], miss_behavior: str = "drop") -> None:
        if miss_behavior not in ("drop", "controller"):
            raise SwitchError(f"unknown miss behavior {miss_behavior!r}")
        self.tables = tables
        self.miss_behavior = miss_behavior

    def process(self, packet: Packet, in_port: int, now: float = 0.0) -> PipelineResult:
        """Run ``packet`` (arriving on ``in_port``) through the pipeline."""
        result = PipelineResult(packet=packet)
        action_set: list[Action] = []
        table_index = 0
        while table_index < len(self.tables):
            table = self.tables[table_index]
            entry = table.lookup(
                result.packet.fields(in_port=in_port),
                now=now,
                n_bytes=len(result.packet.payload) + 54,
            )
            if entry is None:
                if table_index == 0 and self.miss_behavior == "controller":
                    result.punt = True
                else:
                    result.dropped = not result.out_ports
                return result
            result.matched.append(entry)
            goto: int | None = None
            for instruction in entry.instructions:
                if isinstance(instruction, ApplyActions):
                    self._apply_actions(instruction.actions, result)
                elif isinstance(instruction, WriteActions):
                    action_set.extend(instruction.actions)
                elif isinstance(instruction, ClearActions):
                    action_set.clear()
                elif isinstance(instruction, GotoTable):
                    if instruction.table_id <= table_index:
                        raise SwitchError(
                            f"GOTO_TABLE must move forward "
                            f"({table_index} -> {instruction.table_id})"
                        )
                    goto = instruction.table_id
                else:  # pragma: no cover - closed set of instruction types
                    raise SwitchError(f"unsupported instruction {instruction!r}")
            if goto is None:
                break
            table_index = goto
        if action_set:
            self._apply_actions(tuple(action_set), result)
        result.dropped = not result.out_ports and not result.punt
        return result

    @staticmethod
    def _apply_actions(actions: tuple[Action, ...], result: PipelineResult) -> None:
        for action in actions:
            if isinstance(action, OutputAction):
                result.out_ports.append(action.port)
            elif isinstance(action, SetFieldAction):
                result.packet = result.packet.with_field(
                    action.field_name, action.value
                )
            elif isinstance(action, PushVlanAction):
                result.packet = result.packet.with_vlan(0)
            elif isinstance(action, PopVlanAction):
                result.packet = result.packet.without_vlan()
            else:
                raise SwitchError(f"unsupported action {action!r}")
