"""The simulated OpenFlow switch (stands in for OVS).

A :class:`SwitchSim` is bound to a control channel and a shared simulator.
Control messages are processed **in arrival order, one at a time** -- each
FlowMod occupies the switch for a sampled install latency -- which yields
the OpenFlow barrier contract for free: a BarrierRequest's reply is only
sent once every earlier message has finished applying.  That contract is
exactly what the paper's round FSM builds on.

Dataplane packets are processed by the flow-table pipeline; the hosting
network (``repro.netlab``) wires ``on_output`` to link delivery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SwitchError, TableFullError
from repro.openflow.constants import (
    ErrorType,
    FlowModFailedCode,
    FlowModFlags,
    FlowRemovedReason,
    MsgType,
    Port,
)
from repro.openflow.flowmod import FlowMod
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowRemoved,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
)
from repro.openflow.stats import FlowStatsEntry, FlowStatsReply, FlowStatsRequest
from repro.openflow.actions import ApplyActions, OutputAction
from repro.channel.base import ControlChannel
from repro.dataplane.packets import Packet
from repro.sim.simulator import Simulator
from repro.switch.flow_table import FlowTable
from repro.switch.latency import OVS_PROFILE, SwitchTimingProfile
from repro.switch.pipeline import Pipeline, PipelineResult


@dataclass
class SwitchLog:
    """Operational counters exposed to the metrics layer."""

    flow_mods_applied: int = 0
    flow_mods_failed: int = 0
    barriers_answered: int = 0
    packets_forwarded: int = 0
    packets_dropped: int = 0
    packets_punted: int = 0
    busy_time_ms: float = 0.0
    applied_log: list[tuple[float, str]] = field(default_factory=list)


class SwitchSim:
    """One simulated OpenFlow 1.3 switch."""

    def __init__(
        self,
        sim: Simulator,
        dpid: int,
        channel: ControlChannel,
        timing: SwitchTimingProfile = OVS_PROFILE,
        rng: random.Random | None = None,
        n_tables: int = 4,
        table_capacity: int = 10_000,
        miss_behavior: str = "drop",
        record_log: bool = False,
    ) -> None:
        self.sim = sim
        self.dpid = dpid
        self.channel = channel
        self.timing = timing
        self.rng = rng if rng is not None else random.Random(dpid)
        self.tables = [FlowTable(table_id=i, capacity=table_capacity) for i in range(n_tables)]
        self.pipeline = Pipeline(self.tables, miss_behavior=miss_behavior)
        self.log = SwitchLog()
        self.record_log = record_log
        self.connected = False
        #: called as ``on_output(switch, packet, out_port, now)``
        self.on_output: Callable[[SwitchSim, Packet, int, float], None] | None = None
        self._busy_until = 0.0
        channel.bind_switch(self.on_control_message)

    # ------------------------------------------------------------------
    # control plane: serialized message processing
    # ------------------------------------------------------------------
    def on_control_message(self, message: OpenFlowMessage) -> None:
        """Channel delivery callback: queue the message for processing."""
        delay = self._processing_delay(message)
        start = max(self.sim.now, self._busy_until)
        done = start + delay
        self.log.busy_time_ms += done - start
        self._busy_until = done
        self.sim.schedule_at(done, self._apply_message, message)

    def _processing_delay(self, message: OpenFlowMessage) -> float:
        if isinstance(message, FlowMod):
            return max(0.0, self.timing.flowmod_install.sample(self.rng))
        if isinstance(message, BarrierRequest):
            return max(0.0, self.timing.barrier_processing.sample(self.rng))
        return max(0.0, self.timing.control_processing.sample(self.rng))

    def _apply_message(self, message: OpenFlowMessage) -> None:
        if isinstance(message, Hello):
            self._send(Hello(xid=message.xid))
        elif isinstance(message, FeaturesRequest):
            self.connected = True
            self._send(
                FeaturesReply(
                    xid=message.xid,
                    datapath_id=self.dpid,
                    n_tables=len(self.tables),
                )
            )
        elif isinstance(message, EchoRequest):
            self._send(EchoReply(xid=message.xid, data=message.data))
        elif isinstance(message, FlowMod):
            self._apply_flow_mod(message)
        elif isinstance(message, BarrierRequest):
            self.log.barriers_answered += 1
            self._send(BarrierReply(xid=message.xid))
        elif isinstance(message, FlowStatsRequest):
            self._send(self._flow_stats(message))
        elif isinstance(message, PacketOut):
            self._apply_packet_out(message)
        else:
            self._send(
                ErrorMsg(
                    xid=message.xid,
                    err_type=int(ErrorType.BAD_REQUEST),
                    err_code=0,
                )
            )

    def _apply_flow_mod(self, mod: FlowMod) -> None:
        if not 0 <= mod.table_id < len(self.tables):
            self._flow_mod_failed(mod, FlowModFailedCode.BAD_TABLE_ID)
            return
        table = self.tables[mod.table_id]
        try:
            removed = table.apply_flow_mod(mod, now=self.sim.now)
        except TableFullError:
            self._flow_mod_failed(mod, FlowModFailedCode.TABLE_FULL)
            return
        except SwitchError:
            self._flow_mod_failed(mod, FlowModFailedCode.OVERLAP)
            return
        self.log.flow_mods_applied += 1
        if self.record_log:
            self.log.applied_log.append(
                (self.sim.now, f"{mod.command.name} prio={mod.priority}")
            )
        for entry in removed:
            if entry.flags & FlowModFlags.SEND_FLOW_REM:
                self._send(
                    FlowRemoved(
                        cookie=entry.cookie,
                        priority=entry.priority,
                        reason=int(FlowRemovedReason.DELETE),
                        table_id=entry.table_id,
                        packet_count=entry.packet_count,
                        byte_count=entry.byte_count,
                        match=entry.match,
                    )
                )

    def _flow_mod_failed(self, mod: FlowMod, code: FlowModFailedCode) -> None:
        self.log.flow_mods_failed += 1
        self._send(
            ErrorMsg(
                xid=mod.xid,
                err_type=int(ErrorType.FLOW_MOD_FAILED),
                err_code=int(code),
            )
        )

    def _flow_stats(self, request: FlowStatsRequest) -> FlowStatsReply:
        entries: list[FlowStatsEntry] = []
        tables = (
            self.tables
            if request.table_id == 0xFF
            else [self.tables[request.table_id]]
        )
        for table in tables:
            for entry in table:
                if not request.match.is_wildcard() and not request.match.subsumes(
                    entry.match
                ):
                    continue
                entries.append(
                    FlowStatsEntry(
                        table_id=table.table_id,
                        duration_sec=int(max(0.0, self.sim.now - entry.install_time) / 1000),
                        priority=entry.priority,
                        idle_timeout=int(entry.idle_timeout),
                        hard_timeout=int(entry.hard_timeout),
                        flags=entry.flags,
                        cookie=entry.cookie,
                        packet_count=entry.packet_count,
                        byte_count=entry.byte_count,
                        match=entry.match,
                        instructions=entry.instructions,
                    )
                )
        return FlowStatsReply(xid=request.xid, entries=tuple(entries))

    def _apply_packet_out(self, message: PacketOut) -> None:
        packet = Packet.from_bytes(message.data) if message.data else Packet()
        for action in message.actions:
            if isinstance(action, OutputAction):
                self._emit(packet, action.port)

    def _send(self, message: OpenFlowMessage) -> None:
        self.channel.to_controller(message)

    # ------------------------------------------------------------------
    # dataplane
    # ------------------------------------------------------------------
    def receive_packet(self, packet: Packet, in_port: int) -> PipelineResult:
        """Process a data packet arriving on ``in_port`` right now."""
        result = self.pipeline.process(packet, in_port, now=self.sim.now)
        if result.punt:
            self.log.packets_punted += 1
            self._send(
                PacketIn(
                    match=Match(in_port=in_port),
                    data=packet.to_bytes(),
                )
            )
        elif result.forwarded:
            self.log.packets_forwarded += 1
            for port in result.out_ports:
                if port == int(Port.IN_PORT):
                    port = in_port
                self._emit(result.packet, port)
        else:
            self.log.packets_dropped += 1
        return result

    def _emit(self, packet: Packet, out_port: int) -> None:
        if self.on_output is not None:
            self.on_output(self, packet, out_port, self.sim.now)

    # ------------------------------------------------------------------
    # introspection helpers (tests, REST layer)
    # ------------------------------------------------------------------
    def flow_count(self) -> int:
        return sum(len(table) for table in self.tables)

    def dump_flows(self, table_id: int | None = None) -> list[dict]:
        """ofctl-style dump of installed entries."""
        tables = self.tables if table_id is None else [self.tables[table_id]]
        return [
            {
                "table_id": table.table_id,
                "priority": entry.priority,
                "match": entry.match.to_ofctl(),
                "instructions": [ins.to_dict() for ins in entry.instructions],
                "packet_count": entry.packet_count,
            }
            for table in tables
            for entry in table
        ]

    @property
    def busy_until(self) -> float:
        """When the switch finishes its queued control messages."""
        return self._busy_until
