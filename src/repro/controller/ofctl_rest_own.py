"""Reimplementation of the paper's ``ofctl_rest_own.py`` app.

The demo extends Ryu's stock REST app with *multi-round* updates: a REST
message carries the old route, the new route, the waypoint and an optional
inter-round interval; the app computes the round schedule (WayUp in the
demo; Peacock and the baselines are selectable here), compiles it to
per-switch FlowMods and runs it through the barrier-fenced
:class:`~repro.controller.update_queue.UpdateQueueApp`.

REST message format, from the paper::

    {
      "oldpath": [<dp-num>, ...],
      "newpath": [<dp-num>, ...],
      "wp": <dp-num>,
      "interval": <time in ms>,
      <type>: [<OpenFlow message information>], ...
    }

The explicit per-type FlowMod bodies of the original are accepted too
(``"add"`` / ``"delete"`` lists of ofctl bodies override the compiler for
the listed switches); in the common case the app compiles the rules itself
from the topology, exactly like our scenario runner does.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import BadRequestError, ControllerError, UpdateModelError
from repro.controller.app import RyuLikeApp
from repro.controller.rules import (
    POLICY_PRIORITY,
    CompiledUpdate,
    compile_schedule,
    compile_two_phase,
)
from repro.controller.update_queue import UpdateExecution, UpdateQueueApp
from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.oneshot import oneshot_schedule
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule, sequential_schedule
from repro.core.twophase import two_phase_schedule
from repro.core.verify import Property, default_properties, verify_schedule
from repro.core.wayup import wayup_schedule
from repro.openflow.flowmod import FlowMod
from repro.openflow.match import Match
from repro.topology.graph import Topology

#: Scheduler registry: REST ``algorithm`` value -> schedule factory.
SCHEDULERS: dict[str, Callable[[UpdateProblem], UpdateSchedule]] = {
    "wayup": wayup_schedule,
    "peacock": peacock_schedule,
    "oneshot": oneshot_schedule,
    "greedy-slf": greedy_slf_schedule,
    "sequential": sequential_schedule,
}


def contract_properties(algorithm: str, problem: UpdateProblem) -> tuple[Property, ...]:
    """What each scheduler *promises* -- the properties it is verified for.

    WayUp guarantees waypoint enforcement; Peacock relaxed loop freedom;
    the greedy comparator strong loop freedom.  One-shot and sequential
    promise nothing beyond the default expectations, which is the point.
    """
    if algorithm == "wayup":
        return (Property.WPE, Property.BLACKHOLE)
    if algorithm == "peacock":
        return (Property.RLF, Property.BLACKHOLE)
    if algorithm == "greedy-slf":
        return (Property.SLF, Property.BLACKHOLE)
    return default_properties(problem)


class TransientUpdateApp(RyuLikeApp):
    """The paper's round-based update app (``ofctl_rest_own``)."""

    name = "ofctl_rest_own"

    def __init__(
        self,
        topology: Topology,
        update_queue: UpdateQueueApp,
        default_match: Match | None = None,
        verify: bool = True,
    ) -> None:
        super().__init__()
        self.topology = topology
        self.update_queue = update_queue
        self.default_match = default_match if default_match is not None else Match()
        self.verify = verify
        self.submitted: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # REST entry point
    # ------------------------------------------------------------------
    def submit_update(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST /update/<algorithm> -- returns a summary dict."""
        problem = self._parse_problem(body)
        algorithm = str(body.get("algorithm", "wayup")).lower()
        interval_ms = float(body.get("interval", 0.0))
        match = (
            Match.from_ofctl(body["match"]) if "match" in body else self.default_match
        )
        priority = int(body.get("priority", POLICY_PRIORITY))

        if algorithm == "two-phase":
            plan = two_phase_schedule(problem)
            compiled = compile_two_phase(self.topology, plan, match, priority=priority)
            summary = {
                "algorithm": algorithm,
                "rounds": len(compiled.rounds),
                "verified": "by-construction",
            }
        else:
            try:
                factory = SCHEDULERS[algorithm]
            except KeyError:
                raise BadRequestError(
                    f"unknown algorithm {algorithm!r}; "
                    f"pick one of {sorted(SCHEDULERS) + ['two-phase']}"
                ) from None
            try:
                schedule = factory(problem)
            except UpdateModelError as exc:
                raise BadRequestError(str(exc)) from exc
            summary = {
                "algorithm": algorithm,
                "rounds": schedule.n_rounds,
                "round_names": schedule.metadata.get("round_names"),
                "schedule": schedule.to_dict(),
            }
            if self.verify:
                properties = contract_properties(algorithm, problem)
                report = verify_schedule(schedule, properties=properties)
                summary["verified"] = report.ok
                summary["verified_properties"] = [p.value for p in properties]
                if not report.ok:
                    summary["violations"] = [str(v) for v in report.violations]
            compiled = compile_schedule(self.topology, schedule, match, priority=priority)

        self._apply_body_overrides(compiled, body)
        execution = self.update_queue.submit(
            compiled,
            interval_ms=interval_ms,
            metadata={"algorithm": algorithm, "problem": problem.to_dict()},
            use_barriers=bool(body.get("barriers", True)),
        )
        summary["update_id"] = execution.update_id
        summary["flow_mods"] = compiled.total_mods()
        self.submitted.append(summary)
        return summary

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_problem(body: Mapping[str, Any]) -> UpdateProblem:
        for key in ("oldpath", "newpath"):
            if key not in body:
                raise BadRequestError(f"update request needs {key!r}")
        try:
            return UpdateProblem(
                [int(v) for v in body["oldpath"]],
                [int(v) for v in body["newpath"]],
                waypoint=int(body["wp"]) if "wp" in body and body["wp"] is not None else None,
            )
        except (UpdateModelError, ValueError) as exc:
            raise BadRequestError(f"bad update request: {exc}") from exc

    def _apply_body_overrides(
        self, compiled: CompiledUpdate, body: Mapping[str, Any]
    ) -> None:
        """Honor explicit per-type FlowMod bodies from the original format.

        ``{"add": [<ofctl body with dpid>, ...], "delete": [...]}`` replaces
        the compiled FlowMods of the listed switches in the round where that
        switch is scheduled.
        """
        for command_key in ("add", "modify", "delete"):
            for entry in body.get(command_key, []) or []:
                if "dpid" not in entry:
                    raise BadRequestError(
                        f"{command_key!r} override without 'dpid': {entry!r}"
                    )
                dpid = int(entry["dpid"])
                mod = FlowMod.from_ofctl(entry, command=command_key.upper()
                                         if command_key != "add" else "ADD")
                for compiled_round in compiled.rounds:
                    if dpid in compiled_round.mods_by_dpid:
                        compiled_round.mods_by_dpid[dpid] = [mod]
                        break
                else:
                    raise BadRequestError(
                        f"override for dpid {dpid} which no round updates"
                    )

    def execution_of(self, update_id: str) -> UpdateExecution:
        """Completed execution record for ``update_id``."""
        if self.controller is None:
            raise ControllerError("app not registered")
        return self.update_queue.find_completed(update_id)
