"""Reimplementation of the paper's ``ofctl_rest_own.py`` app.

The demo extends Ryu's stock REST app with *multi-round* updates: a REST
message carries the old route, the new route, the waypoint and an optional
inter-round interval; the app computes the round schedule (WayUp in the
demo; Peacock and the baselines are selectable here), compiles it to
per-switch FlowMods and runs it through the barrier-fenced
:class:`~repro.controller.update_queue.UpdateQueueApp`.

REST message format, from the paper::

    {
      "oldpath": [<dp-num>, ...],
      "newpath": [<dp-num>, ...],
      "wp": <dp-num>,
      "interval": <time in ms>,
      <type>: [<OpenFlow message information>], ...
    }

The explicit per-type FlowMod bodies of the original are accepted too
(``"add"`` / ``"delete"`` lists of ofctl bodies override the compiler for
the listed switches); in the common case the app compiles the rules itself
from the topology, exactly like our scenario runner does.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import (
    BadRequestError,
    ControllerError,
    InfeasibleUpdateError,
    SchedulerSpecError,
    UpdateModelError,
    VerificationError,
)
from repro.controller.app import RyuLikeApp
from repro.controller.rules import (
    POLICY_PRIORITY,
    CompiledUpdate,
    compile_schedule,
    compile_two_phase,
)
from repro.controller.update_queue import UpdateExecution, UpdateQueueApp
from repro.core.api import execute_request, ScheduleRequest
from repro.core.problem import UpdateProblem
from repro.core.registry import REGISTRY, resolve_scheduler, scheduler_names
from repro.core.twophase import TwoPhaseSchedule
from repro.core.verify import default_properties
from repro.openflow.flowmod import FlowMod
from repro.openflow.match import Match
from repro.topology.graph import Topology


class TransientUpdateApp(RyuLikeApp):
    """The paper's round-based update app (``ofctl_rest_own``)."""

    name = "ofctl_rest_own"

    def __init__(
        self,
        topology: Topology,
        update_queue: UpdateQueueApp,
        default_match: Match | None = None,
        verify: bool = True,
    ) -> None:
        super().__init__()
        self.topology = topology
        self.update_queue = update_queue
        self.default_match = default_match if default_match is not None else Match()
        self.verify = verify
        self.submitted: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # REST entry point
    # ------------------------------------------------------------------
    def submit_update(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST /update/<algorithm> -- returns a summary dict."""
        problem = self._parse_problem(body)
        algorithm = str(body.get("algorithm", "wayup")).lower()
        interval_ms = float(body.get("interval", 0.0))
        match = (
            Match.from_ofctl(body["match"]) if "match" in body else self.default_match
        )
        priority = int(body.get("priority", POLICY_PRIORITY))

        try:
            scheduler = resolve_scheduler(algorithm)
        except SchedulerSpecError as exc:
            # a known scheduler with a bad spec (missing ':<props>', bad
            # param) gets the registry's precise message; a truly unknown
            # name gets the listing
            base = algorithm.partition("?")[0].partition(":")[0]
            if base in REGISTRY:
                raise BadRequestError(str(exc)) from None
            raise BadRequestError(
                f"unknown algorithm {algorithm!r}; "
                f"pick one of {scheduler_names()}"
            ) from None
        try:
            # verification policy of the update app: a scheduler is held to
            # its own guarantee, guarantee-free baselines to the problem's
            # default transient-security expectations (that gap is the demo)
            result = execute_request(ScheduleRequest(
                problem=problem,
                scheduler=scheduler.name,
                verify=self.verify,
                properties=(
                    None if scheduler.guarantee
                    else default_properties(problem)
                ),
            ))
        except (UpdateModelError, InfeasibleUpdateError, VerificationError) as exc:
            raise BadRequestError(str(exc)) from exc
        schedule = result.schedule
        if isinstance(schedule, TwoPhaseSchedule):
            compiled = compile_two_phase(
                self.topology, schedule, match, priority=priority
            )
            summary = {
                "algorithm": result.scheduler,
                "rounds": len(compiled.rounds),
                "verified": "by-construction",
            }
        else:
            summary = {
                "algorithm": result.scheduler,
                "rounds": schedule.n_rounds,
                "round_names": schedule.metadata.get("round_names"),
                "schedule": schedule.to_dict(),
            }
            if result.report is not None:
                summary["verified"] = result.report.ok
                summary["verified_properties"] = [
                    p.value for p in result.report.properties
                ]
                if not result.report.ok:
                    summary["violations"] = [
                        str(v) for v in result.report.violations
                    ]
            compiled = compile_schedule(self.topology, schedule, match, priority=priority)

        self._apply_body_overrides(compiled, body)
        execution = self.update_queue.submit(
            compiled,
            interval_ms=interval_ms,
            metadata={"algorithm": algorithm, "problem": problem.to_dict()},
            use_barriers=bool(body.get("barriers", True)),
        )
        summary["update_id"] = execution.update_id
        summary["flow_mods"] = compiled.total_mods()
        self.submitted.append(summary)
        return summary

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_problem(body: Mapping[str, Any]) -> UpdateProblem:
        for key in ("oldpath", "newpath"):
            if key not in body:
                raise BadRequestError(f"update request needs {key!r}")
        try:
            return UpdateProblem(
                [int(v) for v in body["oldpath"]],
                [int(v) for v in body["newpath"]],
                waypoint=int(body["wp"]) if "wp" in body and body["wp"] is not None else None,
            )
        except (UpdateModelError, ValueError) as exc:
            raise BadRequestError(f"bad update request: {exc}") from exc

    def _apply_body_overrides(
        self, compiled: CompiledUpdate, body: Mapping[str, Any]
    ) -> None:
        """Honor explicit per-type FlowMod bodies from the original format.

        ``{"add": [<ofctl body with dpid>, ...], "delete": [...]}`` replaces
        the compiled FlowMods of the listed switches in the round where that
        switch is scheduled.
        """
        for command_key in ("add", "modify", "delete"):
            for entry in body.get(command_key, []) or []:
                if "dpid" not in entry:
                    raise BadRequestError(
                        f"{command_key!r} override without 'dpid': {entry!r}"
                    )
                dpid = int(entry["dpid"])
                mod = FlowMod.from_ofctl(entry, command=command_key.upper()
                                         if command_key != "add" else "ADD")
                for compiled_round in compiled.rounds:
                    if dpid in compiled_round.mods_by_dpid:
                        compiled_round.mods_by_dpid[dpid] = [mod]
                        break
                else:
                    raise BadRequestError(
                        f"override for dpid {dpid} which no round updates"
                    )

    def execution_of(self, update_id: str) -> UpdateExecution:
        """Completed execution record for ``update_id``."""
        if self.controller is None:
            raise ControllerError("app not registered")
        return self.update_queue.find_completed(update_id)
