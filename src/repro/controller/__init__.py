"""Controller substrate: Ryu-like runtime, round FSM and REST apps."""

from repro.controller.app import RyuLikeApp
from repro.controller.core import Controller
from repro.controller.datapath_handle import Datapath
from repro.controller.events import (
    BarrierSeen,
    ControllerEvent,
    DatapathConnected,
    DatapathDisconnected,
    ErrorSeen,
    FlowRemovedSeen,
    PacketInSeen,
    UpdateCompleted,
    UpdateRoundCompleted,
)
from repro.controller.monitoring import MonitoringApp, RttStats
from repro.controller.ofctl_rest import OfctlRestApp, StatsFuture
from repro.controller.ofctl_rest_own import TransientUpdateApp
from repro.controller.rules import (
    POLICY_PRIORITY,
    TAGGED_PRIORITY,
    CompiledRound,
    CompiledUpdate,
    compile_initial_rules,
    compile_schedule,
    compile_two_phase,
)
from repro.controller.trace import ControlPlaneTrace, TraceEntry
from repro.controller.update_queue import (
    RoundTiming,
    UpdateExecution,
    UpdateQueueApp,
)

__all__ = [
    "BarrierSeen",
    "CompiledRound",
    "ControlPlaneTrace",
    "CompiledUpdate",
    "Controller",
    "ControllerEvent",
    "Datapath",
    "DatapathConnected",
    "DatapathDisconnected",
    "ErrorSeen",
    "FlowRemovedSeen",
    "MonitoringApp",
    "OfctlRestApp",
    "POLICY_PRIORITY",
    "PacketInSeen",
    "RoundTiming",
    "RttStats",
    "RyuLikeApp",
    "StatsFuture",
    "TAGGED_PRIORITY",
    "TraceEntry",
    "TransientUpdateApp",
    "UpdateCompleted",
    "UpdateExecution",
    "UpdateQueueApp",
    "UpdateRoundCompleted",
    "compile_initial_rules",
    "compile_schedule",
    "compile_two_phase",
]
