"""The paper's update message queue and round FSM (section 2, verbatim).

Quoting the prototype description: REST messages are enqueued; the
controller processes the head message starting at its first round; it sends
every switch of the round its OpenFlow messages, then a barrier request to
each, and waits.  Every barrier reply removes its source switch from the
round's pending set; when the set empties, the next round starts (after the
optional ``interval``); when no round remains, the message is dequeued and
the next message processed.

:class:`UpdateQueueApp` implements exactly that FSM on top of the
controller runtime, with timing instrumentation for the E2/E5 benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ControllerError
from repro.controller.app import RyuLikeApp
from repro.controller.datapath_handle import Datapath
from repro.controller.events import UpdateCompleted, UpdateRoundCompleted
from repro.controller.rules import CompiledUpdate
from repro.openflow.messages import BarrierReply


@dataclass
class RoundTiming:
    """Start/end instants of one executed round."""

    index: int
    started_ms: float
    finished_ms: float | None = None

    @property
    def duration_ms(self) -> float:
        if self.finished_ms is None:
            raise ControllerError(f"round {self.index} still running")
        return self.finished_ms - self.started_ms

    @property
    def running(self) -> bool:
        return self.finished_ms is None

    def to_dict(self) -> dict:
        """JSON-compatible dump that tolerates an unfinished round.

        Mid-update snapshots (churn metrics, live telemetry) dump timings
        while a round is still executing; ``duration_ms`` stays ``None``
        instead of raising until the round finishes.
        """
        return {
            "index": self.index,
            "started_ms": self.started_ms,
            "finished_ms": self.finished_ms,
            "duration_ms": (
                None if self.finished_ms is None else self.duration_ms
            ),
            "running": self.running,
        }


@dataclass
class UpdateExecution:
    """One queued update message plus its execution state."""

    update_id: str
    compiled: CompiledUpdate
    interval_ms: float = 0.0
    use_barriers: bool = True
    metadata: dict = field(default_factory=dict)
    current_round: int = -1
    pending_dpids: set = field(default_factory=set)
    barrier_xids: dict[int, Any] = field(default_factory=dict)  # xid -> dpid
    started_ms: float | None = None
    finished_ms: float | None = None
    round_timings: list[RoundTiming] = field(default_factory=list)
    errors: list[Any] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.compiled.rounds)

    @property
    def done(self) -> bool:
        return self.finished_ms is not None

    @property
    def duration_ms(self) -> float:
        if self.started_ms is None or self.finished_ms is None:
            raise ControllerError(f"update {self.update_id!r} not finished")
        return self.finished_ms - self.started_ms


class UpdateQueueApp(RyuLikeApp):
    """FIFO queue of compiled updates, executed round-by-round with barriers."""

    name = "update-queue"

    def __init__(self) -> None:
        super().__init__()
        self.queue: list[UpdateExecution] = []
        self.completed: list[UpdateExecution] = []
        self._id_counter = itertools.count(1)
        #: observers called with the completion events
        self.on_update_complete: list[Callable[[UpdateCompleted], None]] = []
        self.on_round_complete: list[Callable[[UpdateRoundCompleted], None]] = []

    # ------------------------------------------------------------------
    # enqueue / drive
    # ------------------------------------------------------------------
    def submit(
        self,
        compiled: CompiledUpdate,
        interval_ms: float = 0.0,
        update_id: str | None = None,
        metadata: dict | None = None,
        use_barriers: bool = True,
    ) -> UpdateExecution:
        """Queue a compiled update; starts immediately if the queue was idle.

        ``use_barriers=False`` is the E6 ablation: rounds are paced purely
        by ``interval_ms`` timers with no barrier fencing, so a slow switch
        can still be applying round ``r`` while round ``r+1`` ships --
        exactly the failure mode barriers exist to prevent.
        """
        if update_id is None:
            update_id = f"update-{next(self._id_counter)}"
        execution = UpdateExecution(
            update_id=update_id,
            compiled=compiled,
            interval_ms=interval_ms,
            use_barriers=use_barriers,
            metadata=dict(metadata or {}),
        )
        self.queue.append(execution)
        if len(self.queue) == 1:
            self._start_head()
        return execution

    def _controller(self):
        if self.controller is None:
            raise ControllerError("update queue app is not registered")
        return self.controller

    def _start_head(self) -> None:
        controller = self._controller()
        if not self.queue:
            return
        execution = self.queue[0]
        execution.started_ms = controller.sim.now
        self._start_round(execution, 0)

    def _start_round(self, execution: UpdateExecution, index: int) -> None:
        controller = self._controller()
        if index >= execution.n_rounds:
            self._finish_head(execution)
            return
        execution.current_round = index
        compiled_round = execution.compiled.rounds[index]
        execution.round_timings.append(
            RoundTiming(index=index, started_ms=controller.sim.now)
        )
        execution.pending_dpids = set(compiled_round.mods_by_dpid)
        if not execution.pending_dpids:
            self._complete_round(execution)
            return
        # Send each switch its FlowMods, then fence the round with barriers.
        for dpid in compiled_round.switches():
            datapath = controller.datapath(dpid)
            for mod in compiled_round.mods_by_dpid[dpid]:
                datapath.send_msg(mod.with_xid(0))
        if not execution.use_barriers:
            # Ablation: no fencing; the round "completes" immediately and
            # pacing falls entirely to the inter-round interval timer.
            execution.pending_dpids.clear()
            self._complete_round(execution)
            return
        for dpid in compiled_round.switches():
            datapath = controller.datapath(dpid)
            xid = datapath.send_barrier()
            execution.barrier_xids[xid] = dpid

    def on_barrier_reply(self, datapath: Datapath, message: BarrierReply) -> None:
        if not self.queue:
            return
        execution = self.queue[0]
        dpid = execution.barrier_xids.pop(message.xid, None)
        if dpid is None:
            return  # barrier from someone else's round
        execution.pending_dpids.discard(dpid)
        if not execution.pending_dpids:
            self._complete_round(execution)

    def _complete_round(self, execution: UpdateExecution) -> None:
        controller = self._controller()
        timing = execution.round_timings[-1]
        timing.finished_ms = controller.sim.now
        event = UpdateRoundCompleted(
            time_ms=controller.sim.now,
            update_id=execution.update_id,
            round_index=execution.current_round,
            duration_ms=timing.duration_ms,
        )
        for observer in self.on_round_complete:
            observer(event)
        next_round = execution.current_round + 1
        if execution.interval_ms > 0 and next_round < execution.n_rounds:
            controller.sim.schedule(
                execution.interval_ms, self._start_round, execution, next_round
            )
        else:
            self._start_round(execution, next_round)

    def _finish_head(self, execution: UpdateExecution) -> None:
        controller = self._controller()
        execution.finished_ms = controller.sim.now
        self.queue.pop(0)
        self.completed.append(execution)
        event = UpdateCompleted(
            time_ms=controller.sim.now,
            update_id=execution.update_id,
            rounds=execution.n_rounds,
            duration_ms=execution.duration_ms,
        )
        for observer in self.on_update_complete:
            observer(event)
        if self.queue:
            self._start_head()

    def on_error(self, datapath: Datapath, message: Any) -> None:
        if self.queue:
            self.queue[0].errors.append((datapath.dpid, message))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return bool(self.queue)

    def find_completed(self, update_id: str) -> UpdateExecution:
        for execution in self.completed:
            if execution.update_id == update_id:
                return execution
        raise ControllerError(f"no completed update {update_id!r}")
