"""Controller-side liveness and RTT monitoring (echo probing).

Real controllers continuously probe their switches with EchoRequests; the
measured control-channel RTT is exactly the quantity the cost model's
``rtt_ms`` parameter abstracts, so this app closes the loop: scenarios can
*measure* their channel and feed the estimate into
:class:`~repro.core.cost.CostModel` predictions instead of assuming one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.app import RyuLikeApp
from repro.controller.datapath_handle import Datapath
from repro.openflow.messages import EchoReply, EchoRequest


@dataclass
class RttStats:
    """Per-switch RTT samples in milliseconds."""

    samples: list[float] = field(default_factory=list)

    def record(self, rtt_ms: float) -> None:
        self.samples.append(rtt_ms)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean_ms(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def max_ms(self) -> float:
        return max(self.samples) if self.samples else 0.0


class MonitoringApp(RyuLikeApp):
    """Periodic echo probing of every connected switch.

    ``interval_ms <= 0`` disables the periodic loop; :meth:`probe` can
    still be called manually.  Probing stops automatically when the
    simulator drains (events are only scheduled while probes are pending
    or the loop is armed), so scenarios terminate.
    """

    name = "monitoring"

    def __init__(self, interval_ms: float = 0.0, max_probes: int = 0) -> None:
        super().__init__()
        self.interval_ms = interval_ms
        self.max_probes = max_probes
        self.rtt: dict[int, RttStats] = {}
        self._sent_at: dict[int, tuple[int, float]] = {}  # xid -> (dpid, t)
        self._probes_sent = 0
        self._armed = False

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe(self, datapath: Datapath) -> int:
        """Send one echo to ``datapath``; returns the xid."""
        assert self.controller is not None
        payload = self._probes_sent.to_bytes(4, "big")
        xid = datapath.send_msg(EchoRequest(data=payload))
        self._sent_at[xid] = (datapath.dpid, self.controller.sim.now)
        self._probes_sent += 1
        return xid

    def probe_all(self) -> int:
        """Probe every connected switch; returns how many were sent."""
        assert self.controller is not None
        count = 0
        for dpid in self.controller.connected_dpids:
            self.probe(self.controller.datapath(dpid))
            count += 1
        return count

    def start(self) -> None:
        """Arm the periodic loop (requires ``interval_ms > 0``)."""
        if self.interval_ms <= 0 or self._armed:
            return
        self._armed = True
        self._tick()

    def stop(self) -> None:
        self._armed = False

    def _tick(self) -> None:
        assert self.controller is not None
        if not self._armed:
            return
        if self.max_probes and self._probes_sent >= self.max_probes:
            self._armed = False
            return
        self.probe_all()
        self.controller.sim.schedule(self.interval_ms, self._tick)

    # ------------------------------------------------------------------
    # controller hooks
    # ------------------------------------------------------------------
    def on_echo_reply(self, datapath: Datapath, message: EchoReply) -> None:
        assert self.controller is not None
        sent = self._sent_at.pop(message.xid, None)
        if sent is None:
            return
        dpid, sent_at = sent
        self.rtt.setdefault(dpid, RttStats()).record(
            self.controller.sim.now - sent_at
        )

    def on_datapath_disconnected(self, dpid: int) -> None:
        self.rtt.pop(dpid, None)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def estimated_rtt_ms(self) -> float:
        """Fleet-wide mean RTT (feed this to :class:`CostModel.rtt_ms`)."""
        means = [stats.mean_ms() for stats in self.rtt.values() if stats.count]
        return sum(means) / len(means) if means else 0.0

    def slowest_switch(self) -> tuple[int, float] | None:
        """``(dpid, mean_rtt_ms)`` of the slowest monitored switch."""
        candidates = [
            (dpid, stats.mean_ms())
            for dpid, stats in self.rtt.items()
            if stats.count
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda item: item[1])
