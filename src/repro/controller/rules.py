"""Compile abstract update schedules into per-switch FlowMods.

The scheduling core reasons about node sequences; switches speak FlowMods
with matches and output ports.  Given a topology (for port numbers), a flow
match (the policy's traffic) and a schedule, :func:`compile_schedule`
produces, per round, the FlowMods each switch must apply:

* SWITCH nodes get an OFPFC_ADD with the same match+priority as the old
  rule -- per OpenFlow semantics the add *replaces* the old entry, which is
  the single-rule-per-node model of the paper,
* INSTALL nodes get a plain add,
* DELETE nodes get a strict delete.

:func:`compile_two_phase` materializes the Reitblatt baseline with VLAN
version tags: prepared switches match on the new tag, the ingress stamps
it, the last new-path switch pops it before delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScenarioError
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.twophase import NEW_VERSION_TAG, TwoPhaseSchedule
from repro.openflow.actions import (
    ApplyActions,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow.constants import DEFAULT_PRIORITY
from repro.openflow.flowmod import FlowMod, add_flow, delete_flow
from repro.openflow.match import Match
from repro.topology.graph import NodeId, Topology

#: Priority used for policy rules installed by the update apps.
POLICY_PRIORITY = DEFAULT_PRIORITY

#: Priority for version-tagged (two-phase) rules: must beat the old rules.
TAGGED_PRIORITY = DEFAULT_PRIORITY + 10


@dataclass
class CompiledRound:
    """FlowMods of one round, grouped per switch."""

    index: int
    mods_by_dpid: dict[NodeId, list[FlowMod]] = field(default_factory=dict)

    def switches(self) -> list[NodeId]:
        return sorted(self.mods_by_dpid, key=repr)

    def total_mods(self) -> int:
        return sum(len(mods) for mods in self.mods_by_dpid.values())


@dataclass
class CompiledUpdate:
    """A fully compiled update: rounds of per-switch FlowMods."""

    rounds: list[CompiledRound]
    match: Match
    priority: int

    def total_mods(self) -> int:
        return sum(compiled.total_mods() for compiled in self.rounds)


def _out_port(topo: Topology, node: NodeId, successor: NodeId) -> int:
    if not topo.has_link(node, successor):
        raise ScenarioError(
            f"schedule needs link {node!r} -> {successor!r} missing from topology"
        )
    return topo.port_between(node, successor)


def compile_schedule(
    topo: Topology,
    schedule: UpdateSchedule,
    match: Match,
    priority: int = POLICY_PRIORITY,
) -> CompiledUpdate:
    """Translate a round schedule into per-switch FlowMods."""
    problem = schedule.problem
    rounds: list[CompiledRound] = []
    for index, round_nodes in enumerate(schedule.rounds):
        compiled = CompiledRound(index=index)
        for node in sorted(round_nodes, key=repr):
            kind = problem.kind(node)
            if kind in (UpdateKind.SWITCH, UpdateKind.INSTALL):
                successor = problem.new_path.next_hop(node)
                mod = add_flow(
                    match,
                    out_port=_out_port(topo, node, successor),
                    priority=priority,
                )
            elif kind is UpdateKind.DELETE:
                mod = delete_flow(match, priority=priority, strict=True)
            else:  # pragma: no cover - schedule validation forbids NOOP
                raise ScenarioError(f"node {node!r} needs no update")
            compiled.mods_by_dpid.setdefault(node, []).append(mod)
        rounds.append(compiled)
    return CompiledUpdate(rounds=rounds, match=match, priority=priority)


def compile_initial_rules(
    topo: Topology,
    problem: UpdateProblem,
    match: Match,
    priority: int = POLICY_PRIORITY,
    egress_port: int | None = None,
) -> dict[NodeId, list[FlowMod]]:
    """FlowMods that install the *old* path (scenario bootstrap).

    ``egress_port`` adds the destination switch's rule towards its host.
    """
    mods: dict[NodeId, list[FlowMod]] = {}
    for node, successor in problem.old_path.edges():
        mods.setdefault(node, []).append(
            add_flow(match, out_port=_out_port(topo, node, successor), priority=priority)
        )
    if egress_port is not None:
        mods.setdefault(problem.destination, []).append(
            add_flow(match, out_port=egress_port, priority=priority)
        )
    return mods


def compile_two_phase(
    topo: Topology,
    plan: TwoPhaseSchedule,
    match: Match,
    priority: int = POLICY_PRIORITY,
) -> CompiledUpdate:
    """Materialize the two-phase baseline with VLAN version tags.

    Phase 1 installs tagged rules on the new path's interior; phase 2 flips
    the ingress to push the tag; phase 3 deletes the old untagged rules.
    The pop happens at the last switch before the destination so delivery
    is untagged either way.
    """
    problem = plan.problem
    new_path = problem.new_path
    tagged_match = match.replace(vlan_vid=NEW_VERSION_TAG)

    prepare = CompiledRound(index=0)
    last_before_destination = new_path.prev_hop(problem.destination)
    for node in plan.prepare:
        successor = new_path.next_hop(node)
        port = _out_port(topo, node, successor)
        actions: list = []
        if node == last_before_destination:
            actions.append(PopVlanAction())
        actions.append(OutputAction(port=port))
        prepare.mods_by_dpid.setdefault(node, []).append(
            FlowMod(
                match=tagged_match,
                priority=TAGGED_PRIORITY,
                instructions=(ApplyActions(actions),),
            )
        )

    flip = CompiledRound(index=1)
    ingress_successor = new_path.next_hop(problem.source)
    ingress_port = _out_port(topo, problem.source, ingress_successor)
    if ingress_successor == problem.destination:
        # one-hop new path: a tag would reach the destination; skip tagging
        ingress_actions = [OutputAction(port=ingress_port)]
    else:
        ingress_actions = [
            PushVlanAction(),
            SetFieldAction("vlan_vid", NEW_VERSION_TAG),
            OutputAction(port=ingress_port),
        ]
    flip.mods_by_dpid[problem.source] = [
        FlowMod(
            match=match,
            priority=priority,
            instructions=(ApplyActions(ingress_actions),),
        )
    ]

    rounds = [prepare, flip]
    if plan.garbage:
        collect = CompiledRound(index=2)
        for node in plan.garbage:
            if node == problem.source:
                continue  # the ingress rule was replaced, not deleted
            collect.mods_by_dpid.setdefault(node, []).append(
                delete_flow(match, priority=priority, strict=True)
            )
        if collect.mods_by_dpid:
            rounds.append(collect)
    return CompiledUpdate(rounds=rounds, match=match, priority=priority)
