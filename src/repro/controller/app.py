"""Base class for controller applications (the Ryu app model, simplified).

Apps register with a :class:`~repro.controller.core.Controller` and receive
the callbacks below.  Default implementations do nothing, so apps override
only what they need -- mirroring how Ryu apps subscribe to events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.core import Controller
    from repro.controller.datapath_handle import Datapath


class RyuLikeApp:
    """Override the ``on_*`` hooks; ``self.controller`` is set at register."""

    name = "app"

    def __init__(self) -> None:
        self.controller: "Controller | None" = None

    # -- lifecycle -----------------------------------------------------
    def on_registered(self, controller: "Controller") -> None:
        """Called once when the app joins the controller."""

    def on_datapath_connected(self, datapath: "Datapath") -> None:
        """A switch finished its handshake."""

    def on_datapath_disconnected(self, dpid: int) -> None:
        """A switch connection was closed."""

    # -- message hooks ---------------------------------------------------
    def on_barrier_reply(self, datapath: "Datapath", message: Any) -> None:
        """A BarrierReply arrived from ``datapath``."""

    def on_packet_in(self, datapath: "Datapath", message: Any) -> None:
        """A PacketIn arrived."""

    def on_error(self, datapath: "Datapath", message: Any) -> None:
        """The switch rejected something."""

    def on_flow_removed(self, datapath: "Datapath", message: Any) -> None:
        """A flow entry expired or was deleted with SEND_FLOW_REM."""

    def on_echo_reply(self, datapath: "Datapath", message: Any) -> None:
        """Liveness probe answered."""

    def on_flow_stats(self, datapath: "Datapath", message: Any) -> None:
        """A FlowStatsReply arrived."""
