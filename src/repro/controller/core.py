"""The SDN controller runtime (the Ryu stand-in).

Owns switch connections (handshake, dispatch), allocates transaction ids
and fans incoming messages out to registered apps.  One controller serves
any number of switches, each over its own asynchronous control channel --
exactly the deployment the demo runs (Ryu + one TCP connection per OVS).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ControllerError, UnknownDatapathError
from repro.channel.base import ControlChannel
from repro.controller.app import RyuLikeApp
from repro.controller.datapath_handle import Datapath
from repro.openflow.messages import (
    BarrierReply,
    EchoReply,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowRemoved,
    Hello,
    OpenFlowMessage,
    PacketIn,
)
from repro.openflow.stats import FlowStatsReply
from repro.sim.simulator import Simulator


class Controller:
    """Event-driven controller bound to a shared simulator."""

    def __init__(self, sim: Simulator, name: str = "ryu") -> None:
        self.sim = sim
        self.name = name
        self.datapaths: dict[int, Datapath] = {}
        self.apps: list[RyuLikeApp] = []
        self._xid = 0
        self._pending_channels: dict[int, ControlChannel] = {}
        self._conn_to_dpid: dict[int, int] = {}
        self._next_conn_id = 0

    # ------------------------------------------------------------------
    # app management
    # ------------------------------------------------------------------
    def register_app(self, app: RyuLikeApp) -> RyuLikeApp:
        """Attach an app; returns it for chaining."""
        app.controller = self
        self.apps.append(app)
        app.on_registered(self)
        return app

    def get_app(self, app_type: type) -> Any:
        """First registered app of ``app_type`` (or raises)."""
        for app in self.apps:
            if isinstance(app, app_type):
                return app
        raise ControllerError(f"no app of type {app_type.__name__} registered")

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def connect_switch(self, channel: ControlChannel) -> None:
        """Begin the OpenFlow handshake over ``channel``.

        The datapath id is learned from the FeaturesReply, as in the real
        protocol; apps hear about the switch only after the handshake.
        """
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        self._pending_channels[conn_id] = channel
        channel.bind_controller(lambda msg: self._on_message(conn_id, msg))
        channel.to_switch(Hello(xid=self.next_xid()))

    def next_xid(self) -> int:
        self._xid += 1
        return self._xid

    def datapath(self, dpid: int) -> Datapath:
        try:
            return self.datapaths[dpid]
        except KeyError:
            raise UnknownDatapathError(f"no connected switch with dpid {dpid}") from None

    @property
    def connected_dpids(self) -> list[int]:
        return sorted(self.datapaths)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _on_message(self, conn_id: int, message: OpenFlowMessage) -> None:
        if isinstance(message, Hello):
            channel = self._pending_channels.get(conn_id)
            if channel is not None:
                channel.to_switch(FeaturesRequest(xid=self.next_xid()))
            return
        if isinstance(message, FeaturesReply):
            channel = self._pending_channels.pop(conn_id, None)
            if channel is None:
                return
            datapath = Datapath(self, message.datapath_id, channel)
            self.datapaths[message.datapath_id] = datapath
            self._conn_to_dpid[conn_id] = message.datapath_id
            for app in self.apps:
                app.on_datapath_connected(datapath)
            return
        datapath = self._datapath_for_channel(conn_id, message)
        if datapath is None:
            return
        if isinstance(message, BarrierReply):
            for app in self.apps:
                app.on_barrier_reply(datapath, message)
        elif isinstance(message, PacketIn):
            for app in self.apps:
                app.on_packet_in(datapath, message)
        elif isinstance(message, ErrorMsg):
            for app in self.apps:
                app.on_error(datapath, message)
        elif isinstance(message, FlowRemoved):
            for app in self.apps:
                app.on_flow_removed(datapath, message)
        elif isinstance(message, EchoReply):
            for app in self.apps:
                app.on_echo_reply(datapath, message)
        elif isinstance(message, FlowStatsReply):
            for app in self.apps:
                app.on_flow_stats(datapath, message)
        # other message types are ignored, as Ryu does without a handler

    def _datapath_for_channel(
        self, conn_id: int, message: OpenFlowMessage
    ) -> Datapath | None:
        dpid = self._conn_to_dpid.get(conn_id)
        if dpid is None:
            return None  # message raced ahead of the handshake; drop it
        return self.datapaths.get(dpid)

    def disconnect_switch(self, dpid: int) -> None:
        """Drop a switch connection and notify apps."""
        datapath = self.datapaths.pop(dpid, None)
        if datapath is None:
            raise UnknownDatapathError(f"no connected switch with dpid {dpid}")
        datapath.channel.close()
        for app in self.apps:
            app.on_datapath_disconnected(dpid)
