"""Controller-side handle for one connected switch (Ryu's ``Datapath``)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.channel.base import ControlChannel
from repro.openflow.messages import BarrierRequest, OpenFlowMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.core import Controller


class Datapath:
    """Send-side view of a switch connection, with xid allocation."""

    def __init__(self, controller: "Controller", dpid: int, channel: ControlChannel) -> None:
        self.controller = controller
        self.dpid = dpid
        self.channel = channel
        self.messages_sent = 0

    def send_msg(self, message: OpenFlowMessage) -> int:
        """Assign an xid (when unset) and ship the message; returns the xid."""
        if message.xid == 0:
            message.xid = self.controller.next_xid()
        self.messages_sent += 1
        self.channel.to_switch(message)
        return message.xid

    def send_barrier(self) -> int:
        """Send a BarrierRequest; returns its xid for reply matching."""
        return self.send_msg(BarrierRequest())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Datapath(dpid={self.dpid})"
