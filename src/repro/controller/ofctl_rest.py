"""Reimplementation of Ryu's stock ``ofctl_rest.py`` app (the baseline).

This is the app the paper *starts from*: it exposes flow-entry add/modify/
delete operations that fire FlowMods at switches immediately -- one round,
no barriers, no ordering.  Under an asynchronous control channel that is
exactly the transiently insecure behaviour the demo showcases (E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import BadRequestError, ControllerError
from repro.controller.app import RyuLikeApp
from repro.controller.datapath_handle import Datapath
from repro.openflow.constants import FlowModCommand
from repro.openflow.flowmod import FlowMod
from repro.openflow.stats import FlowStatsReply, FlowStatsRequest


@dataclass
class StatsFuture:
    """Resolves when the switch's stats reply arrives (post ``sim.run``)."""

    dpid: int
    xid: int
    reply: FlowStatsReply | None = None

    @property
    def done(self) -> bool:
        return self.reply is not None

    def result(self) -> FlowStatsReply:
        if self.reply is None:
            raise ControllerError(
                f"stats for dpid {self.dpid} not yet answered; run the simulator"
            )
        return self.reply


@dataclass
class OfctlLog:
    flow_mods_sent: int = 0
    stats_requested: int = 0
    errors_seen: list = field(default_factory=list)


class OfctlRestApp(RyuLikeApp):
    """One-shot flow programming, faithful to the stock app's semantics."""

    name = "ofctl_rest"

    def __init__(self) -> None:
        super().__init__()
        self.log = OfctlLog()
        self._stats_futures: dict[int, StatsFuture] = {}

    # ------------------------------------------------------------------
    # the ofctl operations (REST handlers call these)
    # ------------------------------------------------------------------
    def flowentry_add(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST /stats/flowentry/add"""
        return self._flowentry(body, FlowModCommand.ADD)

    def flowentry_modify(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST /stats/flowentry/modify"""
        return self._flowentry(body, FlowModCommand.MODIFY)

    def flowentry_modify_strict(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST /stats/flowentry/modify_strict"""
        return self._flowentry(body, FlowModCommand.MODIFY_STRICT)

    def flowentry_delete(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST /stats/flowentry/delete"""
        return self._flowentry(body, FlowModCommand.DELETE)

    def flowentry_delete_strict(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST /stats/flowentry/delete_strict"""
        return self._flowentry(body, FlowModCommand.DELETE_STRICT)

    def _flowentry(
        self, body: Mapping[str, Any], command: FlowModCommand
    ) -> dict[str, Any]:
        if "dpid" not in body:
            raise BadRequestError("flow entry body needs a 'dpid'")
        if self.controller is None:
            raise ControllerError("app not registered with a controller")
        dpid = int(body["dpid"])
        mod = FlowMod.from_ofctl(body, command=command)
        datapath = self.controller.datapath(dpid)
        xid = datapath.send_msg(mod)
        self.log.flow_mods_sent += 1
        return {"dpid": dpid, "xid": xid, "command": command.name}

    def flow_stats(self, dpid: int) -> StatsFuture:
        """GET /stats/flow/<dpid> (resolves after the simulator runs)."""
        if self.controller is None:
            raise ControllerError("app not registered with a controller")
        datapath = self.controller.datapath(dpid)
        request = FlowStatsRequest()
        xid = datapath.send_msg(request)
        future = StatsFuture(dpid=dpid, xid=xid)
        self._stats_futures[xid] = future
        self.log.stats_requested += 1
        return future

    def switches(self) -> list[int]:
        """GET /stats/switches"""
        if self.controller is None:
            raise ControllerError("app not registered with a controller")
        return self.controller.connected_dpids

    # ------------------------------------------------------------------
    # controller hooks
    # ------------------------------------------------------------------
    def on_flow_stats(self, datapath: Datapath, message: FlowStatsReply) -> None:
        future = self._stats_futures.pop(message.xid, None)
        if future is not None:
            future.reply = message

    def on_error(self, datapath: Datapath, message: Any) -> None:
        self.log.errors_seen.append((datapath.dpid, message))
