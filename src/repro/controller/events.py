"""Controller-side events dispatched to apps (Ryu's event model, simplified)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ControllerEvent:
    """Base class for events handed to apps."""

    time_ms: float


@dataclass(frozen=True)
class DatapathConnected(ControllerEvent):
    """Handshake with a switch completed (Hello + FeaturesReply seen)."""

    dpid: int


@dataclass(frozen=True)
class DatapathDisconnected(ControllerEvent):
    dpid: int


@dataclass(frozen=True)
class BarrierSeen(ControllerEvent):
    """A BarrierReply arrived."""

    dpid: int
    xid: int


@dataclass(frozen=True)
class PacketInSeen(ControllerEvent):
    dpid: int
    message: Any


@dataclass(frozen=True)
class ErrorSeen(ControllerEvent):
    dpid: int
    message: Any


@dataclass(frozen=True)
class FlowRemovedSeen(ControllerEvent):
    dpid: int
    message: Any


@dataclass(frozen=True)
class UpdateRoundCompleted(ControllerEvent):
    """One round of a queued update finished (all barriers in)."""

    update_id: str
    round_index: int
    duration_ms: float


@dataclass(frozen=True)
class UpdateCompleted(ControllerEvent):
    """A queued update finished all its rounds."""

    update_id: str
    rounds: int
    duration_ms: float
