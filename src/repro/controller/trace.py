"""Control-plane trace recording (every message, timestamped).

Wraps a network's channels so every controller<->switch message is logged
with its simulated send time and direction.  Traces explain *why* a
transient violation happened (which FlowMod landed before which) and feed
the CLI's ``--trace`` output; export is JSON-lines friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.openflow.json_codec import message_to_dict
from repro.openflow.messages import OpenFlowMessage, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netlab.network import Network


@dataclass(frozen=True)
class TraceEntry:
    """One recorded control-plane message."""

    time_ms: float
    dpid: Any
    direction: str  # "to-switch" | "to-controller"
    msg_type: str
    xid: int
    summary: str

    def as_dict(self) -> dict:
        return {
            "time_ms": round(self.time_ms, 6),
            "dpid": self.dpid,
            "direction": self.direction,
            "type": self.msg_type,
            "xid": self.xid,
        }


@dataclass
class ControlPlaneTrace:
    """Recorder attached to a network's channels."""

    entries: list[TraceEntry] = field(default_factory=list)
    _attached: bool = False

    def attach(self, network: "Network") -> "ControlPlaneTrace":
        """Start recording every channel of ``network`` (idempotent)."""
        if self._attached:
            return self
        self._attached = True
        for dpid, channel in network.channels.items():
            self._wrap(network, dpid, channel)
        return self

    def _wrap(self, network: "Network", dpid: Any, channel) -> None:
        original_to_switch = channel.to_switch
        original_to_controller = channel.to_controller

        def to_switch(message: Any) -> float:
            self._record(network, dpid, "to-switch", message)
            return original_to_switch(message)

        def to_controller(message: Any) -> float:
            self._record(network, dpid, "to-controller", message)
            return original_to_controller(message)

        channel.to_switch = to_switch
        channel.to_controller = to_controller

    def _record(self, network: "Network", dpid: Any, direction: str, message: Any) -> None:
        if isinstance(message, OpenFlowMessage):
            msg_type, xid = message.type_name(), message.xid
        else:  # pragma: no cover - channels carry only OF messages here
            msg_type, xid = type(message).__name__, 0
        self.entries.append(
            TraceEntry(
                time_ms=network.sim.now,
                dpid=dpid,
                direction=direction,
                msg_type=msg_type,
                xid=xid,
                summary=summarize(message),
            )
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def of_type(self, msg_type: str) -> list[TraceEntry]:
        return [e for e in self.entries if e.msg_type == msg_type.upper()]

    def for_switch(self, dpid: Any) -> list[TraceEntry]:
        return [e for e in self.entries if e.dpid == dpid]

    def flow_mods_before_barrier(self, dpid: Any) -> bool:
        """Did every FLOW_MOD to ``dpid`` precede its next BARRIER_REQUEST?

        The round FSM's invariant, checkable from the trace alone.
        """
        pending = 0
        for entry in self.for_switch(dpid):
            if entry.direction != "to-switch":
                continue
            if entry.msg_type == "FLOW_MOD":
                pending += 1
            elif entry.msg_type == "BARRIER_REQUEST":
                if pending == 0:
                    return False  # a barrier fencing nothing
                pending = 0
        return True

    def rounds_observed(self, dpid: Any) -> int:
        """Number of barrier fences this switch saw."""
        return sum(
            1
            for entry in self.for_switch(dpid)
            if entry.direction == "to-switch"
            and entry.msg_type == "BARRIER_REQUEST"
        )

    def to_dicts(self) -> list[dict]:
        return [entry.as_dict() for entry in self.entries]

    def dump_jsonl(self, path: str) -> None:
        """Write one JSON object per line (jq-friendly)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(json.dumps(entry.as_dict(), sort_keys=True) + "\n")
