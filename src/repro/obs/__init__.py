"""Structured tracing and telemetry (``repro.obs``).

A zero-dependency span tracer threaded through the scheduler core, the
campaign engine, and the fabric: :mod:`repro.obs.trace` records spans and
events into pluggable sinks (in-memory ring buffer, JSONL files), and
:mod:`repro.obs.analysis` turns trace files back into per-phase time
breakdowns and per-cell fabric lifecycles.

Tracing is off by default and the off path is a handful of attribute
reads -- the scheduling hot loops stay un-touched (``bench-smoke`` gates
the no-op overhead).  Enable it programmatically::

    from repro.obs import configure_tracing
    configure_tracing(directory="traces/")      # one JSONL file per process

or for whole process trees (campaign fleets spawn workers) via the
environment::

    REPRO_TRACE_DIR=traces/ repro campaign serve spec.json --local-workers 3

then aggregate with ``repro trace summarize traces/``.
"""

from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    Span,
    Tracer,
    attach_context,
    configure_tracing,
    current_context,
    detach_context,
    disable_tracing,
    event,
    global_tracer,
    reset_global_tracer,
    root_span,
    span,
    tracing_enabled,
)
from repro.obs.analysis import (
    load_trace,
    reconstruct_cell_lifecycles,
    summarize_trace,
    verify_lifecycles,
)

__all__ = [
    "JsonlSink",
    "RingBufferSink",
    "Span",
    "Tracer",
    "attach_context",
    "configure_tracing",
    "current_context",
    "detach_context",
    "disable_tracing",
    "event",
    "global_tracer",
    "load_trace",
    "reconstruct_cell_lifecycles",
    "reset_global_tracer",
    "root_span",
    "span",
    "summarize_trace",
    "tracing_enabled",
    "verify_lifecycles",
]
