"""Span-based tracing: the core primitives.

Design constraints, in order:

1. **Free when off.**  Every instrumentation site calls
   :func:`span`/:func:`event` unconditionally; when no sink is attached
   the call returns a shared no-op object and touches nothing else.  The
   scheduling hot loops (oracle queries, bnb expansion) are *not*
   per-call instrumented at all -- they surface through counter deltas
   attached to enclosing spans and through coarse milestone events.
2. **Zero dependencies.**  Standard library only; no imports from the
   rest of :mod:`repro`, so any layer may import this one.
3. **Process-tree friendly.**  Trace/span ids propagate via
   ``contextvars`` inside a process, via explicit context dicts (HTTP
   headers, see :mod:`repro.rest.http_binding`) across processes, and the
   ``REPRO_TRACE_DIR`` environment variable arms a per-process JSONL sink
   in every child a campaign fleet spawns.

A finished span becomes one JSON-compatible dict::

    {"kind": "span", "name": "api.execute_request", "trace": "…",
     "span": "…", "parent": "…" | None, "pid": 1234, "ts": 1699….,
     "dur_ms": 12.4, "status": "ok" | "error", "attrs": {…}}

Events are the same shape with ``kind="event"`` and no duration.  Sinks
receive finished records only -- a SIGKILLed process loses at most its
open spans, never a partial view of a closed one (the JSONL sink writes
one line per record and flushes it, mirroring the campaign store's
crash-tolerance conventions; readers skip a torn trailing line).
"""

from __future__ import annotations

import contextvars
import io
import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Iterable, Mapping

#: (trace_id, span_id) of the active span, or None outside any trace.
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_current", default=None
)

#: Environment variable naming a directory for per-process JSONL sinks.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, name: str, value: Any) -> None:
        pass

    def set_attrs(
        self, attrs: Mapping[str, Any] | None = None, **kw: Any
    ) -> None:
        pass

    def end(self, status: str | None = None) -> None:
        pass

    @property
    def context(self) -> None:
        return None


_NOOP = _NoopSpan()


class Span:
    """One live span; ends (and is written to sinks) on ``__exit__``."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "_tracer", "_token", "_start", "_ended", "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict,
        trace_id: str,
        parent_id: str | None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self._tracer = tracer
        self._token = None
        self._ended = False
        self._start = time.monotonic()

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False

    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = value

    def set_attrs(
        self, attrs: Mapping[str, Any] | None = None, **kw: Any
    ) -> None:
        if attrs:
            self.attrs.update(attrs)
        if kw:
            self.attrs.update(kw)

    @property
    def context(self) -> dict:
        """Propagation dict for the far side of an RPC (see
        :func:`attach_context`)."""
        return {"trace": self.trace_id, "parent": self.span_id}

    def end(self, status: str | None = None) -> None:
        """Finish the span explicitly (idempotent)."""
        if self._ended:
            return
        self._ended = True
        if status is not None:
            self.status = status
        duration_ms = (time.monotonic() - self._start) * 1000.0
        self._tracer._emit({
            "kind": "span",
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "pid": os.getpid(),
            "ts": time.time(),
            "dur_ms": round(duration_ms, 3),
            "status": self.status,
            "attrs": self.attrs,
        })


class RingBufferSink:
    """Keep the last ``capacity`` records in memory (tests, live views)."""

    def __init__(self, capacity: int = 4096) -> None:
        self._buffer: deque = deque(maxlen=capacity)

    def write(self, record: dict) -> None:
        self._buffer.append(record)

    def records(self) -> list[dict]:
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def close(self) -> None:
        pass


class JsonlSink:
    """Append finished records to a JSONL file, one flushed line each.

    Mirrors the campaign store's crash conventions: every record is a
    single ``write`` of one full line followed by a flush, so a killed
    process leaves at most one torn trailing line (which readers skip);
    ``fsync=True`` additionally syncs every line for the paranoid.
    ``close`` always fsyncs, so an orderly shutdown is durable.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = False) -> None:
        self.path = str(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle: io.TextIOWrapper | None = open(
            self.path, "a", encoding="utf-8"
        )

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None


class Tracer:
    """A process-local tracer: span factory plus a list of sinks.

    ``enabled`` is simply "has at least one sink"; the :func:`span` fast
    path reads it once and bails to the shared no-op span.  Sinks must
    tolerate concurrent ``write`` calls (both shipped sinks do).
    """

    def __init__(self) -> None:
        self._sinks: list = []
        self.enabled = False

    # ------------------------------------------------------------------
    # sink management
    # ------------------------------------------------------------------
    def add_sink(self, sink) -> None:
        self._sinks.append(sink)
        self.enabled = True

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    def sinks(self) -> list:
        return list(self._sinks)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
        self._sinks = []
        self.enabled = False

    def _emit(self, record: dict) -> None:
        for sink in self._sinks:
            sink.write(record)

    # ------------------------------------------------------------------
    # spans and events
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Start a span (``with tracer.span("x", key=...):``).

        Child of the current span when one is active; otherwise the root
        of a fresh trace.  Returns the shared no-op span when disabled.
        """
        if not self.enabled:
            return _NOOP
        current = _CURRENT.get()
        if current is None:
            return Span(self, name, attrs, _new_id(), None)
        return Span(self, name, attrs, current[0], current[1])

    def root_span(self, name: str, **attrs: Any):
        """Start a new trace regardless of any active span."""
        if not self.enabled:
            return _NOOP
        return Span(self, name, attrs, _new_id(), None)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event under the current trace."""
        if not self.enabled:
            return
        current = _CURRENT.get()
        self._emit({
            "kind": "event",
            "name": name,
            "trace": current[0] if current else None,
            "span": _new_id(),
            "parent": current[1] if current else None,
            "pid": os.getpid(),
            "ts": time.time(),
            "status": "ok",
            "attrs": attrs,
        })


# ---------------------------------------------------------------------------
# context propagation (works with or without tracing enabled)
# ---------------------------------------------------------------------------

def current_context() -> dict | None:
    """The active ``{"trace": …, "parent": …}``, or None outside a span."""
    current = _CURRENT.get()
    if current is None:
        return None
    return {"trace": current[0], "parent": current[1]}


def attach_context(context: Mapping[str, Any] | None):
    """Adopt a remote trace context (e.g. decoded from HTTP headers).

    Returns a token for :func:`detach_context`.  A None/empty context
    still returns a token (attaching "no trace"), so callers can
    attach/detach unconditionally.
    """
    if not context or not context.get("trace"):
        return _CURRENT.set(None)
    return _CURRENT.set((str(context["trace"]), context.get("parent")))


def detach_context(token) -> None:
    _CURRENT.reset(token)


# ---------------------------------------------------------------------------
# the process-global tracer
# ---------------------------------------------------------------------------

_GLOBAL: Tracer | None = None
_GLOBAL_LOCK = threading.Lock()


def global_tracer() -> Tracer:
    """The process-wide tracer (created on first use).

    Creation honors ``REPRO_TRACE_DIR``: when set, a JSONL sink writing
    ``trace-<pid>.jsonl`` under that directory is attached -- this is how
    spawned campaign workers inherit tracing without any plumbing.
    """
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                tracer = Tracer()
                directory = os.environ.get(TRACE_DIR_ENV)
                if directory:
                    tracer.add_sink(
                        JsonlSink(
                            os.path.join(
                                directory, f"trace-{os.getpid()}.jsonl"
                            )
                        )
                    )
                _GLOBAL = tracer
    return _GLOBAL


def reset_global_tracer() -> None:
    """Close and drop the process tracer (test isolation)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is not None:
            _GLOBAL.close()
        _GLOBAL = None


def configure_tracing(
    path: str | os.PathLike | None = None,
    directory: str | os.PathLike | None = None,
    ring: int | None = None,
    fsync: bool = False,
) -> Tracer:
    """Attach sinks to the global tracer and return it.

    ``path`` appends to one JSONL file; ``directory`` picks a per-process
    ``trace-<pid>.jsonl`` inside it (safe for process fleets); ``ring``
    attaches an in-memory ring buffer of that capacity.
    """
    tracer = global_tracer()
    if directory is not None:
        path = os.path.join(str(directory), f"trace-{os.getpid()}.jsonl")
    if path is not None:
        tracer.add_sink(JsonlSink(path, fsync=fsync))
    if ring is not None:
        tracer.add_sink(RingBufferSink(ring))
    return tracer


def disable_tracing() -> None:
    """Close every sink of the global tracer (tracing goes no-op)."""
    global_tracer().close()


def tracing_enabled() -> bool:
    return global_tracer().enabled


def span(name: str, **attrs: Any):
    """Module-level convenience: a span on the global tracer.

    The first call creates the tracer (arming ``REPRO_TRACE_DIR`` if
    set); afterwards the disabled path is two attribute reads.
    """
    tracer = _GLOBAL
    if tracer is None:
        tracer = global_tracer()
    if not tracer.enabled:
        return _NOOP
    return tracer.span(name, **attrs)


def root_span(name: str, **attrs: Any):
    """Module-level convenience: a fresh trace on the global tracer."""
    tracer = _GLOBAL
    if tracer is None:
        tracer = global_tracer()
    if not tracer.enabled:
        return _NOOP
    return tracer.root_span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Module-level convenience: an event on the global tracer."""
    tracer = _GLOBAL
    if tracer is None:
        tracer = global_tracer()
    if tracer.enabled:
        tracer.event(name, **attrs)


def read_jsonl(path: str | os.PathLike) -> Iterable[dict]:
    """Yield records from one trace file, skipping torn/blank lines."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line of a killed process
            if isinstance(record, dict):
                yield record
