"""Trace analysis: per-phase breakdowns and fabric cell lifecycles.

Two consumers:

* ``repro trace summarize`` aggregates a trace (file or directory of
  per-process files) into a per-span-name time table -- the profiling
  entry point for "where do schedule computations spend their time";
* the fabric smoke and the chaos tests reconstruct, per campaign cell,
  the full lease → run → submit/reclaim lifecycle from the merged
  coordinator + worker traces and assert it is whole even under worker
  deaths, duplicated submits, and reclaims.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.trace import read_jsonl


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read one trace file, or every ``*.jsonl`` in a directory.

    Torn trailing lines (SIGKILLed writers) are skipped, matching the
    sink's crash conventions.
    """
    target = pathlib.Path(path)
    if target.is_dir():
        records: list[dict] = []
        for child in sorted(target.glob("*.jsonl")):
            records.extend(read_jsonl(child))
        return records
    return list(read_jsonl(target))


# ---------------------------------------------------------------------------
# per-phase summary
# ---------------------------------------------------------------------------

def summarize_trace(records: Iterable[Mapping]) -> list[dict]:
    """Aggregate spans by name into a per-phase time breakdown.

    Returns rows sorted by total time (descending)::

        {"name", "count", "errors", "total_ms", "mean_ms",
         "p50_ms", "p95_ms", "max_ms"}

    Events are counted (``count``) with zero duration contribution only
    if a span of the same name never occurs; normally they are listed
    separately under their own names with ``total_ms`` 0.
    """
    from repro.metrics.collector import percentile

    durations: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    events: dict[str, int] = {}
    for record in records:
        name = record.get("name")
        if not isinstance(name, str):
            continue
        if record.get("kind") == "span":
            durations.setdefault(name, []).append(
                float(record.get("dur_ms", 0.0))
            )
            if record.get("status") == "error":
                errors[name] = errors.get(name, 0) + 1
        elif record.get("kind") == "event":
            events[name] = events.get(name, 0) + 1
    rows = []
    for name, values in durations.items():
        values.sort()
        rows.append({
            "name": name,
            "count": len(values),
            "errors": errors.get(name, 0),
            "total_ms": round(sum(values), 3),
            "mean_ms": round(sum(values) / len(values), 3),
            "p50_ms": round(percentile(values, 50.0), 3),
            "p95_ms": round(percentile(values, 95.0), 3),
            "max_ms": round(values[-1], 3),
        })
    for name, count in events.items():
        if name in durations:
            continue
        rows.append({
            "name": name,
            "count": count,
            "errors": 0,
            "total_ms": 0.0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "max_ms": 0.0,
        })
    rows.sort(key=lambda row: (-row["total_ms"], row["name"]))
    return rows


# ---------------------------------------------------------------------------
# fabric cell lifecycles
# ---------------------------------------------------------------------------

@dataclass
class CellLifecycle:
    """Everything the trace says about one campaign cell."""

    cell_id: str
    leases: int = 0
    reclaims: int = 0
    retries: int = 0
    escalations: int = 0
    transient_failures: int = 0
    terminal_errors: int = 0
    accepted_submits: int = 0
    duplicate_submits: int = 0
    stale_submits: int = 0
    #: journal-backed re-admissions by a restarted coordinator; when the
    #: accept's ack (and its span) died with the old process, this event
    #: is the only trace of the settlement
    recovered: int = 0
    #: terminal status of each completed run span (``campaign.cell``)
    run_statuses: list = field(default_factory=list)
    #: trace ids of the run spans, for phase lookups
    run_traces: set = field(default_factory=set)
    #: trace ids of accepted coordinator-side submit spans
    accept_traces: set = field(default_factory=set)

    @property
    def complete(self) -> bool:
        """Leased at least once and folded exactly one terminal outcome."""
        settled = (
            self.accepted_submits == 1
            or self.terminal_errors == 1
            or (self.accepted_submits == 0 and self.recovered > 0)
        )
        return self.leases >= 1 and settled


def reconstruct_cell_lifecycles(
    records: Iterable[Mapping],
) -> dict[str, CellLifecycle]:
    """Stitch per-cell lifecycles out of merged fabric trace records."""
    cells: dict[str, CellLifecycle] = {}

    def cell(record: Mapping) -> CellLifecycle | None:
        cell_id = (record.get("attrs") or {}).get("cell_id")
        if not isinstance(cell_id, str):
            return None
        state = cells.get(cell_id)
        if state is None:
            state = cells[cell_id] = CellLifecycle(cell_id=cell_id)
        return state

    for record in records:
        name = record.get("name")
        state = cell(record)
        if state is None:
            continue
        attrs = record.get("attrs") or {}
        if name == "fabric.lease_cell":
            state.leases += 1
        elif name == "fabric.reclaim_cell":
            state.reclaims += 1
        elif name == "fabric.retry_cell":
            state.retries += 1
        elif name == "fabric.escalate_cell":
            state.escalations += 1
        elif name == "fabric.fail_cell":
            state.transient_failures += 1
        elif name == "fabric.terminal_error":
            state.terminal_errors += 1
        elif name == "fabric.recovered_cell":
            state.recovered += 1
        elif name == "fabric.submit":
            outcome = attrs.get("outcome")
            if outcome == "accepted":
                state.accepted_submits += 1
                if record.get("trace"):
                    state.accept_traces.add(record["trace"])
            elif outcome == "duplicate":
                state.duplicate_submits += 1
            if attrs.get("stale"):
                state.stale_submits += 1
        elif name == "campaign.cell" and record.get("kind") == "span":
            state.run_statuses.append(attrs.get("status"))
            if record.get("trace"):
                state.run_traces.add(record["trace"])
    return cells


def verify_lifecycles(
    records: Iterable[Mapping],
    expected_cells: Iterable[str],
) -> list[str]:
    """Check every expected cell's lifecycle; returns problem strings.

    The contract checked (empty return = all good):

    * every expected cell was leased at least once and settled exactly
      once -- one accepted submit (duplicates and stales are fine, they
      are flagged no-ops), one terminal give-up record, or a
      journal-backed recovery (``fabric.recovered_cell``: the accept was
      durable but its span died unwritten with a crashed coordinator);
    * every settled-by-submit cell has at least one completed run span,
      and runs that ended ``ok`` contain schedule phases
      (``api.execute_request``) in their trace;
    * no accepted coordinator submit is an orphan: its trace must also
      contain the worker-side run or RPC spans it claims to continue
      (SIGKILLed workers lose open spans, but an *accepted* submit means
      the submitting worker lived to deliver it, so its trace survives).
    """
    records = list(records)
    cells = reconstruct_cell_lifecycles(records)
    spans_by_trace: dict[str, set] = {}
    phases_by_trace: dict[str, int] = {}
    for record in records:
        trace = record.get("trace")
        if not trace:
            continue
        spans_by_trace.setdefault(trace, set()).add(record.get("name"))
        if record.get("kind") == "span" and record.get("name") in (
            "api.execute_request",
        ):
            phases_by_trace[trace] = phases_by_trace.get(trace, 0) + 1

    problems: list[str] = []
    for cell_id in expected_cells:
        state = cells.get(cell_id)
        if state is None:
            problems.append(f"{cell_id}: no trace records at all")
            continue
        if state.leases < 1:
            problems.append(f"{cell_id}: never leased")
        if (
            state.accepted_submits + state.terminal_errors == 0
            and state.recovered == 0
        ):
            problems.append(f"{cell_id}: never settled (no accepted submit)")
        elif state.accepted_submits > 1:
            problems.append(
                f"{cell_id}: {state.accepted_submits} accepted submits "
                "(duplicate records folded?)"
            )
        if state.accepted_submits == 1:
            if not state.run_statuses:
                problems.append(f"{cell_id}: no completed run span")
            elif "ok" in state.run_statuses and not any(
                phases_by_trace.get(trace, 0) > 0
                for trace in state.run_traces
            ):
                problems.append(
                    f"{cell_id}: ok run without schedule phase spans"
                )
            for trace in state.accept_traces:
                names = spans_by_trace.get(trace, set())
                if not names & {"fabric.rpc.submit", "fabric.cell",
                                "campaign.cell"}:
                    problems.append(
                        f"{cell_id}: accepted submit trace {trace} has no "
                        "worker-side spans (orphaned)"
                    )
    return problems
