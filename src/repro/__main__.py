"""``python -m repro`` runs the CLI (same as the ``repro`` entry point)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
