"""The network-update problem model.

An :class:`UpdateProblem` captures a single policy change: replace the old
routing path of a flow by a new one, both simple paths between the same
source and destination, optionally constrained to traverse a waypoint
(firewall / IDS) that lies on both paths.

The transient semantics follow the model of the cited scheduling papers
(HotNets'14, PODC'15, SIGMETRICS'16): every node stores at most one rule for
the flow and is either in its OLD or its NEW state:

========  =====================  ==========================
node on   OLD state forwards to  NEW state forwards to
========  =====================  ==========================
both      old next hop           new next hop
new only  -- (drop)              new next hop
old only  old next hop           -- (rule deleted, drop)
========  =====================  ==========================

The destination never forwards.  A *configuration* is an assignment of
states to nodes; packets follow the unique out-edge of each node, so every
configuration induces a deterministic walk from the source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

from repro.errors import UpdateModelError
from repro.topology.graph import NodeId, Topology
from repro.topology.paths import Path, as_path


class RuleState(enum.Enum):
    """Which rule a node currently applies to the flow."""

    OLD = "old"
    NEW = "new"


class UpdateKind(enum.Enum):
    """What kind of change a node undergoes during the update."""

    INSTALL = "install"  # only on the new path: a rule appears
    SWITCH = "switch"    # on both paths with differing next hops
    DELETE = "delete"    # only on the old path: the rule is removed
    NOOP = "noop"        # on both paths with the same next hop


@dataclass(frozen=True)
class WaypointClasses:
    """Node sets relative to the waypoint, used by WayUp and in tests.

    ``old_pre`` / ``old_suf`` are the nodes strictly before / after the
    waypoint on the old path (``old_pre`` includes the source, ``old_suf``
    the destination); analogously for the new path.
    """

    waypoint: NodeId
    old_pre: frozenset
    old_suf: frozenset
    new_pre: frozenset
    new_suf: frozenset


class UpdateProblem:
    """An update from ``old_path`` to ``new_path``, optionally waypointed.

    >>> problem = UpdateProblem([1, 2, 3, 4], [1, 5, 3, 4], waypoint=3)
    >>> problem.kind(5)
    <UpdateKind.INSTALL: 'install'>
    >>> problem.kind(2)
    <UpdateKind.DELETE: 'delete'>
    >>> problem.next_hop(1, RuleState.NEW)
    5
    """

    def __init__(
        self,
        old_path: Path | Sequence[NodeId],
        new_path: Path | Sequence[NodeId],
        waypoint: NodeId | None = None,
        name: str = "update",
    ) -> None:
        self.old_path = as_path(old_path)
        self.new_path = as_path(new_path)
        self.waypoint = waypoint
        self.name = name
        self._validate()

    def _validate(self) -> None:
        old, new = self.old_path, self.new_path
        if old.source != new.source:
            raise UpdateModelError(
                f"paths disagree on source: {old.source!r} vs {new.source!r}"
            )
        if old.destination != new.destination:
            raise UpdateModelError(
                "paths disagree on destination: "
                f"{old.destination!r} vs {new.destination!r}"
            )
        w = self.waypoint
        if w is not None:
            if w in (old.source, old.destination):
                raise UpdateModelError(f"waypoint {w!r} must be interior")
            if w not in old or w not in new:
                raise UpdateModelError(
                    f"waypoint {w!r} must lie on both the old and the new path"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def source(self) -> NodeId:
        return self.old_path.source

    @property
    def destination(self) -> NodeId:
        return self.old_path.destination

    @cached_property
    def nodes(self) -> frozenset:
        """All nodes appearing on either path."""
        return frozenset(self.old_path.nodes) | frozenset(self.new_path.nodes)

    @cached_property
    def forwarding_nodes(self) -> frozenset:
        """All nodes that may forward the flow (everything but ``d``)."""
        return self.nodes - {self.destination}

    def __repr__(self) -> str:
        w = f", waypoint={self.waypoint!r}" if self.waypoint is not None else ""
        return f"UpdateProblem({self.old_path!r} => {self.new_path!r}{w})"

    # ------------------------------------------------------------------
    # forwarding semantics
    # ------------------------------------------------------------------
    @cached_property
    def old_next(self) -> dict:
        """``{node: old next hop or None}`` for every forwarding node."""
        return {
            node: self.old_path.next_hop(node) if node in self.old_path else None
            for node in self.forwarding_nodes
        }

    @cached_property
    def new_next(self) -> dict:
        """``{node: new next hop or None}`` for every forwarding node."""
        return {
            node: self.new_path.next_hop(node) if node in self.new_path else None
            for node in self.forwarding_nodes
        }

    @cached_property
    def kind_table(self) -> dict:
        """``{node: UpdateKind}`` for every node (destination is a NOOP)."""
        table: dict = {self.destination: UpdateKind.NOOP}
        old_next, new_next = self.old_next, self.new_next
        for node in self.forwarding_nodes:
            on_old = node in self.old_path
            on_new = node in self.new_path
            if on_old and on_new:
                kind = (
                    UpdateKind.NOOP
                    if old_next[node] == new_next[node]
                    else UpdateKind.SWITCH
                )
            elif on_new:
                kind = UpdateKind.INSTALL
            else:
                kind = UpdateKind.DELETE
            table[node] = kind
        return table

    def next_hop(self, node: NodeId, state: RuleState) -> NodeId | None:
        """Effective next hop of ``node`` in ``state``; ``None`` means drop.

        Must not be called for the destination (which never forwards).
        """
        if node == self.destination:
            raise UpdateModelError("the destination does not forward")
        table = self.old_next if state is RuleState.OLD else self.new_next
        try:
            return table[node]
        except KeyError:
            raise UpdateModelError(f"{node!r} is not part of {self!r}") from None

    def kind(self, node: NodeId) -> UpdateKind:
        """Classify the change at ``node`` (see :class:`UpdateKind`)."""
        try:
            return self.kind_table[node]
        except KeyError:
            raise UpdateModelError(f"{node!r} is not part of {self!r}") from None

    @cached_property
    def required_updates(self) -> frozenset:
        """Nodes that *must* be updated for traffic to move: INSTALL + SWITCH."""
        return frozenset(
            node
            for node in self.forwarding_nodes
            if self.kind(node) in (UpdateKind.INSTALL, UpdateKind.SWITCH)
        )

    @cached_property
    def canonical_updates(self) -> tuple:
        """The required updates in a deterministic order (sorted by repr).

        Analysis and exact-search code iterates the required set in a stable
        order many times; computing the sort once per problem keeps those
        loops off the ``sorted(..., key=repr)`` treadmill.
        """
        return tuple(sorted(self.required_updates, key=repr))

    @cached_property
    def node_bit(self) -> dict:
        """``{forwarding node: bit position}`` -- the canonical mask index.

        The required updates occupy bits ``0..k-1`` in canonical order, so
        a state of the exact search is a plain int below ``2**k`` and
        ``required_mask`` is the goal state; the remaining forwarding
        nodes (cleanup deletions, no-ops) follow on the higher bits so
        arbitrary round-safety queries can be encoded too.
        """
        order = list(self.canonical_updates)
        order.extend(
            sorted(self.forwarding_nodes - self.required_updates, key=repr)
        )
        return {node: index for index, node in enumerate(order)}

    @cached_property
    def bit_node(self) -> tuple:
        """Inverse of :attr:`node_bit`: ``bit_node[i]`` is bit ``i``'s node."""
        inverse = sorted(self.node_bit.items(), key=lambda item: item[1])
        return tuple(node for node, _ in inverse)

    @cached_property
    def required_mask(self) -> int:
        """Bitmask of the required updates (bits ``0..k-1`` set)."""
        return (1 << len(self.canonical_updates)) - 1

    def mask_of(self, nodes) -> int:
        """Encode an iterable of forwarding nodes as a bitmask."""
        bits = self.node_bit
        mask = 0
        for node in nodes:
            mask |= 1 << bits[node]
        return mask

    def nodes_of(self, mask: int) -> frozenset:
        """Decode a bitmask back into the frozenset of its nodes."""
        order = self.bit_node
        nodes = []
        while mask:
            low = mask & -mask
            nodes.append(order[low.bit_length() - 1])
            mask ^= low
        return frozenset(nodes)

    @cached_property
    def cleanup_updates(self) -> frozenset:
        """Old-only nodes whose stale rule should eventually be deleted."""
        return frozenset(
            node for node in self.forwarding_nodes
            if self.kind(node) is UpdateKind.DELETE
        )

    @cached_property
    def all_updates(self) -> frozenset:
        return self.required_updates | self.cleanup_updates

    # ------------------------------------------------------------------
    # waypoint structure
    # ------------------------------------------------------------------
    @cached_property
    def waypoint_classes(self) -> WaypointClasses:
        """Partition of path nodes around the waypoint (requires one)."""
        w = self.waypoint
        if w is None:
            raise UpdateModelError(f"{self!r} has no waypoint")
        return WaypointClasses(
            waypoint=w,
            old_pre=frozenset(self.old_path.before(w)),
            old_suf=frozenset(self.old_path.after(w)),
            new_pre=frozenset(self.new_path.before(w)),
            new_suf=frozenset(self.new_path.after(w)),
        )

    # ------------------------------------------------------------------
    # relation to a concrete topology
    # ------------------------------------------------------------------
    def validate_in(self, topo: Topology) -> None:
        """Require both paths to be routable in ``topo``."""
        self.old_path.validate_in(topo)
        self.new_path.validate_in(topo)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (the paper's REST header fields)."""
        data: dict = {
            "oldpath": list(self.old_path.nodes),
            "newpath": list(self.new_path.nodes),
        }
        if self.waypoint is not None:
            data["wp"] = self.waypoint
        if self.name != "update":
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "UpdateProblem":
        """Inverse of :meth:`to_dict` (accepts the paper's REST field names)."""
        try:
            old_path = data["oldpath"]
            new_path = data["newpath"]
        except KeyError as exc:
            raise UpdateModelError(f"missing field {exc.args[0]!r}") from None
        return cls(
            old_path,
            new_path,
            waypoint=data.get("wp"),
            name=data.get("name", "update"),
        )


@dataclass(frozen=True)
class Configuration:
    """A full assignment of rule states, inducing a deterministic walk.

    Mostly used by the exhaustive verification oracle and the dataplane
    simulator; the polynomial verifiers never materialize configurations.
    """

    problem: UpdateProblem
    states: dict = field(default_factory=dict)

    def state_of(self, node: NodeId) -> RuleState:
        return self.states.get(node, RuleState.OLD)

    def next_hop(self, node: NodeId) -> NodeId | None:
        return self.problem.next_hop(node, self.state_of(node))

    def walk_from_source(self, max_steps: int | None = None):
        """Follow the configuration from ``s``; see :func:`trace_walk`."""
        return trace_walk(self.problem, self.next_hop, max_steps=max_steps)


@dataclass(frozen=True)
class WalkResult:
    """Outcome of following a configuration from the source.

    ``outcome`` is ``"delivered"``, ``"dropped"`` or ``"looped"``;
    ``visited`` is the node sequence in order (for a loop, the first
    repeated node terminates the sequence and is included twice).
    """

    outcome: str
    visited: tuple

    @property
    def delivered(self) -> bool:
        return self.outcome == "delivered"

    @property
    def looped(self) -> bool:
        return self.outcome == "looped"

    @property
    def dropped(self) -> bool:
        return self.outcome == "dropped"

    def traversed(self, node: NodeId) -> bool:
        return node in self.visited


def trace_walk(problem: UpdateProblem, next_hop_fn, max_steps: int | None = None):
    """Deterministically walk from the source following ``next_hop_fn``.

    ``next_hop_fn(node)`` must return the successor or ``None`` for drop.
    Returns a :class:`WalkResult`.  ``max_steps`` defaults to one more than
    the node count, which suffices to detect any loop.
    """
    limit = max_steps if max_steps is not None else len(problem.nodes) + 1
    node = problem.source
    visited: list = [node]
    seen = {node}
    for _ in range(limit):
        if node == problem.destination:
            return WalkResult(outcome="delivered", visited=tuple(visited))
        successor = next_hop_fn(node)
        if successor is None:
            return WalkResult(outcome="dropped", visited=tuple(visited))
        visited.append(successor)
        if successor in seen:
            return WalkResult(outcome="looped", visited=tuple(visited))
        seen.add(successor)
        node = successor
    if node == problem.destination:
        return WalkResult(outcome="delivered", visited=tuple(visited))
    raise UpdateModelError("walk exceeded its step limit without resolution")
