"""Adversarial instance families from the scheduling literature.

These generators produce the update problems on which the round-count
separations of the cited papers show up:

* :func:`reversal_instance` -- the new path walks the old path backwards.
  Any strong-loop-free schedule is forced to peel one node per round
  (Theta(n) rounds), while a relaxed-loop-free schedule finishes in three
  switch rounds: the backward region is unreachable from the source until
  the very last flip.
* :func:`sawtooth_instance` -- block-wise reversals, interpolating between
  the easy (block=1: pure forward) and hard (block=n-2: full reversal)
  extremes.
* :func:`crossing_instance` -- the minimal waypoint crossing (old
  ``s a w b d``, new ``s b w a d``): WayUp needs its late-mover round here,
  and combining waypoint enforcement with strong loop freedom becomes
  delicate; the exact search in :mod:`repro.core.optimal` decides it.
* :func:`waypoint_slalom_instance` -- longer crossings with ``k`` segment
  swaps around the waypoint, the scaling version of the above.
"""

from __future__ import annotations

from repro.errors import InfeasibleUpdateError, UpdateModelError
from repro.core.problem import UpdateProblem
from repro.core.verify import Property
from repro.topology.paths import Path


def reversal_instance(n: int) -> UpdateProblem:
    """Old path ``1..n``; new path ``1, n-1, n-2, ..., 2, n``.

    Needs ``n >= 5`` for the effect to exist (shorter instances are trivial).
    """
    if n < 4:
        raise UpdateModelError(f"reversal instance needs n >= 4, got {n}")
    old = list(range(1, n + 1))
    new = [1, *range(n - 1, 1, -1), n]
    return UpdateProblem(Path(old), Path(new), name=f"reversal-{n}")


def sawtooth_instance(n: int, block: int) -> UpdateProblem:
    """Old path ``1..n``; the interior is reversed block-wise on the new path.

    ``block=1`` keeps the old order (every node a no-op); ``block=n-2``
    degenerates to :func:`reversal_instance`'s single big tooth.
    """
    if n < 4:
        raise UpdateModelError(f"sawtooth instance needs n >= 4, got {n}")
    if block < 1:
        raise UpdateModelError(f"block size must be positive, got {block}")
    interior = list(range(2, n))
    new_interior: list[int] = []
    for start in range(0, len(interior), block):
        chunk = interior[start : start + block]
        new_interior.extend(reversed(chunk))
    new = [1, *new_interior, n]
    return UpdateProblem(Path(range(1, n + 1)), Path(new), name=f"sawtooth-{n}-{block}")


def crossing_instance() -> UpdateProblem:
    """The minimal waypoint crossing: old ``1 2 3 4 5``, new ``1 4 3 2 5``, w=3.

    Node 4 moves from the old suffix onto the new prefix, node 2 from the
    old prefix onto the new suffix -- the configuration that forces WayUp's
    round ordering (update 4 early, 2 only after the source flipped).
    """
    return UpdateProblem(
        Path([1, 2, 3, 4, 5]), Path([1, 4, 3, 2, 5]), waypoint=3, name="crossing"
    )


def crossing_clash_instance(n: int, block: int = 2) -> UpdateProblem:
    """A waypoint crossing welded onto a sawtooth interior: the
    infeasibility stress case for WPE together with strong loop freedom.

    Old path ``s, i_1..i_m, a, w, b, d``; new path routes the interior
    block-reversed, then crosses ``a`` and ``b`` over the waypoint
    (``..., b, w, a, d``).  The crossing core is round-infeasible under
    WPE+SLF (the :func:`crossing_instance` clash), but unlike the bare
    crossing the interior offers plenty of individually safe first moves
    -- so naive exact search must exhaust the exponential interleavings
    of the interior blocks at *every* deepening level before concluding
    infeasibility, while the forced-order certificates of
    :mod:`repro.core.bnb` prove it from the core alone.  ``n`` counts
    path nodes; required updates are ``n - 1``.
    """
    if n < 7:
        raise UpdateModelError(f"crossing clash needs n >= 7, got {n}")
    if block < 1:
        raise UpdateModelError(f"block size must be positive, got {block}")
    m = n - 5
    s = 0
    interior = list(range(1, m + 1))
    a, w, b, d = m + 1, m + 2, m + 3, m + 4
    new_interior: list[int] = []
    for start in range(0, m, block):
        chunk = interior[start : start + block]
        new_interior.extend(reversed(chunk))
    return UpdateProblem(
        Path([s, *interior, a, w, b, d]),
        Path([s, *new_interior, b, w, a, d]),
        waypoint=w,
        name=f"clash-{n}-{block}",
    )


def waypoint_slalom_instance(k: int) -> UpdateProblem:
    """A crossing with ``k`` node pairs swapped across the waypoint.

    Old path: ``s, a_1..a_k, w, b_1..b_k, d``.
    New path: ``s, b_1..b_k, w, a_1..a_k, d``.
    Every ``a_i`` is an old-prefix/new-suffix late mover and every ``b_i``
    an old-suffix/new-prefix early mover; the instance scales the WayUp
    stress of :func:`crossing_instance`.
    """
    if k < 1:
        raise UpdateModelError(f"slalom needs k >= 1, got {k}")
    s, w, d = 0, 2 * k + 1, 2 * k + 2
    a_nodes = list(range(1, k + 1))
    b_nodes = list(range(k + 1, 2 * k + 1))
    old = [s, *a_nodes, w, *b_nodes, d]
    new = [s, *b_nodes, w, *a_nodes, d]
    return UpdateProblem(Path(old), Path(new), waypoint=w, name=f"slalom-{k}")


def hardness_profile(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int | None = None,
    search: str = "bnb",
) -> dict:
    """Exact-vs-greedy round profile of one instance.

    Runs the bitmask exact engine (branch-and-bound by default, so the
    hardness families are profiled through the full n=24 cap -- its
    certificates also settle infeasible clashes instantly) next to the
    combined greedy scheduler and reports the round gap -- the quantity
    the paper's E3 separations are about.  ``exact_rounds`` /
    ``greedy_rounds`` are ``None`` when the respective scheduler proves
    or hits infeasibility; an instance over the exact-search cap keeps
    ``exact_rounds=None`` and sets ``capped`` instead of raising, so
    size sweeps degrade to greedy-only rows.
    """
    from repro.core.combined import combined_greedy_schedule
    from repro.core.optimal import DEFAULT_MAX_NODES, minimal_round_schedule

    properties = tuple(properties)
    profile: dict = {
        "name": problem.name,
        "updates": len(problem.required_updates),
        "properties": [p.value for p in properties],
        "exact_rounds": None,
        "greedy_rounds": None,
        "gap": None,
        "capped": False,
    }
    cap = max_nodes if max_nodes is not None else DEFAULT_MAX_NODES
    if len(problem.required_updates) > cap:
        profile["capped"] = True
    else:
        try:
            exact = minimal_round_schedule(
                problem, properties, max_nodes=cap, search=search
            )
        except InfeasibleUpdateError:
            pass
        else:
            profile["exact_rounds"] = exact.n_rounds
    try:
        greedy = combined_greedy_schedule(
            problem, properties, include_cleanup=False
        )
    except (InfeasibleUpdateError, UpdateModelError):
        pass
    else:
        profile["greedy_rounds"] = greedy.n_rounds
    if profile["exact_rounds"] is not None and profile["greedy_rounds"] is not None:
        profile["gap"] = profile["greedy_rounds"] - profile["exact_rounds"]
    return profile


def double_diamond_instance() -> UpdateProblem:
    """A small waypointed instance with fresh detour nodes on both sides.

    Old: ``1 2 3 4 5 9``; new: ``1 6 3 7 8 9`` with waypoint 3 -- installs
    on both sides of the waypoint plus deletions, exercising every update
    kind without any crossing.  WayUp solves it in its first four rounds.
    """
    return UpdateProblem(
        Path([1, 2, 3, 4, 5, 9]),
        Path([1, 6, 3, 7, 8, 9]),
        waypoint=3,
        name="double-diamond",
    )
