"""Round-based update schedules.

An :class:`UpdateSchedule` partitions the node updates of an
:class:`~repro.core.problem.UpdateProblem` into ordered *rounds*.  The
controller sends all FlowMods of a round, flushes them with OpenFlow
barriers, and only then starts the next round -- so between rounds the
network state is known exactly, while *within* a round updates land in any
order and any interleaving must be safe (that is what the verifiers check).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import ScheduleError
from repro.core.problem import UpdateKind, UpdateProblem
from repro.topology.graph import NodeId


class UpdateSchedule:
    """An immutable sequence of update rounds (each a frozenset of nodes).

    >>> problem = UpdateProblem([1, 2, 3], [1, 4, 3])
    >>> schedule = UpdateSchedule(problem, [[4], [1], [2]])
    >>> schedule.n_rounds
    3
    >>> schedule.round_of(1)
    1
    """

    def __init__(
        self,
        problem: UpdateProblem,
        rounds: Sequence[Iterable[NodeId]],
        algorithm: str = "manual",
        metadata: dict | None = None,
    ) -> None:
        self.problem = problem
        self.rounds: tuple[frozenset, ...] = tuple(
            frozenset(round_nodes) for round_nodes in rounds
        )
        self.algorithm = algorithm
        self.metadata = dict(metadata or {})
        self._round_of: dict[NodeId, int] = {}
        self._validate()

    def _validate(self) -> None:
        problem = self.problem
        for index, round_nodes in enumerate(self.rounds):
            if not round_nodes:
                raise ScheduleError(f"round {index} is empty")
            for node in round_nodes:
                if node in self._round_of:
                    raise ScheduleError(f"node {node!r} scheduled twice")
                if node not in problem.nodes:
                    raise ScheduleError(f"node {node!r} is not part of the problem")
                kind = problem.kind(node)
                if kind is UpdateKind.NOOP:
                    raise ScheduleError(f"node {node!r} needs no update")
                self._round_of[node] = index
        missing = problem.required_updates - set(self._round_of)
        if missing:
            raise ScheduleError(f"required updates never scheduled: {sorted(map(repr, missing))}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self.rounds)

    def __getitem__(self, index: int) -> frozenset:
        return self.rounds[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UpdateSchedule):
            return NotImplemented
        return self.problem is other.problem and self.rounds == other.rounds

    def __repr__(self) -> str:
        inner = "; ".join(
            "{" + ", ".join(repr(n) for n in sorted(r, key=repr)) + "}"
            for r in self.rounds
        )
        return f"UpdateSchedule[{self.algorithm}]({inner})"

    def round_of(self, node: NodeId) -> int | None:
        """Index of the round updating ``node`` (``None`` if unscheduled)."""
        return self._round_of.get(node)

    def scheduled_nodes(self) -> frozenset:
        return frozenset(self._round_of)

    def updates_in_round(self, index: int) -> list[tuple[NodeId, UpdateKind]]:
        """The ``(node, kind)`` pairs of one round, deterministic order."""
        return [
            (node, self.problem.kind(node))
            for node in sorted(self.rounds[index], key=repr)
        ]

    def includes_cleanup(self) -> bool:
        """True when every old-only node gets its rule deleted."""
        return self.problem.cleanup_updates <= self.scheduled_nodes()

    def total_updates(self) -> int:
        return len(self._round_of)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_cleanup(self) -> "UpdateSchedule":
        """Append a final round deleting stale rules (no-op if none/any already)."""
        pending = self.problem.cleanup_updates - self.scheduled_nodes()
        if not pending:
            return self
        return UpdateSchedule(
            self.problem,
            [*self.rounds, pending],
            algorithm=self.algorithm,
            metadata={**self.metadata, "cleanup": True},
        )

    def merged(self) -> "UpdateSchedule":
        """Collapse to a single round (what a naive controller would send)."""
        everything = frozenset().union(*self.rounds)
        return UpdateSchedule(
            self.problem,
            [everything],
            algorithm=f"{self.algorithm}+merged",
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "rounds": [sorted(r, key=repr) for r in self.rounds],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, problem: UpdateProblem, data: dict) -> "UpdateSchedule":
        try:
            rounds = data["rounds"]
        except KeyError:
            raise ScheduleError("schedule dict lacks 'rounds'") from None
        return cls(
            problem,
            rounds,
            algorithm=data.get("algorithm", "manual"),
            metadata=data.get("metadata"),
        )


def sequential_schedule(
    problem: UpdateProblem, order: Sequence[NodeId] | None = None
) -> UpdateSchedule:
    """One node per round, in ``order`` (default: installs, switches, deletes).

    The maximally conservative baseline: ``n`` rounds, each trivially
    atomic.  Used in tests and as a worst-case comparator in E5.
    """
    if order is None:
        by_kind = {UpdateKind.INSTALL: 0, UpdateKind.SWITCH: 1, UpdateKind.DELETE: 2}
        order = sorted(
            problem.all_updates, key=lambda n: (by_kind[problem.kind(n)], repr(n))
        )
    return UpdateSchedule(
        problem, [[node] for node in order], algorithm="sequential"
    )
