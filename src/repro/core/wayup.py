"""The WayUp scheduler: waypoint-enforcing round-based updates.

Reconstructed from the model of Ludwig, Rost, Foucard, Schmid, *Good Network
Updates for Bad Packets* (HotNets'14) which the demo paper executes.  WayUp
guarantees **waypoint enforcement** (WPE) under arbitrary intra-round
asynchrony; it deliberately does *not* guarantee loop freedom (combining
both is not always possible and is computationally hard -- SIGMETRICS'16).

Round structure (empty rounds are skipped, ``w`` = waypoint):

1. *install* -- nodes only on the new path.  They receive no traffic while
   every old-path rule is unchanged.
2. *post-waypoint* -- ``w`` itself plus every old-path node *after* ``w``
   that is also on the new path.  Only packets that already traversed ``w``
   can reach these, so no rule installed here can un-enforce the waypoint.
3. *shared prefix* -- nodes before ``w`` on both paths (except the source).
   A packet diverted here continues over prefix nodes only, all of whose
   possible rules lead to ``w`` before ``d``.
4. *source* -- the source flips last among prefix nodes; fresh packets now
   take the fully prepared new path.
5. *late movers* -- nodes before ``w`` on the old path but after ``w`` on
   the new path.  Updating them any earlier would hand pre-waypoint packets
   a rule that jumps past ``w``; after round 4 no pre-waypoint packet can
   reach them.
6. *cleanup* (optional) -- delete stale rules at old-only nodes, which are
   unreachable by then.

The invariant behind rounds 1-2: while no node of the old prefix has been
touched, every pre-waypoint packet travels the intact old prefix and hits
``w``.  From round 3 on, every rule a pre-waypoint packet can encounter
forwards it along one of the two prefixes, both of which end at ``w``.
"""

from __future__ import annotations

from repro.errors import UpdateModelError
from repro.core.oracle import SafetyOracle, oracle_for
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.verify import Property

#: Human-readable names of WayUp's round classes, in emission order.
ROUND_NAMES = (
    "install",
    "post-waypoint",
    "shared-prefix",
    "source",
    "late-movers",
    "cleanup",
)


def wayup_schedule(
    problem: UpdateProblem,
    include_cleanup: bool = True,
    check_rounds: bool = False,
    oracle: SafetyOracle | None = None,
) -> UpdateSchedule:
    """Compute the WayUp schedule for a waypointed update problem.

    Raises :class:`UpdateModelError` when the problem has no waypoint.
    The resulting schedule has at most six non-empty rounds; its round
    classes are recorded in ``metadata["round_names"]``.

    With ``check_rounds=True`` every emitted round is validated against
    the incremental :class:`SafetyOracle` (WPE + blackhole freedom) before
    the schedule is returned -- a cheap guard that turns a modelling bug
    in the round construction into a loud error instead of a bad deploy.
    """
    if problem.waypoint is None:
        raise UpdateModelError("WayUp requires a waypointed update problem")
    classes = problem.waypoint_classes
    w = classes.waypoint
    source = problem.source

    def changed(node) -> bool:
        return problem.kind(node) in (UpdateKind.INSTALL, UpdateKind.SWITCH)

    install = {node for node in problem.required_updates
               if problem.kind(node) is UpdateKind.INSTALL}
    post_waypoint = {
        node
        for node in problem.forwarding_nodes
        if changed(node) and (node == w or (node in classes.old_suf and node in problem.new_path))
    }
    shared_prefix = {
        node
        for node in problem.forwarding_nodes
        if changed(node)
        and node != source
        and node in classes.old_pre
        and node in classes.new_pre
    }
    source_round = {source} if changed(source) else set()
    late_movers = {
        node
        for node in problem.forwarding_nodes
        if changed(node) and node in classes.old_pre and node in classes.new_suf
    }
    cleanup = set(problem.cleanup_updates) if include_cleanup else set()

    raw_rounds = [install, post_waypoint, shared_prefix, source_round, late_movers, cleanup]
    rounds = []
    round_names = []
    for name, nodes in zip(ROUND_NAMES, raw_rounds):
        if nodes:
            rounds.append(nodes)
            round_names.append(name)
    if not rounds:
        # Degenerate problem: nothing changes.  Emit a single no-op-free
        # schedule is impossible (rounds must be non-empty), so signal it.
        raise UpdateModelError("WayUp invoked on a problem with no rule changes")
    if check_rounds:
        if oracle is None:
            oracle = oracle_for(problem, (Property.WPE, Property.BLACKHOLE))
        else:
            oracle.ensure_matches(problem, (Property.WPE, Property.BLACKHOLE))
        done: set = set()
        for name, nodes in zip(round_names, rounds):
            if not oracle.round_is_safe(done, nodes):
                raise UpdateModelError(
                    f"WayUp round {name!r} violates waypoint enforcement or "
                    f"blackhole freedom -- modelling bug"
                )
            done |= nodes
    return UpdateSchedule(
        problem,
        rounds,
        algorithm="wayup",
        metadata={"round_names": round_names},
    )
