"""Process-wide scheduler registry: one name→scheduler surface for all layers.

The paper contributes a *family* of transiently secure update schedulers
(WayUp, Peacock, greedy SLF, combined, strongest, exact minimum-round, the
one-shot / sequential / two-phase baselines).  Before this module each
outer layer -- CLI, REST, campaign engine, benchmarks -- kept its own
name→callable dict with its own spellings and its own idea of what a
scheduler promises.  The registry replaces all of them:

* a :class:`SchedulerDefinition` declares a scheduler once: canonical
  name, accepted aliases (``greedy-slf`` == ``greedy_slf``), the
  :class:`~repro.core.verify.Property` tuple it *guarantees*, whether it
  needs a waypoint, and which engine params it accepts;
* :meth:`SchedulerRegistry.resolve` turns a **spec string** into a bound
  :class:`Scheduler`.  The grammar is
  ``name[:<p1+p2+...>][?key=value&key=value]``:

  - ``wayup``, ``peacock``, ``two-phase`` -- plain names (any alias);
  - ``combined:wpe+rlf``, ``optimal:slf`` -- parameterized forms bound to
    a property set (their guarantee *is* that set);
  - ``optimal:slf?search=bfs&max_rounds=4``, ``peacock?exact=false`` --
    engine options, validated against the definition's ``accepts`` set
    (values are coerced: ``true``/``false``, ints, floats, else strings);

* third-party schedulers plug in once via :func:`register_scheduler` (or
  the lower-level :meth:`SchedulerRegistry.register`) and are immediately
  visible to the CLI, the REST API, campaign specs, and benchmarks.

Schedulers are *run* through the request/result envelope of
:mod:`repro.core.api`, which adds verification, timing, timeouts, and
oracle provenance on top of :meth:`Scheduler.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import SchedulerSpecError
from repro.core.combined import combined_greedy_schedule, strongest_feasible_schedule
from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.oneshot import oneshot_schedule
from repro.core.optimal import minimal_round_schedule
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.schedule import sequential_schedule
from repro.core.twophase import two_phase_schedule
from repro.core.verify import Property
from repro.core.wayup import wayup_schedule

#: Short property names used in scheduler specs (``combined:wpe+rlf``).
PROPERTY_BY_NAME = {
    "wpe": Property.WPE,
    "slf": Property.SLF,
    "rlf": Property.RLF,
    "blackhole": Property.BLACKHOLE,
}

#: Inverse of :data:`PROPERTY_BY_NAME`.
PROPERTY_NAMES = {prop: name for name, prop in PROPERTY_BY_NAME.items()}


def parse_properties(text: str) -> tuple[Property, ...]:
    """Parse ``"wpe+rlf+blackhole"`` into a Property tuple."""
    names = [name for name in text.split("+") if name]
    if not names:
        raise SchedulerSpecError("empty property list")
    unknown = [name for name in names if name not in PROPERTY_BY_NAME]
    if unknown:
        raise SchedulerSpecError(
            f"unknown properties {unknown}; known: {sorted(PROPERTY_BY_NAME)}"
        )
    return tuple(PROPERTY_BY_NAME[name] for name in names)


def format_properties(properties) -> str:
    """Render a Property tuple back into spec syntax (``wpe+rlf``)."""
    return "+".join(PROPERTY_NAMES[prop] for prop in properties)


@dataclass(frozen=True)
class SchedulerRun:
    """What one scheduler invocation produced (pre-envelope).

    ``schedule`` is an :class:`~repro.core.schedule.UpdateSchedule` or a
    :class:`~repro.core.twophase.TwoPhaseSchedule` (both speak the common
    rounds/total_updates/to_dict surface); ``guarantee`` is the property
    tuple *realized* by this run -- usually the scheduler's declared
    guarantee, but e.g. ``strongest`` only knows its rung after running.
    """

    schedule: Any
    detail: str | None
    guarantee: tuple[Property, ...]


#: invoke(problem, include_cleanup, oracle, properties, params) -> SchedulerRun
InvokeFn = Callable[..., SchedulerRun]


@dataclass(frozen=True)
class SchedulerDefinition:
    """One registered scheduler family (a plain name or parameterized form)."""

    name: str
    invoke: InvokeFn
    aliases: tuple[str, ...] = ()
    guarantee: tuple[Property, ...] = ()
    parameterized: bool = False
    requires_waypoint: bool = False
    accepts: frozenset = frozenset()
    description: str = ""


@dataclass(frozen=True)
class Scheduler:
    """A fully resolved scheduler with declared capabilities.

    This is what every layer receives from :func:`resolve_scheduler`:
    the canonical ``name`` (aliases and property lists normalized), the
    ``guarantee`` it promises, whether it ``requires_waypoint``, and the
    engine params it ``accepts``.  Run it through
    :func:`repro.core.api.execute_request` (preferred -- adds the
    envelope) or directly via :meth:`run`.
    """

    name: str
    base: str
    guarantee: tuple[Property, ...]
    requires_waypoint: bool
    accepts: frozenset
    aliases: tuple[str, ...]
    description: str
    properties: tuple[Property, ...] | None
    params: Mapping[str, Any]
    invoke: InvokeFn = field(repr=False)

    def run(
        self,
        problem: UpdateProblem,
        include_cleanup: bool = True,
        oracle=None,
        params: Mapping[str, Any] | None = None,
    ) -> SchedulerRun:
        """Execute on ``problem``; extra ``params`` override bound ones."""
        merged = dict(self.params)
        if params:
            merged.update(params)
        unknown = set(merged) - set(self.accepts)
        if unknown:
            raise SchedulerSpecError(
                f"scheduler {self.base!r} does not accept params "
                f"{sorted(unknown)}; accepted: {sorted(self.accepts)}"
            )
        return self.invoke(problem, include_cleanup, oracle, self.properties, merged)

    def capabilities(self) -> dict:
        """JSON-compatible capability record (REST ``GET /schedulers``)."""
        return {
            "name": self.name,
            "base": self.base,
            "aliases": list(self.aliases),
            "guarantee": [PROPERTY_NAMES[p] for p in self.guarantee],
            "requires_waypoint": self.requires_waypoint,
            "accepts": sorted(self.accepts),
            "description": self.description,
        }


def _coerce(value: str) -> Any:
    lowered = value.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def split_spec(spec: str) -> tuple[str, str | None, dict]:
    """Split ``name[:props][?k=v&k=v]`` into its three parts."""
    if not isinstance(spec, str) or not spec.strip():
        raise SchedulerSpecError(
            f"scheduler spec must be a non-empty string, got {spec!r}"
        )
    head, _, query = spec.strip().partition("?")
    name, colon, props = head.partition(":")
    params: dict[str, Any] = {}
    if query:
        for pair in query.split("&"):
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            if not key or not eq:
                raise SchedulerSpecError(
                    f"bad param {pair!r} in {spec!r}; expected key=value"
                )
            params[key] = _coerce(value)
    return name, (props if colon else None), params


#: Resolution-cache bound: a long-running service resolving ever-new
#: parameterized specs (``optimal:slf?max_rounds=N``) must not leak.
_RESOLVE_CACHE_LIMIT = 256


class SchedulerRegistry:
    """Process-wide name→scheduler map with aliases and parameterized specs."""

    def __init__(self) -> None:
        self._definitions: dict[str, SchedulerDefinition] = {}
        self._aliases: dict[str, str] = {}
        self._cache: dict[str, Scheduler] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, definition: SchedulerDefinition, replace: bool = False
    ) -> SchedulerDefinition:
        """Add a definition; canonical name and aliases must be free."""
        for name in (definition.name, *definition.aliases):
            owner = self._aliases.get(name)
            if owner is not None and owner != definition.name and not replace:
                raise SchedulerSpecError(
                    f"scheduler name {name!r} is already registered (by {owner!r})"
                )
        if definition.name in self._definitions and not replace:
            raise SchedulerSpecError(
                f"scheduler {definition.name!r} is already registered"
            )
        self._definitions[definition.name] = definition
        for name in (definition.name, *definition.aliases):
            self._aliases[name] = definition.name
        self._cache.clear()
        return definition

    def unregister(self, name: str) -> None:
        """Remove a definition and its aliases (tests / plugin teardown)."""
        definition = self._definitions.pop(self._aliases.get(name, name), None)
        if definition is None:
            raise SchedulerSpecError(f"unknown scheduler {name!r}")
        for alias in (definition.name, *definition.aliases):
            self._aliases.pop(alias, None)
        self._cache.clear()

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, spec: "str | Scheduler") -> Scheduler:
        """Resolve a spec string (or pass a resolved scheduler through)."""
        if isinstance(spec, Scheduler):
            return spec
        cached = self._cache.get(spec)
        if cached is not None:
            return cached
        name, props_text, params = split_spec(spec)
        base = self._aliases.get(name)
        if base is None:
            raise SchedulerSpecError(
                f"unknown scheduler {name!r}; known: {self.names()} "
                "(parameterized forms take ':<p1+p2+...>' property suffixes)"
            )
        definition = self._definitions[base]
        properties: tuple[Property, ...] | None = None
        if props_text is not None:
            if not definition.parameterized:
                raise SchedulerSpecError(
                    f"scheduler {base!r} takes no ':<properties>' suffix"
                )
            # normalize to one canonical spelling: dedup, then the
            # declaration order of PROPERTY_BY_NAME (wpe+slf+rlf+blackhole),
            # so 'combined:rlf+wpe' and 'combined:wpe+rlf' are one scheduler
            rank = {prop: i for i, prop in enumerate(PROPERTY_BY_NAME.values())}
            properties = tuple(sorted(
                dict.fromkeys(parse_properties(props_text)),
                key=rank.__getitem__,
            ))
        elif definition.parameterized:
            raise SchedulerSpecError(
                f"scheduler {base!r} needs a property list, "
                f"e.g. '{base}:slf+blackhole'"
            )
        unknown = set(params) - set(definition.accepts)
        if unknown:
            raise SchedulerSpecError(
                f"scheduler {base!r} does not accept params {sorted(unknown)}; "
                f"accepted: {sorted(definition.accepts)}"
            )
        canonical = definition.name
        if properties is not None:
            canonical += ":" + format_properties(properties)
        if params:
            canonical += "?" + "&".join(
                f"{key}={_render(params[key])}" for key in sorted(params)
            )
        cached = self._cache.get(canonical)
        if cached is not None:
            self._cache[spec] = cached
            return cached
        scheduler = Scheduler(
            name=canonical,
            base=definition.name,
            guarantee=properties if properties is not None else definition.guarantee,
            requires_waypoint=definition.requires_waypoint
            or (properties is not None and Property.WPE in properties),
            accepts=definition.accepts,
            aliases=definition.aliases,
            description=definition.description,
            properties=properties,
            params=params,
            invoke=definition.invoke,
        )
        while len(self._cache) >= _RESOLVE_CACHE_LIMIT:
            self._cache.pop(next(iter(self._cache)))
        self._cache[spec] = self._cache[canonical] = scheduler
        return scheduler

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Canonical definition names, sorted."""
        return sorted(self._definitions)

    def plain_names(self) -> list[str]:
        """Names resolvable without a property suffix, sorted."""
        return sorted(
            name
            for name, definition in self._definitions.items()
            if not definition.parameterized
        )

    def parameterized_names(self) -> list[str]:
        """Names that need a ``:<props>`` suffix, sorted."""
        return sorted(
            name
            for name, definition in self._definitions.items()
            if definition.parameterized
        )

    def aliases(self) -> dict[str, str]:
        """Every accepted spelling → canonical name."""
        return dict(self._aliases)

    def definitions(self) -> list[SchedulerDefinition]:
        return [self._definitions[name] for name in self.names()]

    def describe(self) -> list[dict]:
        """Capability records for docs / REST, one per definition."""
        records = []
        for definition in self.definitions():
            records.append({
                "name": definition.name,
                "aliases": list(definition.aliases),
                "parameterized": definition.parameterized,
                "guarantee": [PROPERTY_NAMES[p] for p in definition.guarantee],
                "requires_waypoint": definition.requires_waypoint,
                "accepts": sorted(definition.accepts),
                "description": definition.description,
            })
        return records

    def __contains__(self, name: object) -> bool:
        return name in self._aliases

    def __iter__(self):
        return iter(self.definitions())


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


# ---------------------------------------------------------------------------
# built-in schedulers
# ---------------------------------------------------------------------------

def _run_wayup(problem, cleanup, oracle, properties, params):
    schedule = wayup_schedule(
        problem, include_cleanup=cleanup, oracle=oracle, **params
    )
    return SchedulerRun(schedule, None, (Property.WPE, Property.BLACKHOLE))


def _run_peacock(problem, cleanup, oracle, properties, params):
    schedule = peacock_schedule(
        problem, include_cleanup=cleanup, oracle=oracle, **params
    )
    return SchedulerRun(schedule, None, (Property.RLF, Property.BLACKHOLE))


def _run_greedy_slf(problem, cleanup, oracle, properties, params):
    schedule = greedy_slf_schedule(problem, include_cleanup=cleanup, oracle=oracle)
    return SchedulerRun(schedule, None, (Property.SLF, Property.BLACKHOLE))


def _run_oneshot(problem, cleanup, oracle, properties, params):
    return SchedulerRun(oneshot_schedule(problem, include_cleanup=cleanup), None, ())


def _run_sequential(problem, cleanup, oracle, properties, params):
    by_kind = {UpdateKind.INSTALL: 0, UpdateKind.SWITCH: 1, UpdateKind.DELETE: 2}
    order = sorted(
        problem.all_updates if cleanup else problem.required_updates,
        key=lambda node: (by_kind[problem.kind(node)], repr(node)),
    )
    return SchedulerRun(sequential_schedule(problem, order=order), None, ())


def _run_two_phase(problem, cleanup, oracle, properties, params):
    plan = two_phase_schedule(problem)
    if not cleanup:
        plan = plan.without_cleanup()
    return SchedulerRun(plan, None, plan.verification_report().properties)


def _run_strongest(problem, cleanup, oracle, properties, params):
    schedule, realized = strongest_feasible_schedule(
        problem, include_cleanup=cleanup
    )
    return SchedulerRun(schedule, f"kept={format_properties(realized)}", tuple(realized))


def _run_combined(problem, cleanup, oracle, properties, params):
    schedule = combined_greedy_schedule(
        problem, properties, include_cleanup=cleanup, oracle=oracle, **params
    )
    return SchedulerRun(schedule, None, tuple(properties))


#: Required-update count above which ``optimal:<props>`` defaults to the
#: branch-and-bound mode: past the old IDDFS frontier the forced-chain
#: bounds, incumbent seeding and nogood learning of
#: :mod:`repro.core.bnb` are what keep exact cells (campaign
#: ground-truthing included) inside their budgets.
BNB_DEFAULT_THRESHOLD = 18

#: Params only the branch-and-bound search understands; their presence
#: selects it, so ``optimal:slf?time_limit_s=2`` just works.
_BNB_ONLY_PARAMS = frozenset({"node_budget", "time_limit_s", "nogood_limit"})


def _run_optimal(problem, cleanup, oracle, properties, params):
    # the reference modes (?search=bfs, ?engine=sets, ?use_oracle=false)
    # only speak BFS, so the default must not override them; otherwise
    # iterative deepening is the small-instance default and
    # branch-and-bound takes over above BNB_DEFAULT_THRESHOLD (or when a
    # bnb-only knob is present)
    options = dict(params)
    if (
        "search" not in options
        and options.get("engine") not in ("sets", "bnb")
        and options.get("use_oracle", True)
    ):
        if (
            _BNB_ONLY_PARAMS & options.keys()
            or len(problem.required_updates) > BNB_DEFAULT_THRESHOLD
        ):
            options["search"] = "bnb"
        else:
            options["search"] = "iddfs"
    schedule = minimal_round_schedule(problem, properties, **options)
    if cleanup:
        schedule = schedule.with_cleanup()
    return SchedulerRun(schedule, None, tuple(properties))


#: The process-wide registry every layer resolves schedulers through.
REGISTRY = SchedulerRegistry()

for _definition in (
    SchedulerDefinition(
        "wayup",
        _run_wayup,
        aliases=("way-up",),
        guarantee=(Property.WPE, Property.BLACKHOLE),
        requires_waypoint=True,
        accepts=frozenset({"check_rounds"}),
        description="HotNets'14 waypoint-enforcing rounds (<= 6 rounds)",
    ),
    SchedulerDefinition(
        "peacock",
        _run_peacock,
        guarantee=(Property.RLF, Property.BLACKHOLE),
        accepts=frozenset({"exact", "rlf_budget"}),
        description="PODC'15 relaxed-loop-free rounds (O(log n) on reversals)",
    ),
    SchedulerDefinition(
        "greedy-slf",
        _run_greedy_slf,
        aliases=("greedy_slf", "greedy"),
        guarantee=(Property.SLF, Property.BLACKHOLE),
        description="greedy maximal strong-loop-free rounds (Omega(n) worst case)",
    ),
    SchedulerDefinition(
        "oneshot",
        _run_oneshot,
        aliases=("one-shot",),
        description="everything in one asynchronous round (no guarantee)",
    ),
    SchedulerDefinition(
        "sequential",
        _run_sequential,
        description="one node per round (maximally conservative baseline)",
    ),
    SchedulerDefinition(
        "two-phase",
        _run_two_phase,
        aliases=("two_phase", "twophase"),
        guarantee=(Property.SLF, Property.RLF, Property.BLACKHOLE),
        description="Reitblatt version-tagged prepare/flip/collect baseline",
    ),
    SchedulerDefinition(
        "strongest",
        _run_strongest,
        description="strongest feasible property ladder rung (detail: kept=...)",
    ),
    SchedulerDefinition(
        "combined",
        _run_combined,
        parameterized=True,
        accepts=frozenset({"rlf_budget"}),
        description="greedy rounds safe for every listed property at once",
    ),
    SchedulerDefinition(
        "optimal",
        _run_optimal,
        aliases=("minimal",),
        parameterized=True,
        accepts=frozenset(
            {"search", "engine", "use_oracle", "monotone_prune",
             "max_rounds", "max_nodes",
             "node_budget", "time_limit_s", "nogood_limit"}
        ),
        description=(
            "exact minimum-round search (mask engine; IDDFS default, "
            "branch-and-bound with nogood learning above n=18)"
        ),
    ),
):
    REGISTRY.register(_definition)
del _definition


def register_scheduler(
    name: str,
    factory: Callable[..., Any] | None = None,
    *,
    invoke: InvokeFn | None = None,
    aliases: tuple[str, ...] = (),
    guarantee: tuple[Property, ...] = (),
    parameterized: bool = False,
    requires_waypoint: bool = False,
    accepts: frozenset = frozenset(),
    description: str = "",
    replace: bool = False,
) -> SchedulerDefinition:
    """Register a third-party scheduler with the process-wide registry.

    The easy path: pass a ``factory(problem, include_cleanup=...) ->
    UpdateSchedule`` and the declared ``guarantee``; it becomes resolvable
    by every layer (CLI ``--algorithm``, REST, campaign specs).  Power
    users pass ``invoke`` directly to receive oracle handles, the bound
    property tuple, and engine params (see :data:`InvokeFn`).
    """
    if (factory is None) == (invoke is None):
        raise SchedulerSpecError("pass exactly one of factory= or invoke=")
    if invoke is None:
        def invoke(problem, cleanup, oracle, properties, params,
                   _factory=factory, _guarantee=tuple(guarantee)):
            return SchedulerRun(
                _factory(problem, include_cleanup=cleanup), None, _guarantee
            )
    return REGISTRY.register(
        SchedulerDefinition(
            name=name,
            invoke=invoke,
            aliases=tuple(aliases),
            guarantee=tuple(guarantee),
            parameterized=parameterized,
            requires_waypoint=requires_waypoint,
            accepts=frozenset(accepts),
            description=description,
        ),
        replace=replace,
    )


def resolve_scheduler(spec: "str | Scheduler") -> Scheduler:
    """Resolve a spec string against the process-wide registry."""
    return REGISTRY.resolve(spec)


def scheduler_names() -> list[str]:
    """Canonical names in the process-wide registry, sorted."""
    return REGISTRY.names()
