"""Transient-consistency verifiers.

Four properties from the paper and its companion papers are supported:

* **WPE** -- waypoint enforcement: no transient configuration lets a packet
  travel source -> destination without traversing the waypoint.
* **SLF** -- strong loop freedom: no transient configuration contains a
  forwarding cycle anywhere in the network.
* **RLF** -- relaxed loop freedom: no transient configuration sends packets
  *entering at the source* into a cycle (cycles unreachable from the source
  are tolerated; PODC'15).
* **BLACKHOLE** -- no transient configuration forwards a packet to a node
  without an applicable rule.

WPE, SLF and BLACKHOLE have exact polynomial checks on the round's union
graph (see :mod:`repro.core.transient`).  RLF is checked exactly by a
branching trajectory search with a cheap sound pre-filter; a conservative
mode answers "maybe unsafe" instead of paying the worst-case exponential
cost.  An exhaustive oracle validates all of the above in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import VerificationBudgetError, VerificationError
from repro.core.problem import RuleState, UpdateProblem, trace_walk
from repro.core.schedule import UpdateSchedule
from repro.core.transient import (
    UnionGraph,
    enumerate_round_configurations,
    functional_cycle,
)
from repro.topology.graph import NodeId


class Property(enum.Enum):
    """Transient properties a schedule can be verified against."""

    WPE = "waypoint-enforcement"
    SLF = "strong-loop-freedom"
    RLF = "relaxed-loop-freedom"
    BLACKHOLE = "blackhole-freedom"


@dataclass(frozen=True)
class Violation:
    """A concrete transient violation with a machine-checkable witness."""

    prop: Property
    round_index: int
    witness: tuple
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[round {self.round_index}] {self.prop.value}: {self.description} "
            f"(witness: {' -> '.join(map(repr, self.witness))})"
        )


@dataclass
class VerificationReport:
    """Outcome of verifying a schedule against a set of properties."""

    ok: bool
    violations: list[Violation] = field(default_factory=list)
    rounds_checked: int = 0
    properties: tuple[Property, ...] = ()
    method: str = "polynomial"
    conservative_hits: int = 0

    def first(self) -> Violation | None:
        return self.violations[0] if self.violations else None

    def by_property(self, prop: Property) -> list[Violation]:
        return [v for v in self.violations if v.prop is prop]


def default_properties(problem: UpdateProblem) -> tuple[Property, ...]:
    """What 'transiently secure' means by default for a problem.

    Waypointed problems check WPE (the WayUp guarantee); all problems check
    blackhole freedom.  Loop-freedom flavours are opt-in because WayUp
    deliberately trades them away (HotNets'14).
    """
    props: list[Property] = [Property.BLACKHOLE]
    if problem.waypoint is not None:
        props.append(Property.WPE)
    return tuple(props)


# ---------------------------------------------------------------------------
# per-round checks on the union graph
# ---------------------------------------------------------------------------

def check_wpe(union: UnionGraph, round_index: int) -> Violation | None:
    """Waypoint enforcement via s->d reachability avoiding w (exact)."""
    problem = union.problem
    if problem.waypoint is None:
        raise VerificationError("cannot check WPE without a waypoint")
    path = union.path_to(problem.destination, avoid=problem.waypoint)
    if path is None:
        return None
    return Violation(
        prop=Property.WPE,
        round_index=round_index,
        witness=path,
        description=(
            f"packets can reach {problem.destination!r} bypassing waypoint "
            f"{problem.waypoint!r}"
        ),
    )


def check_slf(union: UnionGraph, round_index: int) -> Violation | None:
    """Strong loop freedom via union-graph acyclicity (exact)."""
    cycle = union.find_cycle()
    if cycle is None:
        return None
    return Violation(
        prop=Property.SLF,
        round_index=round_index,
        witness=cycle,
        description="a transient configuration contains a forwarding loop",
    )


def check_blackhole(union: UnionGraph, round_index: int) -> Violation | None:
    """Blackhole freedom via reachable may-drop nodes (exact)."""
    hit = union.reachable_drop()
    if hit is None:
        return None
    path, node = hit
    return Violation(
        prop=Property.BLACKHOLE,
        round_index=round_index,
        witness=path,
        description=f"packets can reach {node!r} which may lack a rule",
    )


def check_rlf(
    union: UnionGraph,
    round_index: int,
    exact: bool = True,
    budget: int = 200_000,
) -> tuple[Violation | None, bool]:
    """Relaxed loop freedom.

    Returns ``(violation, conservative)``: in exact mode ``conservative`` is
    always False.  In conservative mode a reachable union-graph cycle is
    reported as a (possibly spurious) violation with ``conservative=True``.

    Exact mode runs the sound pre-filter first (no union cycle reachable
    from the source means provably safe), then a branching trajectory
    search: walk from the source, fixing each flexible node's state the
    first time the walk meets it; revisiting any node is a realizable
    s-reachable loop.
    """
    problem = union.problem
    source = problem.source
    reachable = set(union.reachable_from(source))
    cycle = union.find_cycle(within=reachable)
    if cycle is None:
        return None, False
    if not exact:
        return (
            Violation(
                prop=Property.RLF,
                round_index=round_index,
                witness=cycle,
                description=(
                    "a union-graph cycle is reachable from the source "
                    "(conservative check; may be spurious)"
                ),
            ),
            True,
        )
    witness = _rlf_trajectory_witness(union, budget)
    if witness is None:
        return None, False
    return (
        Violation(
            prop=Property.RLF,
            round_index=round_index,
            witness=witness,
            description="packets entering at the source can loop",
        ),
        False,
    )


def _rlf_trajectory_witness(
    union: UnionGraph, budget: int
) -> tuple[NodeId, ...] | None:
    """Branching DFS over source trajectories; returns a looping walk or None.

    Every walk fixes the state of each flexible node on first visit, so a
    revisited node closes a cycle that one concrete configuration realizes.
    Depth is bounded by the node count; branching only happens at flexible
    nodes that lie *on* the walk.
    """
    problem = union.problem
    destination = problem.destination
    states_explored = 0

    def targets_of(node: NodeId) -> list[NodeId]:
        seen: set = set()
        result: list[NodeId] = []
        for choice in union.choices(node):
            target = choice.target
            if target is None or target in seen:
                continue  # drops are blackhole territory, not loops
            seen.add(target)
            result.append(target)
        return result

    source = problem.source
    if source == destination:  # degenerate, excluded by Path validation
        return None
    walk: list[NodeId] = [source]
    on_walk: set = {source}
    pending: list[list[NodeId]] = [targets_of(source)]

    while pending:
        states_explored += 1
        if states_explored > budget:
            raise VerificationBudgetError(
                f"relaxed-loop-freedom search exceeded {budget} states"
            )
        options = pending[-1]
        if not options:
            pending.pop()
            on_walk.discard(walk.pop())
            continue
        target = options.pop()
        if target in on_walk:
            return tuple(walk) + (target,)
        if target == destination:
            continue
        walk.append(target)
        on_walk.add(target)
        pending.append(targets_of(target))
    return None


# ---------------------------------------------------------------------------
# schedule-level verification
# ---------------------------------------------------------------------------

def verify_round(
    schedule: UpdateSchedule,
    round_index: int,
    properties: tuple[Property, ...],
    exact_rlf: bool = True,
    rlf_budget: int = 200_000,
) -> tuple[list[Violation], int]:
    """Check one round; returns ``(violations, conservative_hits)``."""
    union = UnionGraph.for_round(schedule, round_index)
    violations: list[Violation] = []
    conservative_hits = 0
    for prop in properties:
        if prop is Property.WPE:
            found = check_wpe(union, round_index)
        elif prop is Property.SLF:
            found = check_slf(union, round_index)
        elif prop is Property.BLACKHOLE:
            found = check_blackhole(union, round_index)
        elif prop is Property.RLF:
            found, conservative = check_rlf(
                union, round_index, exact=exact_rlf, budget=rlf_budget
            )
            if conservative and found is not None:
                conservative_hits += 1
        else:  # pragma: no cover - enum is closed
            raise VerificationError(f"unknown property {prop!r}")
        if found is not None:
            violations.append(found)
    return violations, conservative_hits


def verify_schedule(
    schedule: UpdateSchedule,
    properties: tuple[Property, ...] | None = None,
    exact_rlf: bool = True,
    rlf_budget: int = 200_000,
    stop_at_first: bool = False,
) -> VerificationReport:
    """Verify every round of a schedule against ``properties``.

    With ``properties=None`` the defaults of :func:`default_properties`
    apply.  The report's ``ok`` is True iff no violation was found; in
    conservative RLF mode a reported violation may be spurious and
    ``conservative_hits`` counts those.
    """
    if properties is None:
        properties = default_properties(schedule.problem)
    report = VerificationReport(ok=True, properties=tuple(properties))
    for round_index in range(schedule.n_rounds):
        violations, conservative_hits = verify_round(
            schedule,
            round_index,
            properties,
            exact_rlf=exact_rlf,
            rlf_budget=rlf_budget,
        )
        report.rounds_checked += 1
        report.conservative_hits += conservative_hits
        if violations:
            report.ok = False
            report.violations.extend(violations)
            if stop_at_first:
                break
    return report


def is_round_safe(
    schedule: UpdateSchedule,
    round_index: int,
    properties: tuple[Property, ...],
    exact_rlf: bool = True,
    rlf_budget: int = 200_000,
) -> bool:
    """Convenience: True when one round has no (possibly spurious) violation."""
    violations, _ = verify_round(
        schedule, round_index, properties, exact_rlf=exact_rlf, rlf_budget=rlf_budget
    )
    return not violations


# ---------------------------------------------------------------------------
# exhaustive oracle (testing / small instances)
# ---------------------------------------------------------------------------

def verify_exhaustive(
    schedule: UpdateSchedule,
    properties: tuple[Property, ...] | None = None,
    max_flexible: int = 16,
    stop_at_first: bool = False,
) -> VerificationReport:
    """Brute-force verification by enumerating every transient configuration.

    Exponential in the round size; exists to validate the polynomial
    verifiers and to double-check small, critical scenarios (E1).
    """
    problem = schedule.problem
    if properties is None:
        properties = default_properties(problem)
    report = VerificationReport(
        ok=True, properties=tuple(properties), method="exhaustive"
    )
    want_wpe = Property.WPE in properties
    if want_wpe and problem.waypoint is None:
        raise VerificationError("cannot check WPE without a waypoint")
    for round_index in range(schedule.n_rounds):
        report.rounds_checked += 1
        for config in enumerate_round_configurations(
            schedule, round_index, max_flexible=max_flexible
        ):
            walk = trace_walk(problem, config.next_hop)
            if want_wpe and walk.delivered and not walk.traversed(problem.waypoint):
                report.violations.append(
                    Violation(
                        Property.WPE,
                        round_index,
                        walk.visited,
                        "delivered without traversing the waypoint",
                    )
                )
            if Property.RLF in properties and walk.looped:
                report.violations.append(
                    Violation(
                        Property.RLF, round_index, walk.visited, "source walk loops"
                    )
                )
            if Property.BLACKHOLE in properties and walk.dropped:
                report.violations.append(
                    Violation(
                        Property.BLACKHOLE,
                        round_index,
                        walk.visited,
                        "source walk is dropped",
                    )
                )
            if Property.SLF in properties:
                cycle = functional_cycle(config)
                if cycle is not None:
                    report.violations.append(
                        Violation(
                            Property.SLF,
                            round_index,
                            cycle,
                            "configuration contains a forwarding loop",
                        )
                    )
            if report.violations and stop_at_first:
                report.ok = False
                return report
    report.ok = not report.violations
    return report
