"""Multi-policy updates (after Dudycz, Ludwig, Schmid, DSN'16).

Two regimes exist when several policies change at once:

* **Isolated flows** -- each policy matches its own flow (5-tuple rules),
  so rule changes never interact; per-policy schedules can simply be
  *merged* round-by-round (:func:`merge_isolated_schedules`), and the joint
  update finishes in ``max_i rounds_i`` rounds.
* **Shared rules** -- destination-based forwarding means one rule per node
  serves *every* policy towards that destination.  Updating a node flips it
  for all policies simultaneously, and a round that is safe for one policy
  may be fatal for another ("can't touch this").
  :class:`JointUpdateProblem` models the shared state space and
  :func:`greedy_joint_schedule` packs rounds that every policy accepts,
  raising :class:`InfeasibleUpdateError` when the policies deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.errors import InfeasibleUpdateError, UpdateModelError
from repro.core.oracle import SafetyOracle
from repro.core.problem import RuleState, UpdateKind, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.transient import UnionGraph
from repro.core.verify import (
    Property,
    VerificationReport,
    Violation,
    check_blackhole,
    check_rlf,
    check_slf,
    check_wpe,
)
from repro.topology.graph import NodeId


class JointUpdateProblem:
    """Several policies towards one destination sharing per-node rules.

    Duck-types the parts of :class:`~repro.core.problem.UpdateProblem` that
    :class:`~repro.core.schedule.UpdateSchedule` and the union-graph
    machinery need (``nodes``, ``forwarding_nodes``, ``kind``, ``next_hop``,
    ``required_updates``, ``cleanup_updates``).
    """

    def __init__(self, policies: Sequence[UpdateProblem], name: str = "joint") -> None:
        if not policies:
            raise UpdateModelError("a joint problem needs at least one policy")
        self.policies = tuple(policies)
        self.name = name
        destination = self.policies[0].destination
        for policy in self.policies:
            if policy.destination != destination:
                raise UpdateModelError(
                    "shared-rule policies must share the destination: "
                    f"{policy.destination!r} != {destination!r}"
                )
        self.destination = destination
        self._old_next: dict[NodeId, NodeId] = {}
        self._new_next: dict[NodeId, NodeId] = {}
        for policy in self.policies:
            self._merge(self._old_next, policy.old_path.nodes, policy.name, "old")
            self._merge(self._new_next, policy.new_path.nodes, policy.name, "new")

    def _merge(self, table: dict, nodes: tuple, policy_name: str, label: str) -> None:
        for u, v in zip(nodes, nodes[1:]):
            existing = table.get(u)
            if existing is not None and existing != v:
                raise UpdateModelError(
                    f"{label} rules conflict at {u!r}: policy {policy_name!r} "
                    f"needs {v!r} but another policy set {existing!r}"
                )
            table[u] = v

    # ------------------------------------------------------------------
    # UpdateProblem-compatible surface
    # ------------------------------------------------------------------
    @cached_property
    def nodes(self) -> frozenset:
        everything: set = {self.destination}
        everything.update(self._old_next)
        everything.update(self._new_next)
        return frozenset(everything)

    @cached_property
    def forwarding_nodes(self) -> frozenset:
        return self.nodes - {self.destination}

    def next_hop(self, node: NodeId, state: RuleState) -> NodeId | None:
        if node == self.destination:
            raise UpdateModelError("the destination does not forward")
        if state is RuleState.OLD:
            return self._old_next.get(node)
        return self._new_next.get(node)

    def kind(self, node: NodeId) -> UpdateKind:
        if node == self.destination:
            return UpdateKind.NOOP
        old = self._old_next.get(node)
        new = self._new_next.get(node)
        if old is None and new is None:
            raise UpdateModelError(f"{node!r} is not part of {self.name!r}")
        if old is not None and new is not None:
            return UpdateKind.NOOP if old == new else UpdateKind.SWITCH
        if new is not None:
            return UpdateKind.INSTALL
        return UpdateKind.DELETE

    @cached_property
    def required_updates(self) -> frozenset:
        return frozenset(
            node
            for node in self.forwarding_nodes
            if self.kind(node) in (UpdateKind.INSTALL, UpdateKind.SWITCH)
        )

    @cached_property
    def cleanup_updates(self) -> frozenset:
        return frozenset(
            node
            for node in self.forwarding_nodes
            if self.kind(node) is UpdateKind.DELETE
        )


@dataclass(frozen=True)
class PolicyView:
    """One policy's perspective on the shared state.

    Duck-types enough of :class:`~repro.core.problem.UpdateProblem` for
    both the from-scratch verifiers (:class:`UnionGraph`) and the
    incremental :class:`~repro.core.oracle.SafetyOracle`: the node set
    and next-hop tables come from the *joint* rule state, while source,
    waypoint and the initial path ordering come from the policy whose
    property verdicts are being asked.
    """

    joint: JointUpdateProblem
    policy: UpdateProblem

    @property
    def name(self):
        return f"{self.joint.name}:{self.policy.name}"

    @property
    def source(self):
        return self.policy.source

    @property
    def destination(self):
        return self.joint.destination

    @property
    def waypoint(self):
        return self.policy.waypoint

    @property
    def nodes(self):
        return self.joint.nodes

    @property
    def forwarding_nodes(self):
        return self.joint.forwarding_nodes

    @property
    def old_path(self):
        return self.policy.old_path

    @cached_property
    def old_next(self) -> dict:
        table = self.joint._old_next
        return {node: table.get(node) for node in self.joint.forwarding_nodes}

    @cached_property
    def new_next(self) -> dict:
        table = self.joint._new_next
        return {node: table.get(node) for node in self.joint.forwarding_nodes}

    def next_hop(self, node, state):
        return self.joint.next_hop(node, state)


def verify_joint_round(
    joint: JointUpdateProblem,
    updated: set,
    round_nodes: set,
    properties: tuple[Property, ...],
    round_index: int = 0,
    rlf_budget: int = 200_000,
) -> list[Violation]:
    """Check one shared-rule round against every policy's properties."""
    violations: list[Violation] = []
    for policy in joint.policies:
        view = PolicyView(joint, policy)
        union = UnionGraph.from_update_sets(view, updated, round_nodes)
        for prop in properties:
            if prop is Property.WPE:
                if policy.waypoint is None:
                    continue
                found = check_wpe(union, round_index)
            elif prop is Property.SLF:
                found = check_slf(union, round_index)
            elif prop is Property.BLACKHOLE:
                found = check_blackhole(union, round_index)
            else:
                found, _ = check_rlf(union, round_index, exact=True, budget=rlf_budget)
            if found is not None:
                violations.append(found)
    return violations


def verify_joint_schedule(
    joint: JointUpdateProblem,
    schedule: UpdateSchedule,
    properties: tuple[Property, ...],
) -> VerificationReport:
    """Verify a shared-rule schedule for every policy at once."""
    report = VerificationReport(ok=True, properties=tuple(properties))
    updated: set = set()
    for index, round_nodes in enumerate(schedule.rounds):
        found = verify_joint_round(
            joint, updated, set(round_nodes), properties, round_index=index
        )
        report.rounds_checked += 1
        if found:
            report.ok = False
            report.violations.extend(found)
        updated |= round_nodes
    return report


def greedy_joint_schedule(
    joint: JointUpdateProblem,
    properties: tuple[Property, ...] = (Property.RLF, Property.BLACKHOLE),
    include_cleanup: bool = True,
    use_oracle: bool = True,
) -> UpdateSchedule:
    """Greedy maximal safe rounds over the shared rule set.

    Unlike the single-policy schedulers there is no progress guarantee:
    policies can deadlock each other (DSN'16), in which case
    :class:`InfeasibleUpdateError` is raised.

    By default every round-safety probe runs against one persistent
    :class:`~repro.core.oracle.SafetyOracle` per policy view, so the
    candidate walk is a sequence of one-node deltas on maintained union
    graphs instead of per-probe rebuilds; ``use_oracle=False`` restores
    the from-scratch :func:`verify_joint_round` pipeline (the reference
    the oracle path is cross-checked against in the tests).
    """
    properties = tuple(properties)
    if use_oracle:
        oracles = []
        for policy in joint.policies:
            view_props = tuple(
                prop
                for prop in properties
                if prop is not Property.WPE or policy.waypoint is not None
            )
            if view_props:
                oracles.append(SafetyOracle(PolicyView(joint, policy), view_props))

        def round_unsafe(updated: set, candidate: set) -> bool:
            return any(
                not oracle.round_is_safe(updated, candidate) for oracle in oracles
            )

    else:

        def round_unsafe(updated: set, candidate: set) -> bool:
            return bool(verify_joint_round(joint, updated, candidate, properties))

    install = {
        node
        for node in joint.required_updates
        if joint.kind(node) is UpdateKind.INSTALL
    }
    rounds: list[set] = []
    updated: set = set()
    if install:
        if round_unsafe(updated, install):
            raise InfeasibleUpdateError(
                "installing new-only rules is already unsafe for some policy"
            )
        rounds.append(install)
        updated |= install
    pending = sorted(joint.required_updates - install, key=repr)
    while pending:
        round_nodes: set = set()
        kept: list = []
        for node in pending:
            candidate = round_nodes | {node}
            if not round_unsafe(updated, candidate):
                round_nodes = candidate
            else:
                kept.append(node)
        if not round_nodes:
            raise InfeasibleUpdateError(
                f"policies deadlock: none of {kept!r} can be updated safely"
            )
        rounds.append(round_nodes)
        updated |= round_nodes
        pending = kept
    if include_cleanup and joint.cleanup_updates:
        rounds.append(set(joint.cleanup_updates))
    return UpdateSchedule(
        joint,  # type: ignore[arg-type]  # duck-typed problem surface
        rounds,
        algorithm="joint-greedy",
        metadata={"policies": [p.name for p in joint.policies]},
    )


@dataclass(frozen=True)
class MergedPlan:
    """Round-merged execution plan for *isolated* (per-flow) policies."""

    schedules: tuple[UpdateSchedule, ...]

    @property
    def n_rounds(self) -> int:
        return max((s.n_rounds for s in self.schedules), default=0)

    def combined_rounds(self) -> list[list[tuple[UpdateProblem, frozenset]]]:
        """Round ``i`` = the i-th round of every policy, executed together."""
        combined: list[list[tuple[UpdateProblem, frozenset]]] = []
        for index in range(self.n_rounds):
            entry = [
                (s.problem, s.rounds[index])
                for s in self.schedules
                if index < s.n_rounds
            ]
            combined.append(entry)
        return combined

    def total_updates(self) -> int:
        return sum(s.total_updates() for s in self.schedules)


def merge_isolated_schedules(schedules: Sequence[UpdateSchedule]) -> MergedPlan:
    """Merge per-flow schedules; safe because isolated flows never interact."""
    if not schedules:
        raise UpdateModelError("nothing to merge")
    return MergedPlan(schedules=tuple(schedules))
