"""Analytic update-time model.

The demo's measured quantity is the *update time of flow tables*: how long
the controller needs from the first FlowMod to the last barrier reply.  For
a round schedule over an asynchronous control channel this decomposes per
round into (a) shipping the round's FlowMods (half an RTT), (b) the slowest
switch of the round applying its rule changes, and (c) the barrier exchange
confirming the round (half an RTT back plus barrier processing).

The model here predicts that time from a handful of parameters; E5 checks
it against the event-driven simulation.  It intentionally ignores
controller compute time and message serialization, which the simulation
includes, so expect the model to be a slight *under*-estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import UpdateSchedule
from repro.core.twophase import TwoPhaseSchedule


@dataclass(frozen=True)
class CostModel:
    """Latency parameters, all in milliseconds.

    ``rtt_ms`` is controller<->switch round-trip time; ``install_ms`` the
    per-FlowMod application time on a switch (Kuzniar et al. report
    anything from well under a millisecond on OVS to tens or hundreds of
    milliseconds on hardware tables); ``barrier_ms`` the barrier processing
    overhead on the switch.  ``per_switch_install_ms`` can pin individual
    switches to other speeds (heterogeneous hardware).
    """

    rtt_ms: float = 2.0
    install_ms: float = 0.5
    barrier_ms: float = 0.1
    per_switch_install_ms: dict = field(default_factory=dict)

    def install_time(self, node, n_rules: int = 1) -> float:
        base = self.per_switch_install_ms.get(node, self.install_ms)
        return base * n_rules

    def round_time(self, nodes, rules_per_node: int = 1) -> float:
        """Duration of one barrier-fenced round over ``nodes``."""
        slowest = max(
            (self.install_time(node, rules_per_node) for node in nodes), default=0.0
        )
        return self.rtt_ms + slowest + self.barrier_ms


def schedule_update_time(
    schedule: UpdateSchedule, cost: CostModel, rules_per_node: int = 1
) -> float:
    """Predicted update time of a round schedule, in milliseconds."""
    return sum(
        cost.round_time(round_nodes, rules_per_node) for round_nodes in schedule.rounds
    )


def two_phase_update_time(plan: TwoPhaseSchedule, cost: CostModel) -> float:
    """Predicted update time of a two-phase plan, in milliseconds.

    Phase 1 installs one versioned rule per prepared switch, phase 2 flips
    the ingress, phase 3 deletes stale rules.
    """
    return sum(cost.round_time(phase) for phase in plan.rounds)


def round_time_breakdown(
    schedule: UpdateSchedule, cost: CostModel
) -> list[dict]:
    """Per-round component table used by E5's report."""
    rows = []
    for index, round_nodes in enumerate(schedule.rounds):
        slowest = max(
            (cost.install_time(node) for node in round_nodes), default=0.0
        )
        rows.append(
            {
                "round": index,
                "switches": len(round_nodes),
                "rtt_ms": cost.rtt_ms,
                "slowest_install_ms": slowest,
                "barrier_ms": cost.barrier_ms,
                "total_ms": cost.rtt_ms + slowest + cost.barrier_ms,
            }
        )
    return rows


#: Install-latency presets, loosely after Kuzniar et al., PAM'15 ("What you
#: need to know about SDN flow tables"): software switches apply FlowMods in
#: well under a millisecond, hardware TCAM updates take orders of magnitude
#: longer and vary wildly between vendors.
OVS_FAST = CostModel(rtt_ms=2.0, install_ms=0.3, barrier_ms=0.05)
OVS_LOADED = CostModel(rtt_ms=5.0, install_ms=1.0, barrier_ms=0.2)
HARDWARE_TCAM = CostModel(rtt_ms=5.0, install_ms=30.0, barrier_ms=1.0)
WAN_CONTROL = CostModel(rtt_ms=50.0, install_ms=1.0, barrier_ms=0.2)

PRESETS = {
    "ovs-fast": OVS_FAST,
    "ovs-loaded": OVS_LOADED,
    "hardware-tcam": HARDWARE_TCAM,
    "wan-control": WAN_CONTROL,
}
