"""The Peacock scheduler: relaxed-loop-free updates in few rounds.

Reconstructed from the model of Ludwig, Marcinkowski, Schmid, *Scheduling
Loop-Free Network Updates: It's Good to Relax!* (PODC'15), which the demo
paper executes.  Peacock targets **relaxed loop freedom** (RLF): transient
forwarding loops are tolerated as long as no packet *entering at the source*
can run into one.  Relaxation is what buys the round count: strong loop
freedom needs Omega(n) rounds on adversarial instances where relaxed
schedules finish in O(log n) (PODC'15); on the reversal family in
:mod:`repro.core.hardness` this implementation finishes in 3 switch rounds
while any strong-loop-free schedule needs n-3.

Structure of the emitted schedule:

1. *install* -- new-only nodes first; they receive no traffic yet.
2. *forward* -- every node whose new rule jumps forward with respect to the
   old-path order is flipped at once.  All union-graph edges then strictly
   advance along the old path, so this round is even strongly loop-free.
3. *backward-k* -- the remaining (backward) nodes are packed greedily into
   maximal rounds accepted by the exact RLF verifier.  Candidates are
   visited by decreasing new-path position; the pending node closest to the
   destination is always safe (its new edge enters a fully updated suffix
   that drains to the destination), so every round makes progress and the
   greedy terminates.
4. *cleanup* (optional) -- stale rules at old-only nodes are deleted.
"""

from __future__ import annotations

from repro.errors import UpdateModelError
from repro.core.oracle import SafetyOracle, oracle_for
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.topology.graph import NodeId
from repro.core.verify import Property


def classify_forward_backward(problem: UpdateProblem) -> tuple[set, set]:
    """Split SWITCH nodes into forward and backward movers.

    A switch node's new edge may lead into a chain of new-only nodes; the
    chain exits at the first new-path successor that lies on the old path
    (the destination in the worst case).  The node is *forward* when that
    exit sits strictly later on the old path than the node itself.
    """
    old_pos = {node: i for i, node in enumerate(problem.old_path.nodes)}
    forward: set = set()
    backward: set = set()
    for node in problem.required_updates:
        if problem.kind(node) is not UpdateKind.SWITCH:
            continue
        exit_node = node
        position = problem.new_path.index_of(node)
        for candidate in problem.new_path.nodes[position + 1 :]:
            if candidate in old_pos:
                exit_node = candidate
                break
        if old_pos[exit_node] > old_pos[node]:
            forward.add(node)
        else:
            backward.add(node)
    return forward, backward


def peacock_schedule(
    problem: UpdateProblem,
    include_cleanup: bool = True,
    exact: bool = True,
    rlf_budget: int = 200_000,
    oracle: SafetyOracle | None = None,
) -> UpdateSchedule:
    """Compute a relaxed-loop-free round schedule for ``problem``.

    ``exact=False`` switches the per-round safety test to the conservative
    union-graph check: still sound (never emits an unsafe round) but may
    use more rounds; use it for very large instances.

    Backward-round packing runs as apply/revert deltas against the shared
    :class:`SafetyOracle`: when the incremental topological order proves
    the union graph acyclic, the RLF query short-circuits without any
    reachability work.
    """
    if not problem.required_updates:
        raise UpdateModelError("Peacock invoked on a problem with no rule changes")
    if oracle is None:
        oracle = oracle_for(
            problem, (Property.RLF,), exact_rlf=exact, rlf_budget=rlf_budget
        )
    else:
        oracle.ensure_matches(
            problem, (Property.RLF,), exact_rlf=exact, rlf_budget=rlf_budget
        )

    install = {
        node
        for node in problem.required_updates
        if problem.kind(node) is UpdateKind.INSTALL
    }
    forward, backward = classify_forward_backward(problem)

    rounds: list[set] = []
    round_names: list[str] = []
    updated: set = set()
    if install:
        rounds.append(install)
        round_names.append("install")
        updated |= install
    if forward:
        rounds.append(forward)
        round_names.append("forward")
        updated |= forward
    oracle.reset(updated)

    new_pos = {node: i for i, node in enumerate(problem.new_path.nodes)}
    pending = sorted(backward, key=lambda n: new_pos[n], reverse=True)
    backward_round = 0
    while pending:
        round_nodes: set = set()
        kept: list[NodeId] = []
        for node in pending:
            if oracle.try_apply(node):
                round_nodes.add(node)
            else:
                kept.append(node)
        if not round_nodes:
            # The progress argument guarantees this cannot happen; guard
            # anyway so a modelling bug surfaces loudly instead of looping.
            raise UpdateModelError(
                f"Peacock made no progress with pending nodes {kept!r}"
            )
        backward_round += 1
        rounds.append(round_nodes)
        round_names.append(f"backward-{backward_round}")
        updated |= round_nodes
        oracle.commit_round()
        pending = kept

    if include_cleanup and problem.cleanup_updates:
        rounds.append(set(problem.cleanup_updates))
        round_names.append("cleanup")

    return UpdateSchedule(
        problem,
        rounds,
        algorithm="peacock",
        metadata={
            "round_names": round_names,
            "exact": exact,
            "property": Property.RLF.value,
        },
    )
