"""Greedy strong-loop-free scheduler (the comparator Peacock relaxes).

Each round flips a maximal set of pending nodes such that the round's union
graph stays acyclic -- i.e. *no* transient configuration, reachable or not,
contains a forwarding loop.  This is the classic greedy from the
consistent-updates literature; PODC'15 shows strong loop freedom inherently
needs Omega(n) rounds on adversarial instances, which this scheduler makes
visible in benchmark E3.

Progress argument: the pending node with the highest new-path position has a
new edge that enters a fully updated suffix draining to the destination, so
it can always be flipped alone without closing a cycle; the greedy therefore
never stalls.
"""

from __future__ import annotations

from repro.errors import UpdateModelError
from repro.core.oracle import SafetyOracle, oracle_for
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.verify import Property
from repro.topology.graph import NodeId


def greedy_slf_schedule(
    problem: UpdateProblem,
    include_cleanup: bool = True,
    oracle: SafetyOracle | None = None,
) -> UpdateSchedule:
    """Compute a strong-loop-free schedule with greedy maximal rounds.

    Each candidate is an apply/revert delta against the persistent union
    graph of the shared :class:`SafetyOracle`; the Pearce-Kelly order
    maintenance answers the acyclicity query in amortized near-constant
    time, so scheduling is no longer quadratically many full-graph cycle
    checks.
    """
    if not problem.required_updates:
        raise UpdateModelError(
            "greedy SLF scheduler invoked on a problem with no rule changes"
        )
    if oracle is None:
        oracle = oracle_for(problem, (Property.SLF,))
    else:
        oracle.ensure_matches(problem, (Property.SLF,))

    install = {
        node
        for node in problem.required_updates
        if problem.kind(node) is UpdateKind.INSTALL
    }
    switches = set(problem.required_updates) - install

    rounds: list[set] = []
    round_names: list[str] = []
    updated: set = set()
    if install:
        rounds.append(install)
        round_names.append("install")
        updated |= install
    oracle.reset(updated)

    new_pos = {node: i for i, node in enumerate(problem.new_path.nodes)}
    pending = sorted(switches, key=lambda n: new_pos[n], reverse=True)
    flip_round = 0
    while pending:
        round_nodes: set = set()
        kept: list[NodeId] = []
        for node in pending:
            if oracle.try_apply(node):
                round_nodes.add(node)
            else:
                kept.append(node)
        if not round_nodes:
            raise UpdateModelError(
                f"greedy SLF made no progress with pending nodes {kept!r}"
            )
        flip_round += 1
        rounds.append(round_nodes)
        round_names.append(f"flip-{flip_round}")
        updated |= round_nodes
        oracle.commit_round()
        pending = kept

    if include_cleanup and problem.cleanup_updates:
        rounds.append(set(problem.cleanup_updates))
        round_names.append("cleanup")

    return UpdateSchedule(
        problem,
        rounds,
        algorithm="greedy-slf",
        metadata={"round_names": round_names, "property": Property.SLF.value},
    )
