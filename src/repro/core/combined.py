"""Scheduling under arbitrary property combinations (SIGMETRICS'16 [3]).

WayUp fixes WPE, Peacock fixes relaxed loop freedom; *Transiently Secure
Network Updates* (Ludwig et al., SIGMETRICS'16) studies the combination --
which is where both the NP-hardness and the outright infeasibility live
(see :func:`repro.core.hardness.crossing_instance`).

:func:`combined_greedy_schedule` packs greedy maximal rounds that satisfy
*every* requested property simultaneously.  Unlike the single-property
schedulers there is no progress guarantee: when no pending node can be
updated alone without violating some property, the instance is infeasible
for greedy round-by-round updating and :class:`InfeasibleUpdateError` is
raised (for small instances, :func:`repro.core.optimal.is_feasible` gives
the exact verdict).
"""

from __future__ import annotations

from repro.errors import InfeasibleUpdateError, UpdateModelError
from repro.core.oracle import SafetyOracle, oracle_for
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.verify import Property
from repro.topology.graph import NodeId


def combined_greedy_schedule(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    include_cleanup: bool = True,
    rlf_budget: int = 200_000,
    oracle: SafetyOracle | None = None,
) -> UpdateSchedule:
    """Greedy maximal rounds safe for all ``properties`` at once.

    Candidates are visited by decreasing new-path position (the order
    whose suffix-drains-to-destination argument powers the single-property
    greedies); installs go first, deletions last.  Raises
    :class:`InfeasibleUpdateError` on deadlock.  Every candidate is an
    apply/revert delta against the shared multi-property
    :class:`SafetyOracle`.
    """
    if not properties:
        raise UpdateModelError("combined scheduling needs at least one property")
    if Property.WPE in properties and problem.waypoint is None:
        raise UpdateModelError("cannot schedule for WPE without a waypoint")
    if not problem.required_updates:
        raise UpdateModelError("combined scheduler invoked on a no-op problem")
    properties = tuple(properties)
    if oracle is None:
        oracle = oracle_for(problem, properties, rlf_budget=rlf_budget)
    else:
        oracle.ensure_matches(problem, properties, rlf_budget=rlf_budget)

    install = {
        node
        for node in problem.required_updates
        if problem.kind(node) is UpdateKind.INSTALL
    }
    rounds: list[set] = []
    round_names: list[str] = []
    updated: set = set()
    if install:
        if not oracle.round_is_safe(updated, install):
            raise InfeasibleUpdateError(
                "installing new-only rules already violates "
                f"{[p.value for p in properties]}"
            )
        rounds.append(install)
        round_names.append("install")
        updated |= install

    oracle.reset(updated)
    new_pos = {node: i for i, node in enumerate(problem.new_path.nodes)}
    pending = sorted(
        problem.required_updates - install,
        key=lambda n: new_pos[n],
        reverse=True,
    )
    flip_round = 0
    while pending:
        round_nodes: set = set()
        kept: list[NodeId] = []
        for node in pending:
            if oracle.try_apply(node):
                round_nodes.add(node)
            else:
                kept.append(node)
        if not round_nodes:
            raise InfeasibleUpdateError(
                f"greedy deadlock under {[p.value for p in properties]}: "
                f"none of {kept!r} can be updated safely"
            )
        flip_round += 1
        rounds.append(round_nodes)
        round_names.append(f"flip-{flip_round}")
        updated |= round_nodes
        oracle.commit_round()
        pending = kept

    if include_cleanup and problem.cleanup_updates:
        rounds.append(set(problem.cleanup_updates))
        round_names.append("cleanup")

    return UpdateSchedule(
        problem,
        rounds,
        algorithm="combined-greedy",
        metadata={
            "round_names": round_names,
            "properties": [p.value for p in properties],
        },
    )


def strongest_feasible_schedule(
    problem: UpdateProblem,
    include_cleanup: bool = True,
) -> tuple[UpdateSchedule, tuple[Property, ...]]:
    """Best-effort: try property combinations from strongest to weakest.

    Order (waypointed): WPE+SLF+BH, WPE+RLF+BH, WPE+BH, RLF+BH, BH.
    Returns the first combination the greedy can realize, with the
    schedule.  Mirrors how an operator would degrade gracefully when the
    full combination is infeasible.
    """
    ladder: list[tuple[Property, ...]] = []
    if problem.waypoint is not None:
        ladder.extend([
            (Property.WPE, Property.SLF, Property.BLACKHOLE),
            (Property.WPE, Property.RLF, Property.BLACKHOLE),
            (Property.WPE, Property.BLACKHOLE),
        ])
    ladder.extend([
        (Property.SLF, Property.BLACKHOLE),
        (Property.RLF, Property.BLACKHOLE),
        (Property.BLACKHOLE,),
    ])
    last_error: InfeasibleUpdateError | None = None
    for properties in ladder:
        try:
            schedule = combined_greedy_schedule(
                problem, properties, include_cleanup=include_cleanup
            )
        except InfeasibleUpdateError as exc:
            last_error = exc
            continue
        return schedule, properties
    raise InfeasibleUpdateError(
        f"even blackhole freedom alone is greedy-infeasible: {last_error}"
    )
