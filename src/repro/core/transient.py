"""Transient-state machinery: phases, union graphs, configuration spaces.

During round ``i`` of a schedule the network can be in any configuration
where nodes of earlier rounds are NEW, nodes of later rounds (or unscheduled
nodes) are OLD, and nodes of round ``i`` are *either*.  The **union graph**
gives every node the set of out-edges it may have in any such configuration.

Key facts (proved in the cited papers, exploited by the verifiers):

* a simple cycle of the union graph uses at most one out-edge per node, so
  it is realized by some configuration -- and every configuration's
  forwarding graph is a subgraph of the union graph.  Hence *strong loop
  freedom of the round* is exactly *acyclicity of the union graph*;
* the same argument applies to simple paths, which makes waypoint
  enforcement and blackhole freedom checkable by plain reachability.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.errors import VerificationError
from repro.core.problem import Configuration, RuleState, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.topology.graph import NodeId


class NodePhase(enum.Enum):
    """Where a node stands relative to the round under scrutiny."""

    FIXED_OLD = "fixed_old"  # updates in a later round / never
    FIXED_NEW = "fixed_new"  # updated in an earlier round
    FLEXIBLE = "flexible"    # updates in this round: state unknown


def phases_for_round(
    schedule: UpdateSchedule, round_index: int
) -> dict[NodeId, NodePhase]:
    """Map every forwarding node to its :class:`NodePhase` in ``round_index``."""
    if not 0 <= round_index < schedule.n_rounds:
        raise VerificationError(
            f"round index {round_index} out of range 0..{schedule.n_rounds - 1}"
        )
    phases: dict[NodeId, NodePhase] = {}
    for node in schedule.problem.forwarding_nodes:
        node_round = schedule.round_of(node)
        if node_round is None or node_round > round_index:
            phases[node] = NodePhase.FIXED_OLD
        elif node_round < round_index:
            phases[node] = NodePhase.FIXED_NEW
        else:
            phases[node] = NodePhase.FLEXIBLE
    return phases


@dataclass(frozen=True)
class EdgeChoice:
    """One possible behaviour of a node: forward to ``target`` or drop."""

    state: RuleState
    target: NodeId | None  # None = drop

    @property
    def drops(self) -> bool:
        return self.target is None


class UnionGraph:
    """All possible out-edges of every node during one round.

    Construct with :meth:`for_round`.  Nodes with a single fixed state
    contribute one choice; flexible nodes contribute (up to) two.
    """

    def __init__(
        self,
        problem: UpdateProblem,
        choices: dict[NodeId, tuple[EdgeChoice, ...]],
        flexible: frozenset,
    ) -> None:
        self.problem = problem
        self._choices = choices
        self.flexible = flexible

    @classmethod
    def for_round(cls, schedule: UpdateSchedule, round_index: int) -> "UnionGraph":
        phases = phases_for_round(schedule, round_index)
        return cls.from_phases(schedule.problem, phases)

    @classmethod
    def from_phases(
        cls, problem, phases: dict[NodeId, NodePhase]
    ) -> "UnionGraph":
        """Build from an explicit phase map.

        ``problem`` only needs ``forwarding_nodes``, ``next_hop``, ``source``
        and ``destination`` -- :class:`~repro.core.problem.UpdateProblem`
        satisfies this, as do the multi-policy views.
        """
        choices: dict[NodeId, tuple[EdgeChoice, ...]] = {}
        flexible: set = set()
        for node in problem.forwarding_nodes:
            phase = phases.get(node, NodePhase.FIXED_OLD)
            if phase is NodePhase.FIXED_OLD:
                options = (EdgeChoice(RuleState.OLD, problem.next_hop(node, RuleState.OLD)),)
            elif phase is NodePhase.FIXED_NEW:
                options = (EdgeChoice(RuleState.NEW, problem.next_hop(node, RuleState.NEW)),)
            else:
                flexible.add(node)
                old = EdgeChoice(RuleState.OLD, problem.next_hop(node, RuleState.OLD))
                new = EdgeChoice(RuleState.NEW, problem.next_hop(node, RuleState.NEW))
                options = (old,) if old.target == new.target else (old, new)
            choices[node] = options
        return cls(problem, choices, frozenset(flexible))

    @classmethod
    def from_update_sets(
        cls, problem, updated: set, in_flight: set
    ) -> "UnionGraph":
        """Build from 'already updated' / 'updating right now' node sets."""
        phases = {node: NodePhase.FIXED_NEW for node in updated}
        phases.update({node: NodePhase.FLEXIBLE for node in in_flight})
        return cls.from_phases(problem, phases)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def choices(self, node: NodeId) -> tuple[EdgeChoice, ...]:
        """Possible behaviours of ``node`` (empty tuple for the destination)."""
        return self._choices.get(node, ())

    def successors(self, node: NodeId) -> list[NodeId]:
        """Possible forwarding targets of ``node`` (drops excluded)."""
        return [c.target for c in self.choices(node) if c.target is not None]

    def may_drop(self, node: NodeId) -> bool:
        """True when some configuration drops packets at ``node``."""
        return any(c.drops for c in self.choices(node))

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._choices)

    # ------------------------------------------------------------------
    # graph queries (witness-producing)
    # ------------------------------------------------------------------
    def reachable_from(self, start: NodeId) -> dict[NodeId, NodeId | None]:
        """BFS over union edges; returns ``{node: parent}`` for reached nodes."""
        parents: dict[NodeId, NodeId | None] = {start: None}
        frontier = [start]
        while frontier:
            next_frontier = []
            for node in frontier:
                for target in self.successors(node):
                    if target not in parents:
                        parents[target] = node
                        next_frontier.append(target)
            frontier = next_frontier
        return parents

    def path_to(
        self, destination: NodeId, avoid: NodeId | None = None
    ) -> tuple[NodeId, ...] | None:
        """A simple path source -> ``destination`` avoiding ``avoid``, or None."""
        start = self.problem.source
        if start == avoid:
            return None
        parents: dict[NodeId, NodeId | None] = {start: None}
        frontier = [start]
        while frontier:
            next_frontier = []
            for node in frontier:
                for target in self.successors(node):
                    if target == avoid or target in parents:
                        continue
                    parents[target] = node
                    if target == destination:
                        return _unwind(parents, destination)
                    next_frontier.append(target)
            frontier = next_frontier
        return None

    def find_cycle(self, within: set | None = None) -> tuple[NodeId, ...] | None:
        """A directed cycle of the union graph, or None.

        ``within`` restricts the search to a node subset (used for the
        reachable-cycle pre-filter of relaxed loop freedom).
        """
        allowed = within if within is not None else set(self._choices) | {
            self.problem.destination
        }
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in allowed}
        on_stack: list[NodeId] = []

        def targets(node: NodeId) -> list[NodeId]:
            return [t for t in self.successors(node) if t in color]

        for root in allowed:
            if color[root] != WHITE:
                continue
            stack: list[tuple[NodeId, Iterator[NodeId]]] = [(root, iter(targets(root)))]
            color[root] = GREY
            on_stack.append(root)
            while stack:
                node, it = stack[-1]
                advanced = False
                for target in it:
                    if color[target] == GREY:
                        cycle_start = on_stack.index(target)
                        return tuple(on_stack[cycle_start:]) + (target,)
                    if color[target] == WHITE:
                        color[target] = GREY
                        on_stack.append(target)
                        stack.append((target, iter(targets(target))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    on_stack.pop()
                    color[node] = BLACK
        return None

    def reachable_drop(self) -> tuple[tuple[NodeId, ...], NodeId] | None:
        """A ``(path, node)`` where ``node`` is s-reachable and may drop."""
        start = self.problem.source
        parents = self.reachable_from(start)
        for node in parents:
            if node in self._choices and self.may_drop(node):
                return _unwind(parents, node), node
        return None


def _unwind(parents: dict, node: NodeId) -> tuple[NodeId, ...]:
    """Reconstruct the BFS path ending at ``node``."""
    path = [node]
    while parents[node] is not None:
        node = parents[node]
        path.append(node)
    path.reverse()
    return tuple(path)


def enumerate_round_configurations(
    schedule: UpdateSchedule,
    round_index: int,
    max_flexible: int = 20,
) -> Iterator[Configuration]:
    """Yield every configuration reachable during ``round_index``.

    Exponential in the round size -- this is the oracle the polynomial
    verifiers are validated against, not the production path.
    """
    problem = schedule.problem
    phases = phases_for_round(schedule, round_index)
    flexible = sorted(
        (n for n, p in phases.items() if p is NodePhase.FLEXIBLE), key=repr
    )
    if len(flexible) > max_flexible:
        raise VerificationError(
            f"round {round_index} has {len(flexible)} flexible nodes; "
            f"exhaustive enumeration capped at {max_flexible}"
        )
    base = {
        node: RuleState.NEW
        for node, phase in phases.items()
        if phase is NodePhase.FIXED_NEW
    }
    for size in range(len(flexible) + 1):
        for subset in itertools.combinations(flexible, size):
            states = dict(base)
            states.update({node: RuleState.NEW for node in subset})
            yield Configuration(problem=problem, states=states)


def functional_graph(config: Configuration) -> dict[NodeId, NodeId | None]:
    """The single out-edge of every forwarding node under ``config``."""
    problem = config.problem
    return {node: config.next_hop(node) for node in problem.forwarding_nodes}


def functional_cycle(config: Configuration) -> tuple[NodeId, ...] | None:
    """Find a cycle in a configuration's functional graph, if any."""
    graph = functional_graph(config)
    state: dict[NodeId, int] = {}
    for root in graph:
        if state.get(root):
            continue
        trail: list[NodeId] = []
        node: NodeId | None = root
        while node is not None and node in graph and not state.get(node):
            state[node] = 1
            trail.append(node)
            node = graph[node]
        if node is not None and state.get(node) == 1:
            start = trail.index(node)
            return tuple(trail[start:]) + (node,)
        for visited in trail:
            state[visited] = 2
    return None
