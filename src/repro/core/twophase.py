"""Two-phase commit baseline (Reitblatt-style per-packet consistency).

The classic alternative to round scheduling: internal switches *pre-stage*
the new rules under a fresh version tag (round 1), then the ingress flips to
stamping packets with the new tag (round 2), and stale rules are garbage
collected once in-flight packets drained (round 3).  Per-packet consistency
follows *by construction* -- a packet only ever sees one rule version -- so
the transient union-graph verifiers are unnecessary; the price is double
rule capacity at every shared switch during the transition, which E2/E5
quantify against WayUp and Peacock.

In the abstract binary-state model of :mod:`repro.core`, version isolation
cannot be expressed (a node has one rule).  :class:`TwoPhaseSchedule`
therefore carries the three *phases* plus accounting metadata, and the
netlab executor materializes it faithfully with VLAN-tag matches on the
simulated switches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import UpdateModelError
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.verify import Property, VerificationReport

#: VLAN id used to tag packets of the new policy version.
NEW_VERSION_TAG = 2

#: VLAN id representing the old (untagged in practice) policy version.
OLD_VERSION_TAG = 1


@dataclass(frozen=True)
class TwoPhaseSchedule:
    """A two-phase update plan: prepare, flip ingress, garbage-collect.

    ``prepare`` holds every non-ingress node that needs a versioned new
    rule; ``ingress`` is the source; ``garbage`` are the nodes whose old
    rules are removed at the end (all old-path forwarding nodes).
    """

    problem: UpdateProblem
    prepare: frozenset
    ingress: object
    garbage: frozenset
    algorithm: str = "two-phase"

    @property
    def n_rounds(self) -> int:
        """Barrier-separated phases (prepare / flip / collect, empty skipped)."""
        return len(self.rounds)

    @property
    def rounds(self) -> tuple[frozenset, ...]:
        """Phase contents in execution order (ingress alone in phase 2)."""
        phases: list[frozenset] = []
        if self.prepare:
            phases.append(self.prepare)
        phases.append(frozenset({self.ingress}))
        if self.garbage:
            phases.append(self.garbage)
        return tuple(phases)

    @property
    def metadata(self) -> dict:
        """Envelope parity with :class:`~repro.core.schedule.UpdateSchedule`."""
        names: list[str] = []
        if self.prepare:
            names.append("prepare")
        names.append("flip-ingress")
        if self.garbage:
            names.append("collect")
        return {
            "round_names": names,
            "version_tags": [OLD_VERSION_TAG, NEW_VERSION_TAG],
        }

    def scheduled_nodes(self) -> frozenset:
        return frozenset().union(*self.rounds)

    def total_updates(self) -> int:
        """FlowMod touches across phases (versioned adds + flip + deletes)."""
        return sum(len(phase) for phase in self.rounds)

    def includes_cleanup(self) -> bool:
        """True when every stale old rule is garbage-collected at the end."""
        return self.problem.cleanup_updates <= self.scheduled_nodes()

    def without_cleanup(self) -> "TwoPhaseSchedule":
        """The plan minus its garbage-collection phase (stale rules stay)."""
        if not self.garbage:
            return self
        return replace(self, garbage=frozenset())

    def with_cleanup(self) -> "TwoPhaseSchedule":
        """Restore the garbage-collection phase (no-op if already present)."""
        if self.garbage:
            return self
        return two_phase_schedule(self.problem)

    def to_dict(self) -> dict:
        """Wire format, shaped like ``UpdateSchedule.to_dict`` plus phases."""
        return {
            "algorithm": self.algorithm,
            "rounds": [sorted(r, key=repr) for r in self.rounds],
            "metadata": self.metadata,
            "prepare": sorted(self.prepare, key=repr),
            "ingress": self.ingress,
            "garbage": sorted(self.garbage, key=repr),
        }

    def rule_overhead(self) -> int:
        """Extra rules resident during the transition (vs in-place rounds)."""
        return len(self.prepare)

    def peak_rules_per_node(self) -> dict:
        """Rules each node holds at the peak of the transition."""
        peak: dict = {}
        for node in self.problem.forwarding_nodes:
            on_old = node in self.problem.old_path
            on_new = node in self.problem.new_path
            peak[node] = (1 if on_old else 0) + (1 if on_new else 0)
        return peak

    def verification_report(self) -> VerificationReport:
        """Consistency holds by construction (version isolation).

        Returned for interface parity with round schedules; per-packet
        consistency implies WPE, strong loop freedom and blackhole freedom.
        """
        return VerificationReport(
            ok=True,
            rounds_checked=self.n_rounds,
            properties=(Property.WPE, Property.SLF, Property.RLF, Property.BLACKHOLE)
            if self.problem.waypoint is not None
            else (Property.SLF, Property.RLF, Property.BLACKHOLE),
            method="by-construction (version tagging)",
        )


def two_phase_schedule(problem: UpdateProblem) -> TwoPhaseSchedule:
    """Build the two-phase plan for ``problem``."""
    if not problem.required_updates and not problem.cleanup_updates:
        raise UpdateModelError("two-phase invoked on a problem with no rule changes")
    source = problem.source
    prepare = frozenset(
        node
        for node in problem.new_path.nodes
        if node not in (source, problem.destination)
    )
    garbage = frozenset(
        node
        for node in problem.old_path.nodes
        if node != problem.destination
        and problem.kind(node) in (UpdateKind.SWITCH, UpdateKind.DELETE, UpdateKind.NOOP)
    )
    return TwoPhaseSchedule(
        problem=problem, prepare=prepare, ingress=source, garbage=garbage
    )
