"""Exact minimum-round scheduling by exhaustive search.

Deciding how few rounds suffice for a property combination is NP-hard in
general (Ludwig et al., SIGMETRICS'16), so this module brute-forces small
instances.  It is the ground truth the greedy schedulers are compared
against in tests and in the E3 ablations, and it doubles as an
infeasibility prover (e.g. WPE together with strong loop freedom can be
unachievable).

Two engines implement the search:

* the **mask engine** (default) encodes every state, round and oracle
  memo key as a plain int over the problem's canonical node↔bit index
  (:attr:`~repro.core.problem.UpdateProblem.node_bit`).  On top of the
  integer state space it layers monotonicity memoization (a round
  containing a known-unsafe round is unsafe, a round contained in a
  known-safe round is safe -- so one "roof" query per state often settles
  thousands of combinations), symmetry reduction over interchangeable
  nodes, and an optional iterative-deepening mode (``search="iddfs"``)
  that enumerates big rounds first via ``sub = (sub - 1) & pending`` and
  is bounded by the greedy schedule's round count;
* the **sets engine** (``engine="sets"``) is the original breadth-first
  search over ``frozenset`` states, kept byte-for-byte as the
  cross-checked reference -- with ``use_oracle=False`` it additionally
  swaps every verdict for the from-scratch
  :func:`round_is_safe_reference` pipeline, the seed-era ground truth.

Both engines visit transitions in the same canonical order, so for the
BFS mode they return *bit-identical* schedules (pinned by the
equivalence suite in ``tests/core/test_optimal_mask.py``).

On top of the mask engine, ``search="bnb"`` (equivalently
``engine="bnb"``) runs the branch-and-bound mode of
:mod:`repro.core.bnb`: admissible forced-chain lower bounds, greedy
incumbent seeding, single-pass infeasibility proofs and conflict-learned
nogoods shared through the :class:`SafetyOracle` -- the mode that lifts
the cap past n=18 and makes infeasibility proofs (WPE+SLF clashes) fast.
"""

from __future__ import annotations

import itertools

from repro.errors import InfeasibleUpdateError, VerificationError
from repro.core.oracle import SafetyOracle, oracle_for
from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.transient import UnionGraph
from repro.core.verify import (
    Property,
    check_blackhole,
    check_rlf,
    check_slf,
    check_wpe,
)

#: Safety limit on the number of required updates the exact search
#: accepts.  The mask engine's integer states, monotonicity memo and
#: IDDFS mode made 18 nodes tractable (the seed-era frozenset BFS was
#: capped at 12); the branch-and-bound mode's forced-chain bounds,
#: incumbent seeding and conflict-learned nogoods lift the default to
#: 24.  Beyond that, wall clock -- not memory -- is the limit.
DEFAULT_MAX_NODES = 24


def round_is_safe_reference(
    problem: UpdateProblem,
    updated: set,
    round_nodes: set,
    properties: tuple[Property, ...],
    rlf_budget: int = 200_000,
) -> bool:
    """From-scratch round-safety check (the oracle's reference twin).

    Rebuilds the union graph and runs the witness-producing verifiers of
    :mod:`repro.core.verify` on it.  Kept as the ground truth that
    :class:`~repro.core.oracle.SafetyOracle` is cross-checked against.
    """
    union = UnionGraph.from_update_sets(problem, updated, round_nodes)
    for prop in properties:
        if prop is Property.WPE:
            if check_wpe(union, 0) is not None:
                return False
        elif prop is Property.SLF:
            if check_slf(union, 0) is not None:
                return False
        elif prop is Property.BLACKHOLE:
            if check_blackhole(union, 0) is not None:
                return False
        elif prop is Property.RLF:
            violation, _ = check_rlf(union, 0, exact=True, budget=rlf_budget)
            if violation is not None:
                return False
        else:  # pragma: no cover - closed enum
            raise VerificationError(f"unknown property {prop!r}")
    return True


def round_is_safe(
    problem: UpdateProblem,
    updated: set,
    round_nodes: set,
    properties: tuple[Property, ...],
    rlf_budget: int = 200_000,
    oracle: SafetyOracle | None = None,
) -> bool:
    """Is flipping ``round_nodes`` (after ``updated``) safe for all properties?

    Routed through the shared per-problem :class:`SafetyOracle`, so
    repeated probes (the analysis helpers, the exact search, diagnostics)
    hit one memoized verdict table instead of rebuilding union graphs.
    ``updated`` and ``round_nodes`` may be node sets or int bitmasks over
    the problem's canonical node↔bit index.
    """
    if oracle is None:
        oracle = oracle_for(problem, tuple(properties), rlf_budget=rlf_budget)
    else:
        oracle.ensure_matches(problem, tuple(properties), rlf_budget=rlf_budget)
    return oracle.round_is_safe(updated, round_nodes)


# ---------------------------------------------------------------------------
# symmetry reduction
# ---------------------------------------------------------------------------

def symmetry_classes(problem) -> tuple[tuple[int, ...], ...]:
    """Bit-position classes of interchangeable required updates.

    Two required nodes are *interchangeable* when swapping them is an
    automorphism of the forwarding tables fixing source, destination and
    waypoint: they share the same old and new next hop and neither is
    anybody's next hop.  Every union-graph verdict is invariant under
    permuting such twins, so the exact search only needs one
    representative per "how many of the class are updated" count.

    On a single path-pair :class:`UpdateProblem` the pred-freedom
    condition is never satisfiable (every on-path node has a
    predecessor), so classes are trivial there and the reduction is
    free; it fires on duck-typed multi-flow problems where parallel
    sources share their rewiring structure.
    """
    canonical = problem.canonical_updates
    old_next = problem.old_next
    new_next = problem.new_next
    special = {problem.source, problem.destination, problem.waypoint}
    targeted = set(old_next.values()) | set(new_next.values())
    groups: dict[tuple, list[int]] = {}
    for index, node in enumerate(canonical):
        if node in special or node in targeted:
            continue
        groups.setdefault(
            (old_next.get(node), new_next.get(node)), []
        ).append(index)
    return tuple(
        tuple(members) for members in groups.values() if len(members) > 1
    )


def _canonical_perm(state: int, classes, k: int) -> list[int]:
    """Bit permutation ``sigma`` with ``sigma(state)`` class-canonical.

    Within every class the set bits of ``state`` are moved onto the
    class's lowest positions; bits outside the classes stay put.  Any
    such permutation is a problem automorphism (see
    :func:`symmetry_classes`), so verdicts are preserved.
    """
    sigma = list(range(k))
    for cls in classes:
        inside = [b for b in cls if (state >> b) & 1]
        if not inside or len(inside) == len(cls):
            continue
        outside = [b for b in cls if not (state >> b) & 1]
        for src, dst in zip(inside + outside, cls):
            sigma[src] = dst
    return sigma


def _apply_perm(sigma, mask: int) -> int:
    out = 0
    while mask:
        low = mask & -mask
        out |= 1 << sigma[low.bit_length() - 1]
        mask ^= low
    return out


def _canonicalize(state: int, classes, k: int) -> int:
    return _apply_perm(_canonical_perm(state, classes, k), state)


# ---------------------------------------------------------------------------
# the mask engine
# ---------------------------------------------------------------------------

class _MaskSearch:
    """Shared state of one exact-search invocation (mask engine).

    Wraps the oracle behind a monotonicity-memoizing verdict layer:
    verdicts are cached under single-int ``(state << k) | round`` keys,
    and per state the maximal known-safe and minimal known-unsafe round
    masks settle sub-/super-set candidates without touching the graph
    (round safety is monotone in the in-flight set: more flexible nodes
    only add union edges and configurations).
    """

    def __init__(self, problem, properties, round_filter, monotone_prune):
        self.problem = problem
        self.canonical = problem.canonical_updates
        self.k = len(self.canonical)
        self.full = (1 << self.k) - 1
        self.oracle = oracle_for(problem, properties)
        self.round_filter = round_filter
        self.monotone_prune = monotone_prune
        # symmetry canonicalization would permute the node labels the
        # caller's filter refers to, so filtered searches disable it
        self.classes = () if round_filter is not None else symmetry_classes(
            problem
        )
        self._verdicts: dict[int, bool] = {}
        self._max_safe: dict[int, list[int]] = {}
        self._min_unsafe: dict[int, list[int]] = {}

    # -- verdict layer -------------------------------------------------
    def round_ok(self, state: int, rmask: int) -> bool:
        key = (state << self.k) | rmask
        verdicts = self._verdicts
        cached = verdicts.get(key)
        if cached is not None:
            return cached
        if self.monotone_prune:
            for unsafe in self._min_unsafe.get(state, ()):
                if unsafe & rmask == unsafe:
                    verdicts[key] = False
                    return False
            for safe in self._max_safe.get(state, ()):
                if rmask & safe == rmask:
                    verdicts[key] = True
                    return True
        verdict = self.oracle.round_is_safe(state, rmask)
        verdicts[key] = verdict
        if self.monotone_prune:
            if verdict:
                known = self._max_safe.setdefault(state, [])
                known[:] = [s for s in known if s & rmask != s]
                known.append(rmask)
            else:
                known = self._min_unsafe.setdefault(state, [])
                known[:] = [u for u in known if u & rmask != rmask]
                known.append(rmask)
        return verdict

    def safe_singleton_mask(self, state: int) -> int:
        """OR of the pending bits that are safe to flip alone from ``state``.

        A combination containing an unsafe singleton is unsafe by
        monotonicity, so the IDDFS enumeration is restricted to subsets
        of this mask.  When more than one bit survives, the whole
        surviving mask is probed once (the "roof" query): if it is safe,
        *every* subset is settled for free by the safe-subset memo.

        The BFS mode deliberately does *not* pre-scan singletons: it
        checks the visited-set first and only pays a safety query for
        genuinely new successors, so states whose expansions are fully
        deduplicated cost no graph work at all (the per-state scan was
        the dominant query load of the PR 1 search).
        """
        pending = self.full & ~state
        mask = 0
        scan = pending
        while scan:
            low = scan & -scan
            if self.round_ok(state, low):
                mask |= low
            scan ^= low
        if self.monotone_prune and mask & (mask - 1):
            self.round_ok(state, mask)
        return mask

    def filter_ok(self, state: int, rmask: int) -> bool:
        if self.round_filter is None:
            return True
        nodes = self.oracle.nodes_of
        return self.round_filter(set(nodes(state)), set(nodes(rmask)))

    def round_nodes(self, rmask: int) -> frozenset:
        # the oracle shares the problem's node<->bit index, so its
        # decoder is the canonical one
        return self.oracle.nodes_of(rmask)


def _bits_ascending(mask: int) -> list[int]:
    bits = []
    while mask:
        low = mask & -mask
        bits.append(low)
        mask ^= low
    return bits


def _search_mask_bfs(
    search: _MaskSearch,
    properties: tuple[Property, ...],
    max_rounds: int | None,
) -> UpdateSchedule:
    """Breadth-first mask search, canonical (reference-matching) order.

    Per state, candidate rounds are enumerated by ascending size and
    lexicographic canonical node order -- exactly the order the sets
    reference engine visits them -- so the first-found optimal schedule
    is bit-identical across engines.
    """
    full = search.full
    classes = search.classes
    k = search.k
    parents: dict[int, tuple[int, int] | None] = {0: None}
    frontier = [0]
    depth = 0
    while frontier:
        depth += 1
        if max_rounds is not None and depth > max_rounds:
            break
        next_frontier: list[int] = []
        for state in frontier:
            bits = _bits_ascending(full & ~state)
            for size in range(1, len(bits) + 1):
                for combo in itertools.combinations(bits, size):
                    rmask = sum(combo)
                    successor = state | rmask
                    if classes:
                        successor = _canonicalize(successor, classes, k)
                    if successor in parents:
                        continue
                    if not search.filter_ok(state, rmask):
                        continue
                    if not search.round_ok(state, rmask):
                        continue
                    parents[successor] = (state, rmask)
                    if successor == full:
                        return _unwind_mask(search, parents, properties)
                    next_frontier.append(successor)
        frontier = next_frontier
    raise InfeasibleUpdateError(
        f"no schedule satisfies {[p.value for p in properties]}"
        + (f" within {max_rounds} rounds" if max_rounds is not None else "")
    )


def _search_mask_iddfs(
    search: _MaskSearch,
    properties: tuple[Property, ...],
    max_rounds: int | None,
) -> UpdateSchedule:
    """Iterative-deepening mask search: big rounds first, greedy-bounded.

    Depth-limited DFS enumerates each state's candidate rounds largest
    first via ``sub = (sub - 1) & safe_mask``, so on permissive property
    sets the maximal round is tried immediately and deep frontiers are
    skipped.  The deepening limit is capped by the greedy schedule's
    round count when one exists (the optimum can never exceed a witness),
    else by the update count (every round flips at least one node).
    Iterating limits from 1 upward keeps the first schedule found
    minimal.
    """
    full = search.full
    classes = search.classes
    k = search.k
    bound = k
    if max_rounds is not None:
        bound = min(bound, max_rounds)
    elif search.round_filter is None:
        # a greedy witness upper-bounds the optimum (only valid when no
        # filter constrains the schedule space the witness lives in)
        from repro.errors import UpdateModelError
        from repro.core.combined import combined_greedy_schedule

        try:
            witness = combined_greedy_schedule(
                search.problem, properties, include_cleanup=False
            )
        except (InfeasibleUpdateError, UpdateModelError):
            pass
        else:
            bound = min(bound, witness.n_rounds)

    #: canonical state -> highest remaining-round budget already proven
    #: fruitless (persists across deepening iterations: larger budgets
    #: re-open the state, smaller ones are settled)
    failed: dict[int, int] = {}

    def dfs(state: int, remaining: int) -> list[int] | None:
        safe_mask = search.safe_singleton_mask(state)
        if not safe_mask:
            return None
        if remaining == 1:
            pending = full & ~state
            if (
                safe_mask == pending
                and search.filter_ok(state, pending)
                and search.round_ok(state, pending)
            ):
                return [pending]
            return None
        sub = safe_mask
        while sub:
            successor = state | sub
            key = (
                _canonicalize(successor, classes, k) if classes else successor
            )
            if failed.get(key, -1) < remaining - 1:
                if search.filter_ok(state, sub) and search.round_ok(state, sub):
                    if successor == full:
                        return [sub]
                    tail = dfs(successor, remaining - 1)
                    if tail is not None:
                        return [sub, *tail]
                    failed[key] = remaining - 1
            sub = (sub - 1) & safe_mask
        return None

    for limit in range(1, bound + 1):
        rounds = dfs(0, limit)
        if rounds is not None:
            return UpdateSchedule(
                search.problem,
                [search.round_nodes(rmask) for rmask in rounds],
                algorithm="optimal",
                metadata={"properties": [p.value for p in properties]},
            )
    raise InfeasibleUpdateError(
        f"no schedule satisfies {[p.value for p in properties]}"
        + (f" within {max_rounds} rounds" if max_rounds is not None else "")
    )


def _unwind_mask(
    search: _MaskSearch, parents: dict, properties: tuple[Property, ...]
) -> UpdateSchedule:
    """Rebuild the schedule from mask parent pointers.

    With symmetry reduction active the stored chain lives in canonical
    labels: each stored round is safe *from its canonical predecessor*.
    The replay keeps a running automorphism ``sigma`` mapping the actual
    state onto its canonical twin and plays every stored round through
    ``sigma``'s inverse, which preserves safety verdict-for-verdict.
    """
    chain: list[int] = []
    state = search.full
    while parents[state] is not None:
        previous, rmask = parents[state]
        chain.append(rmask)
        state = previous
    chain.reverse()
    classes, k = search.classes, search.k
    if classes:
        sigma = list(range(k))  # actual -> canonical
        canonical_state = 0
        rounds_masks: list[int] = []
        for stored in chain:
            inverse = [0] * k
            for src, dst in enumerate(sigma):
                inverse[dst] = src
            rounds_masks.append(_apply_perm(inverse, stored))
            merged = canonical_state | stored
            tau = _canonical_perm(merged, classes, k)
            canonical_state = _apply_perm(tau, merged)
            sigma = [tau[dst] for dst in sigma]
    else:
        rounds_masks = chain
    return UpdateSchedule(
        search.problem,
        [search.round_nodes(rmask) for rmask in rounds_masks],
        algorithm="optimal",
        metadata={"properties": [p.value for p in properties]},
    )


# ---------------------------------------------------------------------------
# the sets engine (cross-checked reference, byte-compatible with PR 1)
# ---------------------------------------------------------------------------

def _search_sets(
    problem,
    properties: tuple[Property, ...],
    max_rounds: int | None,
    round_filter,
    use_oracle: bool,
) -> UpdateSchedule:
    """The original frozenset BFS, kept as the reference implementation."""
    todo = frozenset(problem.required_updates)
    oracle = oracle_for(problem, properties) if use_oracle else None
    canonical = problem.canonical_updates

    start: frozenset = frozenset()
    parents: dict[frozenset, tuple[frozenset, frozenset] | None] = {start: None}
    frontier = [start]
    depth = 0
    while frontier:
        depth += 1
        if max_rounds is not None and depth > max_rounds:
            break
        next_frontier: list[frozenset] = []
        for state in frontier:
            pending = [node for node in canonical if node not in state]
            if oracle is not None:
                # Round safety is monotone in the in-flight set (more
                # flexible nodes only add union edges and configurations),
                # so a combo containing an unsafe singleton is unsafe:
                # enumerate combos over the safe singletons only.
                pending = [
                    node
                    for node in pending
                    if oracle.round_is_safe(state, frozenset((node,)))
                ]
            for size in range(1, len(pending) + 1):
                for combo in itertools.combinations(pending, size):
                    round_nodes = frozenset(combo)
                    successor = state | round_nodes
                    if successor in parents:
                        continue
                    if round_filter is not None and not round_filter(
                        set(state), set(round_nodes)
                    ):
                        continue
                    if oracle is not None:
                        safe = oracle.round_is_safe(state, round_nodes)
                    else:
                        safe = round_is_safe_reference(
                            problem, set(state), set(round_nodes), properties
                        )
                    if not safe:
                        continue
                    parents[successor] = (state, round_nodes)
                    if successor == todo:
                        return _unwind_schedule(problem, parents, successor, properties)
                    next_frontier.append(successor)
        frontier = next_frontier
    raise InfeasibleUpdateError(
        f"no schedule satisfies {[p.value for p in properties]}"
        + (f" within {max_rounds} rounds" if max_rounds is not None else "")
    )


def _unwind_schedule(
    problem,
    parents: dict,
    state: frozenset,
    properties: tuple[Property, ...],
) -> UpdateSchedule:
    rounds: list[frozenset] = []
    while parents[state] is not None:
        previous, round_nodes = parents[state]
        rounds.append(round_nodes)
        state = previous
    rounds.reverse()
    return UpdateSchedule(
        problem,
        rounds,
        algorithm="optimal",
        metadata={"properties": [p.value for p in properties]},
    )


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------

def minimal_round_schedule(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int = DEFAULT_MAX_NODES,
    max_rounds: int | None = None,
    round_filter=None,
    use_oracle: bool = True,
    engine: str | None = None,
    search: str = "bfs",
    monotone_prune: bool = True,
    node_budget: int | None = None,
    time_limit_s: float | None = None,
    nogood_limit: int | None = None,
) -> UpdateSchedule:
    """Find a schedule with the *fewest* rounds satisfying ``properties``.

    Only the required updates (installs and switches) are scheduled; stale
    deletions can always be appended afterwards.  A problem with nothing
    to schedule gets a valid zero-round schedule (so feasibility probes
    report no-op instances as trivially feasible).  ``round_filter``
    (called as ``round_filter(updated_set, round_set)``) can veto
    transitions -- the hook behind the forced-order analysis in
    :mod:`repro.core.analysis`.  Raises :class:`InfeasibleUpdateError`
    when no schedule of any length exists (or none within ``max_rounds``),
    and :class:`VerificationError` when the instance exceeds ``max_nodes``.

    ``engine`` selects the state representation: ``"mask"`` (default when
    the oracle is on) runs the integer-bitmask engine with monotonicity
    memoization and symmetry reduction; ``"sets"`` runs the frozenset
    reference BFS, with ``use_oracle=False`` further downgrading every
    verdict to the from-scratch :func:`round_is_safe_reference` pipeline.
    ``search`` picks ``"bfs"`` (canonical order, bit-identical to the
    reference engine), ``"iddfs"`` (mask engine only: big-rounds-first
    iterative deepening bounded by the greedy witness) or ``"bnb"``
    (mask engine only: the branch-and-bound mode of
    :mod:`repro.core.bnb` -- forced-chain lower bounds, incumbent
    seeding, conflict-learned nogoods, single-pass infeasibility
    proofs; ``engine="bnb"`` is shorthand for it).  The branch-and-bound
    knobs -- ``node_budget`` (search-node cap), ``time_limit_s``
    (internal wall-clock deadline) and ``nogood_limit`` (learned-pattern
    table size, 0 disables learning) -- turn the search *anytime*: on an
    exhausted budget it raises
    :class:`~repro.errors.ExactSearchBudgetError` carrying the proven
    lower/upper round interval.  ``monotone_prune=False`` disables the
    sub-/super-set verdict memo, for cross-checking.
    """
    properties = tuple(properties)
    todo = frozenset(problem.required_updates)
    if not todo:
        return UpdateSchedule(
            problem,
            [],
            algorithm="optimal",
            metadata={"properties": [p.value for p in properties]},
        )
    if len(todo) > max_nodes:
        raise VerificationError(
            f"instance has {len(todo)} updates; exact search capped at {max_nodes}"
        )
    if engine == "bnb":  # shorthand: the bnb search on the mask engine
        engine, search = "mask", "bnb"
    if engine is None:
        engine = "mask" if use_oracle else "sets"
    if search != "bnb" and (
        node_budget is not None
        or time_limit_s is not None
        or nogood_limit is not None
    ):
        raise VerificationError(
            "node_budget/time_limit_s/nogood_limit are branch-and-bound "
            "knobs; select search='bnb' (or engine='bnb') to use them"
        )
    # The polynomial certificates settle provably infeasible instances
    # for every oracle-backed engine -- without this, a certified clash
    # handed to BFS/IDDFS would still exhaust the exponential state
    # space.  The oracle-free sets path stays the unassisted reference.
    reason = _precheck_infeasible(
        problem, properties, max_nodes, max_rounds, use_oracle, engine
    )
    if reason is not None:
        raise InfeasibleUpdateError(reason)
    if engine == "mask":
        if not use_oracle:
            raise VerificationError(
                "the mask engine runs on the safety oracle; "
                "use engine='sets' for the oracle-free reference path"
            )
        state = _MaskSearch(problem, properties, round_filter, monotone_prune)
        if search == "bfs":
            return _search_mask_bfs(state, properties, max_rounds)
        if search == "iddfs":
            return _search_mask_iddfs(state, properties, max_rounds)
        if search == "bnb":
            from repro.core.bnb import search_mask_bnb

            return search_mask_bnb(
                state,
                properties,
                max_rounds,
                node_budget=node_budget,
                time_limit_s=time_limit_s,
                nogood_limit=nogood_limit,
            )
        raise VerificationError(f"unknown search mode {search!r}")
    if engine != "sets":
        raise VerificationError(f"unknown exact-search engine {engine!r}")
    if search != "bfs":
        raise VerificationError("the sets reference engine only supports BFS")
    return _search_sets(problem, properties, max_rounds, round_filter, use_oracle)


def _precheck_infeasible(
    problem,
    properties: tuple[Property, ...],
    max_nodes: int,
    max_rounds: int | None,
    use_oracle: bool,
    engine: str | None,
) -> str | None:
    """Polynomial infeasibility reason, or ``None`` (then search decides).

    The dependency-graph certificates of :mod:`repro.core.bnb` prove
    infeasibility without touching the state space: a never-applicable
    update, a forced-order cycle, or a forced-chain lower bound already
    above ``max_rounds``.  Sound for *every* engine (a filter or an
    engine switch only shrinks the schedule space), but kept off the
    oracle-free reference path, which must stay the unassisted ground
    truth.
    """
    if not use_oracle or engine == "sets":
        return None
    todo = problem.required_updates
    if not todo or len(todo) > max_nodes:
        return None
    from repro.core.bnb import precedence_for

    analysis = precedence_for(problem, tuple(properties))
    if analysis.infeasible_reason is not None:
        return analysis.infeasible_reason
    if max_rounds is not None:
        bound = analysis.chain_bound(analysis.full_mask)
        if bound > max_rounds:
            return (
                f"no schedule satisfies {[p.value for p in properties]} "
                f"within {max_rounds} rounds (forced-chain lower bound is "
                f"{bound})"
            )
    return None


def minimal_round_count(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int = DEFAULT_MAX_NODES,
    max_rounds: int | None = None,
    round_filter=None,
    use_oracle: bool = True,
    engine: str | None = None,
    search: str = "bfs",
    monotone_prune: bool = True,
    node_budget: int | None = None,
    time_limit_s: float | None = None,
    nogood_limit: int | None = None,
) -> int:
    """Round count of the optimal schedule (see :func:`minimal_round_schedule`).

    All search knobs -- including ``round_filter`` and ``use_oracle`` --
    are forwarded, so forced-order analyses and reference cross-checks
    can use the counting shorthand too.  Counting queries short-circuit
    through the dependency-graph lower bound first, so provably
    infeasible combinations fail fast on every engine.
    """
    reason = _precheck_infeasible(
        problem, tuple(properties), max_nodes, max_rounds, use_oracle, engine
    )
    if reason is not None:
        raise InfeasibleUpdateError(reason)
    return minimal_round_schedule(
        problem,
        properties,
        max_nodes=max_nodes,
        max_rounds=max_rounds,
        round_filter=round_filter,
        use_oracle=use_oracle,
        engine=engine,
        search=search,
        monotone_prune=monotone_prune,
        node_budget=node_budget,
        time_limit_s=time_limit_s,
        nogood_limit=nogood_limit,
    ).n_rounds


def is_feasible(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int = DEFAULT_MAX_NODES,
    max_rounds: int | None = None,
    round_filter=None,
    use_oracle: bool = True,
    engine: str | None = None,
    search: str = "bfs",
    monotone_prune: bool = True,
    node_budget: int | None = None,
    time_limit_s: float | None = None,
    nogood_limit: int | None = None,
) -> bool:
    """Does *any* round schedule satisfy ``properties``?

    Forwards the same knobs as :func:`minimal_round_schedule` (a no-op
    instance is trivially feasible via its zero-round schedule).
    Feasibility probes short-circuit through the dependency-graph lower
    bound first, so provably infeasible combinations -- the
    WPE-versus-loop-freedom clashes -- answer without expanding any
    state, whichever engine is selected.
    """
    if (
        _precheck_infeasible(
            problem, tuple(properties), max_nodes, max_rounds, use_oracle,
            engine,
        )
        is not None
    ):
        return False
    try:
        minimal_round_schedule(
            problem,
            properties,
            max_nodes=max_nodes,
            max_rounds=max_rounds,
            round_filter=round_filter,
            use_oracle=use_oracle,
            engine=engine,
            search=search,
            monotone_prune=monotone_prune,
            node_budget=node_budget,
            time_limit_s=time_limit_s,
            nogood_limit=nogood_limit,
        )
    except InfeasibleUpdateError:
        return False
    return True
