"""Exact minimum-round scheduling by exhaustive search.

Deciding how few rounds suffice for a property combination is NP-hard in
general (Ludwig et al., SIGMETRICS'16), so this module brute-forces small
instances: breadth-first search over *sets of already-updated nodes*, where
one transition applies any subset of the pending nodes that forms a safe
round.  It is the ground truth the greedy schedulers are compared against
in tests and in the E3 ablations, and it doubles as an infeasibility prover
(e.g. WPE together with strong loop freedom can be unachievable).
"""

from __future__ import annotations

import itertools

from repro.errors import InfeasibleUpdateError, VerificationError
from repro.core.oracle import SafetyOracle, oracle_for
from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.transient import UnionGraph
from repro.core.verify import (
    Property,
    check_blackhole,
    check_rlf,
    check_slf,
    check_wpe,
)

#: Safety limit: BFS over subsets is O(3^n); 14 nodes is ~4.7M transitions.
DEFAULT_MAX_NODES = 12


def round_is_safe_reference(
    problem: UpdateProblem,
    updated: set,
    round_nodes: set,
    properties: tuple[Property, ...],
    rlf_budget: int = 200_000,
) -> bool:
    """From-scratch round-safety check (the oracle's reference twin).

    Rebuilds the union graph and runs the witness-producing verifiers of
    :mod:`repro.core.verify` on it.  Kept as the ground truth that
    :class:`~repro.core.oracle.SafetyOracle` is cross-checked against.
    """
    union = UnionGraph.from_update_sets(problem, updated, round_nodes)
    for prop in properties:
        if prop is Property.WPE:
            if check_wpe(union, 0) is not None:
                return False
        elif prop is Property.SLF:
            if check_slf(union, 0) is not None:
                return False
        elif prop is Property.BLACKHOLE:
            if check_blackhole(union, 0) is not None:
                return False
        elif prop is Property.RLF:
            violation, _ = check_rlf(union, 0, exact=True, budget=rlf_budget)
            if violation is not None:
                return False
        else:  # pragma: no cover - closed enum
            raise VerificationError(f"unknown property {prop!r}")
    return True


def round_is_safe(
    problem: UpdateProblem,
    updated: set,
    round_nodes: set,
    properties: tuple[Property, ...],
    rlf_budget: int = 200_000,
    oracle: SafetyOracle | None = None,
) -> bool:
    """Is flipping ``round_nodes`` (after ``updated``) safe for all properties?

    Routed through the shared per-problem :class:`SafetyOracle`, so
    repeated probes (the analysis helpers, the exact search, diagnostics)
    hit one memoized verdict table instead of rebuilding union graphs.
    """
    if oracle is None:
        oracle = oracle_for(problem, tuple(properties), rlf_budget=rlf_budget)
    else:
        oracle.ensure_matches(problem, tuple(properties), rlf_budget=rlf_budget)
    return oracle.round_is_safe(updated, round_nodes)


def minimal_round_schedule(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int = DEFAULT_MAX_NODES,
    max_rounds: int | None = None,
    round_filter=None,
    use_oracle: bool = True,
) -> UpdateSchedule:
    """Find a schedule with the *fewest* rounds satisfying ``properties``.

    Only the required updates (installs and switches) are scheduled; stale
    deletions can always be appended afterwards.  ``round_filter`` (called
    as ``round_filter(updated_set, round_set)``) can veto transitions --
    the hook behind the forced-order analysis in
    :mod:`repro.core.analysis`.  Raises :class:`InfeasibleUpdateError`
    when no schedule of any length exists (or none within ``max_rounds``),
    and :class:`VerificationError` when the instance exceeds ``max_nodes``.

    BFS transitions are safety queries against the shared per-problem
    :class:`SafetyOracle`: successive subset candidates differ in a few
    nodes, so each query is an apply/revert delta walk on the persistent
    union graph rather than a rebuild (``use_oracle=False`` restores the
    from-scratch reference path, for benchmarks and cross-checks).
    """
    todo = frozenset(problem.required_updates)
    if not todo:
        raise InfeasibleUpdateError("no updates required; nothing to schedule")
    if len(todo) > max_nodes:
        raise VerificationError(
            f"instance has {len(todo)} updates; exact search capped at {max_nodes}"
        )
    properties = tuple(properties)
    oracle = oracle_for(problem, properties) if use_oracle else None
    canonical = problem.canonical_updates

    start: frozenset = frozenset()
    parents: dict[frozenset, tuple[frozenset, frozenset] | None] = {start: None}
    frontier = [start]
    depth = 0
    while frontier:
        depth += 1
        if max_rounds is not None and depth > max_rounds:
            break
        next_frontier: list[frozenset] = []
        for state in frontier:
            pending = [node for node in canonical if node not in state]
            if oracle is not None:
                # Round safety is monotone in the in-flight set (more
                # flexible nodes only add union edges and configurations),
                # so a combo containing an unsafe singleton is unsafe:
                # enumerate combos over the safe singletons only.
                pending = [
                    node
                    for node in pending
                    if oracle.round_is_safe(state, frozenset((node,)))
                ]
            for size in range(1, len(pending) + 1):
                for combo in itertools.combinations(pending, size):
                    round_nodes = frozenset(combo)
                    successor = state | round_nodes
                    if successor in parents:
                        continue
                    if round_filter is not None and not round_filter(
                        set(state), set(round_nodes)
                    ):
                        continue
                    if oracle is not None:
                        safe = oracle.round_is_safe(state, round_nodes)
                    else:
                        safe = round_is_safe_reference(
                            problem, set(state), set(round_nodes), properties
                        )
                    if not safe:
                        continue
                    parents[successor] = (state, round_nodes)
                    if successor == todo:
                        return _unwind_schedule(problem, parents, successor, properties)
                    next_frontier.append(successor)
        frontier = next_frontier
    raise InfeasibleUpdateError(
        f"no schedule satisfies {[p.value for p in properties]}"
        + (f" within {max_rounds} rounds" if max_rounds is not None else "")
    )


def _unwind_schedule(
    problem: UpdateProblem,
    parents: dict,
    state: frozenset,
    properties: tuple[Property, ...],
) -> UpdateSchedule:
    rounds: list[frozenset] = []
    while parents[state] is not None:
        previous, round_nodes = parents[state]
        rounds.append(round_nodes)
        state = previous
    rounds.reverse()
    return UpdateSchedule(
        problem,
        rounds,
        algorithm="optimal",
        metadata={"properties": [p.value for p in properties]},
    )


def minimal_round_count(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int = DEFAULT_MAX_NODES,
    max_rounds: int | None = None,
) -> int:
    """Round count of the optimal schedule (see :func:`minimal_round_schedule`)."""
    return minimal_round_schedule(
        problem, properties, max_nodes=max_nodes, max_rounds=max_rounds
    ).n_rounds


def is_feasible(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int = DEFAULT_MAX_NODES,
) -> bool:
    """Does *any* round schedule satisfy ``properties``?"""
    try:
        minimal_round_schedule(problem, properties, max_nodes=max_nodes)
    except InfeasibleUpdateError:
        return False
    return True
