"""Incremental safety oracle: delta-maintained union graphs.

Every scheduling decision in this reproduction reduces to a *round-safety
query*: "if the nodes in ``updated`` are already NEW and the nodes in
``round_nodes`` flip now, does some transient configuration violate a
property?".  The from-scratch verifiers (:mod:`repro.core.verify` /
:mod:`repro.core.transient`) answer each query by rebuilding the full union
graph and re-running whole-graph cycle/reachability checks -- O(n) per
query, O(n^2) queries per greedy schedule, O(3^n) rebuilds in the exact
BFS.  The :class:`SafetyOracle` answers the same queries over **one
persistent union graph per problem**:

* ``apply`` / ``commit`` / ``revert`` move a single node between its
  OLD / FLEXIBLE / NEW phases in O(degree) edge operations;
* strong loop freedom is maintained **incrementally** with Pearce--Kelly
  topological-order maintenance (Pearce & Kelly, *A dynamic topological
  sort algorithm for directed acyclic graphs*, JEA 2006): inserting an
  edge that respects the current order is O(1), and reorderings only touch
  the affected region -- amortized near-O(1) on the sparse path instances
  the schedulers run on;
* forward/backward reachability frontiers (for WPE, BLACKHOLE and the RLF
  pre-filter) are extended incrementally on edge insertions and recomputed
  lazily only when an edge removal actually touched them;
* full ``(updated, round_nodes)`` verdicts are memoized per oracle with
  hit/miss counters, published through :mod:`repro.metrics`; queries and
  memo keys are plain-int bitmasks over the problem's canonical node↔bit
  index (:attr:`~repro.core.problem.UpdateProblem.node_bit`), so the
  exact search can probe millions of rounds without building a single
  frozenset.

The oracle returns **boolean verdicts only**.  Witness-producing
verification (and the exhaustive configuration oracle) deliberately stays
in :mod:`repro.core.verify`, which doubles as the reference implementation
the oracle is cross-checked against in the equivalence test suite.
"""

from __future__ import annotations

import weakref
from dataclasses import asdict, dataclass, fields

from repro.errors import UpdateModelError, VerificationBudgetError, VerificationError
from repro.core.problem import UpdateProblem
from repro.core.verify import Property
from repro.topology.graph import NodeId

#: Node phases, kept as plain ints on the hot path.
_OLD, _FLEX, _NEW = 0, 1, 2

#: Entries above which a verdict memo is dropped wholesale (backstop only).
DEFAULT_MEMO_LIMIT = 1_000_000

#: Default capacity of the learned-nogood table (see
#: :meth:`SafetyOracle.enable_nogood_learning`).  Matching a nogood costs
#: two int ops, so a few hundred patterns stay cheaper than one morph.
DEFAULT_NOGOOD_LIMIT = 512


@dataclass
class OracleStats:
    """Operation counters of one :class:`SafetyOracle`."""

    memo_hits: int = 0
    memo_misses: int = 0
    applies: int = 0
    reverts: int = 0
    commits: int = 0
    pk_reorders: int = 0
    pk_cycles: int = 0
    frontier_extensions: int = 0
    frontier_recomputes: int = 0
    rlf_fallbacks: int = 0
    memo_evictions: int = 0
    nogood_hits: int = 0
    nogoods_learned: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class SafetyOracle:
    """Stateful round-safety oracle over one persistent union graph.

    The oracle always represents the union graph of *some* round
    ``(updated, in_flight)``: nodes in ``updated`` are NEW, nodes in
    ``in_flight`` are FLEXIBLE (both rules possible), everything else is
    OLD.  Two usage styles:

    * **delta walks** (schedulers): :meth:`reset` to a round base, then
      :meth:`try_apply` candidate nodes one at a time -- an unsafe
      candidate is reverted automatically -- and :meth:`commit_round` when
      the round is final;
    * **memoized queries** (exact search, analysis): :meth:`round_is_safe`
      morphs the graph to the queried round via the smallest delta and
      caches the verdict.

    ``properties`` is fixed per oracle; use :func:`oracle_for` to share
    oracles (and their memo tables) per ``(problem, properties)``.
    """

    def __init__(
        self,
        problem: UpdateProblem,
        properties: tuple[Property, ...],
        exact_rlf: bool = True,
        rlf_budget: int = 200_000,
        memo_limit: int = DEFAULT_MEMO_LIMIT,
    ) -> None:
        properties = tuple(properties)
        if not properties:
            raise VerificationError("a safety oracle needs at least one property")
        if Property.WPE in properties and problem.waypoint is None:
            raise VerificationError("cannot check WPE without a waypoint")
        self.problem = problem
        self.properties = properties
        self.exact_rlf = exact_rlf
        self.rlf_budget = rlf_budget
        self.memo_limit = memo_limit
        self.stats = OracleStats()

        self._source = problem.source
        self._destination = problem.destination
        self._waypoint = problem.waypoint
        self._old_next = problem.old_next
        self._new_next = problem.new_next
        self._forwarding = problem.forwarding_nodes

        # --- canonical node<->bit index (shared with the exact search) --
        # Duck-typed problems without a node_bit table get the same
        # convention derived on the fly: required updates on the low bits
        # in canonical order, remaining forwarding nodes after them -- so
        # int masks mean the same thing to every caller.
        node_bit = getattr(problem, "node_bit", None)
        if node_bit is None:
            order = list(getattr(problem, "canonical_updates", ()))
            order.extend(sorted(self._forwarding - set(order), key=repr))
            node_bit = {node: index for index, node in enumerate(order)}
        self._node_bit: dict[NodeId, int] = node_bit
        inverse = sorted(node_bit.items(), key=lambda item: item[1])
        self._bit_node: tuple = tuple(node for node, _ in inverse)
        self._width = len(self._bit_node)

        # --- persistent union graph -----------------------------------
        self._state: dict[NodeId, int] = {n: _OLD for n in self._forwarding}
        self._succ: dict[NodeId, set] = {n: set() for n in problem.nodes}
        self._pred: dict[NodeId, set] = {n: set() for n in problem.nodes}
        self._new: set = set()
        self._flex: set = set()
        self._new_mask = 0
        self._flex_mask = 0
        self._drop: set = set()  # nodes whose current phase may drop packets

        # --- Pearce-Kelly topological order over the non-blocked edges
        # (skipped entirely when no property ever consults acyclicity)
        self._needs_pk = Property.SLF in properties or Property.RLF in properties
        self._ord: dict[NodeId, int] = {}
        self._blocked: set[tuple[NodeId, NodeId]] = set()
        self._blocked_stale = False
        for index, node in enumerate(problem.old_path.nodes):
            self._ord[node] = index
        for node in sorted(problem.nodes - set(self._ord), key=repr):
            self._ord[node] = len(self._ord)

        # --- lazily maintained reachability frontiers (None = stale) --
        self._fwd: set | None = None        # reachable from the source
        self._fwd_avoid: set | None = None  # ... avoiding the waypoint
        self._bwd: set | None = None        # nodes that reach the destination

        # The all-OLD base graph is the old path itself: edges follow the
        # initial topological order, so no reordering can trigger here.
        for node in self._forwarding:
            target = self._old_next[node]
            if target is None:
                self._drop.add(node)
            else:
                self._add_edge(node, target)

        self._memo: dict[int, bool] = {}

        # --- conflict-learned nogoods (cross-state unsafe patterns) ---
        # Each entry is an int pair ``(need_new, need_old)`` distilled
        # from one concrete violation witness: the violating walk / cycle
        # exists in *any* union graph where every ``need_new`` node has
        # its new rule available (NEW or FLEX) and every ``need_old``
        # node still has its old rule (not committed NEW).  Unlike the
        # per-key verdict memo, one pattern settles unsafe verdicts
        # across every state that re-creates the witness.
        self._nogoods: list[tuple[int, int]] = []
        self._nogood_seen: set[tuple[int, int]] = set()
        self._learn_nogoods = False
        self.nogood_limit = 0
        self._rlf_witness: list | None = None

    # ------------------------------------------------------------------
    # per-node phase semantics
    # ------------------------------------------------------------------
    def _edges_for(self, node: NodeId, state: int) -> tuple:
        old, new = self._old_next[node], self._new_next[node]
        if state == _OLD:
            return () if old is None else (old,)
        if state == _NEW:
            return () if new is None else (new,)
        if old == new:
            return () if old is None else (old,)
        if old is None:
            return (new,)
        if new is None:
            return (old,)
        return (old, new)

    def _drops_in(self, node: NodeId, state: int) -> bool:
        old, new = self._old_next[node], self._new_next[node]
        if state == _OLD:
            return old is None
        if state == _NEW:
            return new is None
        if old == new:
            return old is None
        return old is None or new is None

    def _set_state(self, node: NodeId, state: int) -> None:
        try:
            current = self._state[node]
        except KeyError:
            raise UpdateModelError(
                f"{node!r} is not a forwarding node of {self.problem!r}"
            ) from None
        if current == state:
            return
        before = self._edges_for(node, current)
        after = self._edges_for(node, state)
        for target in before:
            if target not in after:
                self._remove_edge(node, target)
        for target in after:
            if target not in before:
                self._add_edge(node, target)
        if self._drops_in(node, state):
            self._drop.add(node)
        else:
            self._drop.discard(node)
        bit = 1 << self._node_bit[node]
        if current == _NEW:
            self._new.discard(node)
            self._new_mask &= ~bit
        elif current == _FLEX:
            self._flex.discard(node)
            self._flex_mask &= ~bit
        if state == _NEW:
            self._new.add(node)
            self._new_mask |= bit
        elif state == _FLEX:
            self._flex.add(node)
            self._flex_mask |= bit
        self._state[node] = state

    # ------------------------------------------------------------------
    # edge maintenance: Pearce-Kelly order + reachability frontiers
    # ------------------------------------------------------------------
    def _add_edge(self, u: NodeId, v: NodeId) -> None:
        self._succ[u].add(v)
        self._pred[v].add(u)
        if self._needs_pk:
            self._pk_insert(u, v)
        fwd = self._fwd
        if fwd is not None:
            if u in fwd and v not in fwd:
                self._extend_frontier(fwd, v, avoid=None, backward=False)
        fwd_avoid = self._fwd_avoid
        if fwd_avoid is not None:
            if u in fwd_avoid and v not in fwd_avoid and v != self._waypoint:
                self._extend_frontier(
                    fwd_avoid, v, avoid=self._waypoint, backward=False
                )
        bwd = self._bwd
        if bwd is not None:
            if v in bwd and u not in bwd:
                self._extend_frontier(bwd, u, avoid=None, backward=True)

    def _remove_edge(self, u: NodeId, v: NodeId) -> None:
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        if (u, v) in self._blocked:
            # A blocked edge never entered the PK graph: nothing to restore.
            self._blocked.discard((u, v))
        elif self._blocked:
            # Removing a live edge may unblock previously refused ones;
            # defer the re-validation until a query actually consults the
            # blocked set, so a burst of removals pays once.
            self._blocked_stale = True
        if self._fwd is not None and u in self._fwd:
            self._fwd = None
        if self._fwd_avoid is not None and u in self._fwd_avoid:
            self._fwd_avoid = None
        if self._bwd is not None and v in self._bwd:
            self._bwd = None

    def _validate_blocked(self) -> None:
        """Re-test stale blocked edges after live-edge removals.

        Restores the invariant that every blocked edge currently closes a
        cycle, which the SLF/RLF verdicts rely on.  Each candidate is
        removed from the blocked set only for its *own* insertion attempt:
        the other pending edges must stay excluded from the PK traversals
        (they carry no order guarantee), otherwise a missed cycle corrupts
        the topological order.  One pass suffices -- an edge re-blocked
        here closed a cycle against PK-valid edges only, and later
        insertions add paths, never remove them.
        """
        if not self._blocked_stale:
            return
        self._blocked_stale = False
        for edge in list(self._blocked):
            self._blocked.discard(edge)
            a, b = edge
            if b in self._succ[a]:
                self._pk_insert(a, b)

    def _pk_insert(self, u: NodeId, v: NodeId) -> None:
        """Record edge ``u -> v`` in the incremental topological order.

        If the edge closes a cycle it is *blocked* (kept out of the PK
        graph, remembered in ``self._blocked``); the union graph is
        acyclic exactly when no edge is blocked.
        """
        order = self._ord
        lower, upper = order[v], order[u]
        if upper < lower:
            return
        blocked = self._blocked
        succ = self._succ
        # Forward discovery from v, restricted to order positions <= upper.
        forward: list[NodeId] = []
        stack = [v]
        seen = {v}
        while stack:
            node = stack.pop()
            forward.append(node)
            for target in succ[node]:
                if target == u:
                    if (node, target) not in blocked:
                        blocked.add((u, v))
                        self.stats.pk_cycles += 1
                        return
                    continue
                if (
                    target not in seen
                    and order[target] <= upper
                    and (node, target) not in blocked
                ):
                    seen.add(target)
                    stack.append(target)
        # Backward discovery from u, restricted to order positions >= lower.
        pred = self._pred
        backward: list[NodeId] = []
        stack = [u]
        bseen = {u}
        while stack:
            node = stack.pop()
            backward.append(node)
            for origin in pred[node]:
                if (
                    origin not in bseen
                    and order[origin] >= lower
                    and (origin, node) not in blocked
                ):
                    bseen.add(origin)
                    stack.append(origin)
        backward.sort(key=order.__getitem__)
        forward.sort(key=order.__getitem__)
        affected = backward + forward
        slots = sorted(order[node] for node in affected)
        for node, slot in zip(affected, slots):
            order[node] = slot
        self.stats.pk_reorders += 1

    def _extend_frontier(
        self, frontier: set, start: NodeId, avoid: NodeId | None, backward: bool
    ) -> None:
        """Grow an up-to-date reachability set after one edge insertion."""
        self.stats.frontier_extensions += 1
        adjacency = self._pred if backward else self._succ
        frontier.add(start)
        stack = [start]
        while stack:
            node = stack.pop()
            for target in adjacency[node]:
                if target not in frontier and target != avoid:
                    frontier.add(target)
                    stack.append(target)

    def _compute_frontier(
        self, start: NodeId, avoid: NodeId | None, backward: bool
    ) -> set:
        self.stats.frontier_recomputes += 1
        adjacency = self._pred if backward else self._succ
        if start == avoid:
            return set()
        frontier = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for target in adjacency[node]:
                if target not in frontier and target != avoid:
                    frontier.add(target)
                    stack.append(target)
        return frontier

    # ------------------------------------------------------------------
    # reachability frontiers (public read access)
    # ------------------------------------------------------------------
    def forward_frontier(self) -> frozenset:
        """Nodes reachable from the source in the current union graph."""
        return frozenset(self._fwd_set())

    def backward_frontier(self) -> frozenset:
        """Nodes from which the destination is reachable (incl. itself)."""
        if self._bwd is None:
            self._bwd = self._compute_frontier(
                self._destination, None, backward=True
            )
        return frozenset(self._bwd)

    def reaches_destination(self, node: NodeId) -> bool:
        """Can ``node`` still reach the destination in some configuration?"""
        return node in self.backward_frontier()

    def _fwd_set(self) -> set:
        if self._fwd is None:
            self._fwd = self._compute_frontier(self._source, None, backward=False)
        return self._fwd

    def _fwd_avoid_set(self) -> set:
        if self._fwd_avoid is None:
            self._fwd_avoid = self._compute_frontier(
                self._source, self._waypoint, backward=False
            )
        return self._fwd_avoid

    # ------------------------------------------------------------------
    # delta operations
    # ------------------------------------------------------------------
    def reset(self, updated=(), in_flight=()) -> None:
        """Morph the graph to the round base ``(updated, in_flight)``."""
        self._morph(self.mask_of(updated), self.mask_of(in_flight))

    def apply(self, node: NodeId) -> None:
        """Make ``node`` flexible (its update is in flight this round)."""
        self.stats.applies += 1
        self._set_state(node, _FLEX)

    def revert(self, node: NodeId) -> None:
        """Take ``node`` back out of the round (back to OLD)."""
        self.stats.reverts += 1
        self._set_state(node, _OLD)

    def commit(self, node: NodeId) -> None:
        """Settle ``node`` as updated (NEW): its round has completed."""
        self.stats.commits += 1
        self._set_state(node, _NEW)

    def commit_round(self) -> None:
        """Settle every currently flexible node as updated."""
        for node in list(self._flex):
            self.commit(node)

    def try_apply(self, node: NodeId) -> bool:
        """Apply ``node``; keep it when the round stays safe, else revert.

        The scheduler building block: returns the safety verdict and
        leaves the graph in the corresponding state.  A candidate whose
        round matches a learned nogood is rejected without touching the
        graph at all -- this is how greedy schedulers profit from the
        patterns the exact search learns.
        """
        bit_index = self._node_bit.get(node)
        if bit_index is not None and self._nogoods and self._nogood_match(
            self._new_mask, self._flex_mask | (1 << bit_index)
        ):
            self.stats.nogood_hits += 1
            return False
        self.apply(node)
        if self.current_round_safe():
            return True
        self.revert(node)
        return False

    def updated_nodes(self) -> frozenset:
        return frozenset(self._new)

    def in_flight_nodes(self) -> frozenset:
        return frozenset(self._flex)

    def mask_of(self, nodes) -> int:
        """Encode nodes as a bitmask (ints pass through unchanged).

        Nodes outside the forwarding set (the destination, foreign ids)
        are silently ignored, matching the set-based morph semantics.
        """
        if type(nodes) is int:
            return nodes
        bits = self._node_bit
        mask = 0
        for node in nodes:
            bit = bits.get(node)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def nodes_of(self, mask: int) -> frozenset:
        """Decode a bitmask back into the frozenset of its nodes."""
        order = self._bit_node
        nodes = []
        while mask:
            low = mask & -mask
            nodes.append(order[low.bit_length() - 1])
            mask ^= low
        return frozenset(nodes)

    def _morph(self, target_new: int, target_flex: int) -> None:
        touched = (self._new_mask | self._flex_mask | target_new | target_flex)
        states = self._state
        set_state = self._set_state
        order = self._bit_node
        while touched:
            low = touched & -touched
            touched ^= low
            node = order[low.bit_length() - 1]
            if low & target_flex:
                state = _FLEX
            elif low & target_new:
                state = _NEW
            else:
                state = _OLD
            if states[node] != state:
                set_state(node, state)

    # ------------------------------------------------------------------
    # safety evaluation
    # ------------------------------------------------------------------
    def current_round_safe(self) -> bool:
        """Are all properties satisfied by the current union graph?"""
        for prop in self.properties:
            if prop is Property.SLF:
                self._validate_blocked()
                if self._blocked:
                    return False
            elif prop is Property.BLACKHOLE:
                if not self._drop.isdisjoint(self._fwd_set()):
                    return False
            elif prop is Property.WPE:
                if self._destination in self._fwd_avoid_set():
                    return False
            elif prop is Property.RLF:
                if not self._rlf_safe():
                    return False
            else:  # pragma: no cover - closed enum
                raise VerificationError(f"unknown property {prop!r}")
        return True

    def round_is_safe(self, updated, round_nodes) -> bool:
        """Memoized verdict for the round ``(updated, round_nodes)``.

        Both arguments may be node iterables or plain-int bitmasks over
        the canonical node↔bit index; the memo key is a single int either
        way, so mask-native callers (the exact search) and set-based
        callers share one verdict table.
        """
        updated_mask = updated if type(updated) is int else self.mask_of(updated)
        round_mask = (
            round_nodes if type(round_nodes) is int else self.mask_of(round_nodes)
        )
        key = (updated_mask << self._width) | round_mask
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        if self._nogoods and self._nogood_match(updated_mask, round_mask):
            self.stats.nogood_hits += 1
            if len(memo) >= self.memo_limit:
                memo.clear()
                self.stats.memo_evictions += 1
            memo[key] = False
            return False
        self.stats.memo_misses += 1
        self._morph(updated_mask, round_mask)
        verdict = self.current_round_safe()
        if not verdict and self._learn_nogoods:
            self._learn_nogood()
        if len(memo) >= self.memo_limit:
            memo.clear()
            self.stats.memo_evictions += 1
        memo[key] = verdict
        return verdict

    def _rlf_safe(self) -> bool:
        # Fast path: the PK structure already knows the graph is acyclic,
        # and without any union cycle there is nothing to reach.
        self._rlf_witness = None
        self._validate_blocked()
        if not self._blocked:
            return True
        # Every union cycle runs through a blocked edge (the non-blocked
        # subgraph is acyclic by PK invariant), and the source-reachable
        # set is successor-closed -- so a cycle lies inside it if and only
        # if some blocked edge's tail is reachable.
        reachable = self._fwd_set()
        if all(u not in reachable for u, _ in self._blocked):
            return True
        self.stats.rlf_fallbacks += 1
        if not self.exact_rlf:
            return False  # conservative: a reachable union cycle counts
        return not self._rlf_trajectory_loops()

    def _rlf_trajectory_loops(self) -> bool:
        """Branching trajectory search (bool twin of the verify.py witness).

        Walk from the source, fixing each flexible node's behaviour on
        first visit; revisiting any node on the walk is a realizable
        source-reachable loop.  The search is confined to the *danger
        zone* -- nodes that can still reach a blocked-edge tail: every
        union cycle passes through a blocked edge, so every node of a
        realizable looping walk (prefix included) can reach one, and
        branches leaving the zone can never close a loop.
        """
        pred = self._pred
        danger: set = set()
        stack: list[NodeId] = []
        for u, _ in self._blocked:
            if u not in danger:
                danger.add(u)
                stack.append(u)
        while stack:
            node = stack.pop()
            for origin in pred[node]:
                if origin not in danger:
                    danger.add(origin)
                    stack.append(origin)
        source, destination = self._source, self._destination
        if source not in danger:
            return False
        succ = self._succ
        budget = self.rlf_budget
        states_explored = 0
        walk: list[NodeId] = [source]
        on_walk = {source}
        pending: list[list[NodeId]] = [
            [t for t in succ[source] if t in danger]
        ]
        while pending:
            states_explored += 1
            if states_explored > budget:
                raise VerificationBudgetError(
                    f"relaxed-loop-freedom search exceeded {budget} states"
                )
            options = pending[-1]
            if not options:
                pending.pop()
                on_walk.discard(walk.pop())
                continue
            target = options.pop()
            if target in on_walk:
                # the full trajectory (prefix included) is the witness:
                # one behaviour per node, so it generalizes to a nogood
                self._rlf_witness = list(zip(walk, walk[1:]))
                self._rlf_witness.append((walk[-1], target))
                return True
            if target == destination:
                continue
            walk.append(target)
            on_walk.add(target)
            pending.append([t for t in succ[target] if t in danger])
        return False

    # ------------------------------------------------------------------
    # conflict-learned nogoods
    # ------------------------------------------------------------------
    # A nogood ``(need_new, need_old)`` is distilled from one concrete
    # violation witness (an SLF cycle, a WPE waypoint-bypass path, a
    # reachable blackhole, an RLF trajectory loop): the witness used the
    # *new* rule of every node in ``need_new`` and the *old* rule of
    # every node in ``need_old``.  The same witness therefore exists --
    # and the round is therefore unsafe -- in every query
    # ``(updated, round)`` where
    #
    # * every ``need_new`` node has its new rule available, i.e. is NEW
    #   or FLEX: ``need_new & ~(updated | round) == 0``; and
    # * every ``need_old`` node still has its old rule, i.e. is not
    #   committed NEW: ``need_old & updated & ~round == 0``
    #
    # (FLEX wins overlaps, matching :meth:`_morph`).  This generalizes
    # the exact search's per-state monotonicity memo across states: one
    # learned pattern settles round candidates for *every* state that
    # re-creates the witness, and :meth:`try_apply` consults the table
    # too, so greedy schedulers skip doomed candidates without touching
    # the graph.  Patterns are certificates, never heuristics -- a match
    # implies a genuine violation for this oracle's property set.

    def enable_nogood_learning(self, limit: int = DEFAULT_NOGOOD_LIMIT) -> None:
        """Start distilling nogoods from unsafe verdicts (table <= limit)."""
        self._learn_nogoods = True
        self.nogood_limit = max(int(limit), len(self._nogoods))

    def disable_nogood_learning(self) -> None:
        """Stop learning *and* drop the table.

        Clearing is deliberate: the table is shared per problem, so a
        nogood-free cross-check (``nogood_limit=0``) must not silently
        keep matching patterns a previous search learned.
        """
        self._learn_nogoods = False
        self.nogood_limit = 0
        self.clear_nogoods()

    def nogoods(self) -> tuple:
        """The learned ``(need_new, need_old)`` patterns (read-only view)."""
        return tuple(self._nogoods)

    def clear_nogoods(self) -> None:
        """Drop every learned pattern (the table may be mid-poisoned
        after an asynchronous interrupt such as a cell timeout)."""
        self._nogoods.clear()
        self._nogood_seen.clear()

    def _nogood_match(self, updated_mask: int, round_mask: int) -> bool:
        available = updated_mask | round_mask
        committed = updated_mask & ~round_mask
        for need_new, need_old in self._nogoods:
            if need_new & ~available == 0 and need_old & committed == 0:
                return True
        return False

    def _learn_nogood(self) -> None:
        """Distill the current (violating) union graph into a pattern."""
        if len(self._nogoods) >= self.nogood_limit:
            return
        pattern = self._violation_pattern()
        if pattern is None or pattern in self._nogood_seen:
            return
        self._nogoods.append(pattern)
        self._nogood_seen.add(pattern)
        self.stats.nogoods_learned += 1
        from repro.obs import trace as obs

        if obs.tracing_enabled():
            obs.event(
                "oracle.nogood_learned",
                problem=self.problem.name,
                nogoods=len(self._nogoods),
            )

    def _violation_pattern(self) -> "tuple[int, int] | None":
        """Witness pattern of the first violated property (same order as
        :meth:`current_round_safe`); ``None`` when no witness generalizes
        (e.g. conservative RLF verdicts, which carry no trajectory)."""
        for prop in self.properties:
            if prop is Property.SLF:
                self._validate_blocked()
                if self._blocked:
                    return self._cycle_pattern()
            elif prop is Property.BLACKHOLE:
                reachable_drops = self._drop & self._fwd_set()
                if reachable_drops:
                    return self._blackhole_pattern(
                        min(reachable_drops, key=repr)
                    )
            elif prop is Property.WPE:
                if self._destination in self._fwd_avoid_set():
                    return self._path_pattern(
                        self._destination, avoid=self._waypoint
                    )
            elif prop is Property.RLF:
                if self._rlf_witness is not None:
                    return self._pattern_edges(self._rlf_witness)
        return None

    def _pattern_edges(self, edges) -> "tuple[int, int] | None":
        """Classify witness edges into the ``(need_new, need_old)`` pair."""
        need_new = need_old = 0
        bits = self._node_bit
        for x, y in edges:
            bit_index = bits.get(x)
            if bit_index is None:
                return None
            old, new = self._old_next.get(x), self._new_next.get(x)
            if old == y:
                if new == y:
                    continue  # both rules agree: edge exists in every phase
                need_old |= 1 << bit_index
            elif new == y:
                need_new |= 1 << bit_index
            else:
                return None  # edge of unknown origin: refuse to generalize
        return need_new, need_old

    def _cycle_pattern(self) -> "tuple[int, int] | None":
        """A union cycle: one blocked edge plus its non-blocked return path."""
        blocked = self._blocked
        succ = self._succ
        for u0, v0 in blocked:
            parent: dict = {v0: None}
            stack = [v0]
            while stack and u0 not in parent:
                node = stack.pop()
                for target in succ[node]:
                    if target in parent or (node, target) in blocked:
                        continue
                    parent[target] = node
                    if target == u0:
                        break
                    stack.append(target)
            if u0 not in parent:
                continue  # stale invariant: try another blocked edge
            edges = [(u0, v0)]
            node = u0
            while parent[node] is not None:
                edges.append((parent[node], node))
                node = parent[node]
            return self._pattern_edges(edges)
        return None

    def _path_pattern(self, goal: NodeId, avoid) -> "tuple[int, int] | None":
        edges = self._path_edges_to(goal, avoid)
        if edges is None:
            return None
        return self._pattern_edges(edges)

    def _path_edges_to(self, goal: NodeId, avoid) -> "list | None":
        """BFS parent-chain edges from the source to ``goal``."""
        source = self._source
        if source == avoid or goal == avoid:
            return None
        if source == goal:
            return []
        succ = self._succ
        parent: dict = {source: None}
        queue = [source]
        for node in queue:
            for target in succ[node]:
                if target in parent or target == avoid:
                    continue
                parent[target] = node
                if target == goal:
                    edges = []
                    while parent[target] is not None:
                        edges.append((parent[target], target))
                        target = parent[target]
                    edges.reverse()
                    return edges
                queue.append(target)
        return None

    def _blackhole_pattern(self, node: NodeId) -> "tuple[int, int] | None":
        """A reachable drop: the path to ``node`` plus its dropping rule."""
        edges = self._path_edges_to(node, avoid=None)
        if edges is None:
            return None
        pattern = self._pattern_edges(edges)
        if pattern is None:
            return None
        need_new, need_old = pattern
        bit_index = self._node_bit.get(node)
        if bit_index is None:
            return None
        old, new = self._old_next.get(node), self._new_next.get(node)
        state = self._state.get(node)
        if old is None and new is None:
            pass  # drops in every phase: the path alone is the certificate
        elif old is None and state != _NEW:
            need_old |= 1 << bit_index
        elif new is None and state != _OLD:
            need_new |= 1 << bit_index
        else:
            return None  # node is not actually dropping: stale witness
        return need_new, need_old

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def ensure_matches(
        self,
        problem: UpdateProblem,
        properties: tuple[Property, ...] | None = None,
        exact_rlf: bool | None = None,
        rlf_budget: int | None = None,
    ) -> None:
        """Guard for externally supplied oracles.

        A scheduler handed an oracle built for another problem, property
        set or RLF mode would silently emit wrong-mode (or outright
        unsafe) schedules; this turns the mismatch into a loud error.
        """
        if self.problem is not problem:
            raise VerificationError(
                f"oracle was built for {self.problem!r}, not {problem!r}"
            )
        if properties is not None and frozenset(properties) != frozenset(
            self.properties
        ):
            raise VerificationError(
                f"oracle checks {[p.value for p in self.properties]}, "
                f"caller needs {[p.value for p in properties]}"
            )
        if Property.RLF in self.properties:
            if exact_rlf is not None and exact_rlf != self.exact_rlf:
                raise VerificationError(
                    f"oracle has exact_rlf={self.exact_rlf}, caller needs {exact_rlf}"
                )
            if rlf_budget is not None and rlf_budget != self.rlf_budget:
                raise VerificationError(
                    f"oracle has rlf_budget={self.rlf_budget}, "
                    f"caller needs {rlf_budget}"
                )

    def memo_size(self) -> int:
        return len(self._memo)

    def clear_memo(self) -> None:
        self._memo.clear()

    def publish(self, collector=None, prefix: str = "oracle") -> None:
        """Record the counters into a metrics collector (default: global)."""
        if collector is None:
            from repro.metrics import global_collector

            collector = global_collector()
        for name, value in self.stats.as_dict().items():
            collector.record(f"{prefix}.{name}", value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        props = "+".join(p.value.split("-")[0] for p in self.properties)
        return (
            f"SafetyOracle({self.problem.name}, {props}, "
            f"updated={len(self._new)}, in_flight={len(self._flex)}, "
            f"memo={len(self._memo)})"
        )


# ---------------------------------------------------------------------------
# per-problem oracle registry
# ---------------------------------------------------------------------------

#: Attribute under which a problem carries its own oracle cache.  Hanging
#: the cache off the problem (instead of a module-level map) ties the
#: oracles' lifetime to the problem's: the problem<->oracle reference
#: cycle is ordinary garbage once the caller drops the problem.
_CACHE_ATTR = "_safety_oracle_cache"

#: Weak views over everything handed out, for stats and test isolation.
_PROBLEMS: "weakref.WeakSet[UpdateProblem]" = weakref.WeakSet()
_ALL_ORACLES: "weakref.WeakSet[SafetyOracle]" = weakref.WeakSet()


def oracle_for(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    exact_rlf: bool = True,
    rlf_budget: int = 200_000,
) -> SafetyOracle:
    """Shared :class:`SafetyOracle` per ``(problem, properties, mode)``.

    Sharing is what makes memoization pay across call sites: the analysis
    helpers, the exact search and repeated scheduler invocations on the
    same problem all hit one verdict table.  The property set is compared
    order-insensitively (a verdict is a conjunction).  Oracles die with
    their problem, so long-running controllers do not leak.
    """
    cache = getattr(problem, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(problem, _CACHE_ATTR, cache)
        _PROBLEMS.add(problem)
    props = frozenset(properties)
    if Property.RLF not in props:
        # the RLF mode cannot affect verdicts: normalize the cache key so
        # callers with different budgets share one oracle and memo table
        exact_rlf, rlf_budget = True, 200_000
    key = (props, exact_rlf, rlf_budget)
    oracle = cache.get(key)
    if oracle is None:
        from repro.obs import trace as obs

        with obs.span(
            "oracle.build",
            problem=problem.name,
            properties=",".join(sorted(p.value for p in props)),
        ):
            oracle = SafetyOracle(
                problem, properties, exact_rlf=exact_rlf, rlf_budget=rlf_budget
            )
        cache[key] = oracle
        _ALL_ORACLES.add(oracle)
    return oracle


def clear_registry() -> None:
    """Forget all shared oracles (cold-start benchmarks, test isolation).

    Also drops the per-problem forced-precedence caches of
    :mod:`repro.core.bnb` (named literally to avoid the import cycle), so
    a cleared problem is genuinely cold for benchmark purposes.
    """
    for problem in list(_PROBLEMS):
        for attribute in (_CACHE_ATTR, "_bnb_precedence_cache"):
            try:
                delattr(problem, attribute)
            except AttributeError:
                pass
    _PROBLEMS.clear()
    _ALL_ORACLES.clear()


def clear_nogoods() -> None:
    """Drop the learned-nogood tables of every live shared oracle.

    Learning can be interrupted asynchronously (the campaign runner's
    per-cell SIGALRM fires mid-extraction); a half-written table would
    then poison verdicts for every later cell reusing the cached
    problem, so timeout handlers wipe all tables wholesale.
    """
    for oracle in list(_ALL_ORACLES):
        oracle.clear_nogoods()


def aggregate_stats() -> OracleStats:
    """Summed counters over all live shared oracles."""
    total = OracleStats()
    for oracle in _ALL_ORACLES:
        for spec in fields(OracleStats):
            setattr(
                total,
                spec.name,
                getattr(total, spec.name) + getattr(oracle.stats, spec.name),
            )
    return total
