"""The uniform scheduling envelope: ``ScheduleRequest`` → ``ScheduleResult``.

Every layer above :mod:`repro.core` -- CLI, REST, campaign engine,
benchmarks, examples -- schedules through this module instead of calling
individual scheduler functions with their private kwargs:

* a :class:`ScheduleRequest` carries the problem, the registry spec string
  (see :mod:`repro.core.registry` for the grammar), cleanup and verify
  flags, an explicit verification target, an oracle-reuse handle, engine
  params, and an optional wall-clock budget;
* :func:`execute_request` resolves the scheduler, runs it under the
  budget, verifies the produced schedule (against the explicit properties
  if given, else against the scheduler's realized guarantee -- a
  guarantee-free baseline has nothing to verify), and packages everything
  into a :class:`ScheduleResult` with wall time and the
  :class:`~repro.core.oracle.SafetyOracle` counter deltas observed across
  the request (published through :mod:`repro.metrics`; the counters are
  process-wide, so under concurrent requests the deltas interleave);
* :func:`schedule_update` is the one-line convenience wrapper::

      from repro import schedule_update

      result = schedule_update(problem, "peacock", verify=True)
      assert result.verified and result.schedule.n_rounds <= 4

Two-phase plans ride the same envelope: their verification holds by
construction (version isolation), so the report is synthesized rather
than model-checked, and the ``schedule`` field carries the
:class:`~repro.core.twophase.TwoPhaseSchedule` (which speaks the common
rounds / ``total_updates`` / ``to_dict`` surface).
"""

from __future__ import annotations

import contextlib
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ScheduleTimeoutError, UpdateModelError, VerificationError
from repro.obs import trace as obs
from repro.core.oracle import SafetyOracle, aggregate_stats
from repro.core.problem import UpdateProblem
from repro.core.registry import PROPERTY_NAMES, Scheduler, resolve_scheduler
from repro.core.twophase import TwoPhaseSchedule
from repro.core.verify import Property, VerificationReport, verify_schedule


@contextlib.contextmanager
def time_limit(seconds: float | None):
    """Raise :class:`ScheduleTimeoutError` after ``seconds`` of wall clock.

    Uses ``SIGALRM``, so it only arms on the main thread of a process with
    alarm support (true for campaign pool workers and plain scripts);
    elsewhere -- e.g. a REST service thread -- the limit is silently
    skipped (the campaign runner routes timed cells into pool workers for
    exactly this reason).

    Nesting-safe: an already-armed alarm (an outer ``time_limit`` or a
    worker-level watchdog) is suspended, not cancelled.  While the inner
    limit is active the alarm fires at whichever deadline comes first --
    chaining to the *outer* handler when the outer deadline is the earlier
    one -- and on exit the outer handler is restored and re-armed with its
    remaining time.
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    previous = signal.getsignal(signal.SIGALRM)
    prior_delay, _ = signal.setitimer(signal.ITIMER_REAL, 0.0)
    start = time.monotonic()
    outer_deadline = start + prior_delay if prior_delay > 0.0 else None
    inner_deadline = start + seconds
    outer_fired = False

    def on_alarm(signum, frame):
        nonlocal outer_fired
        if (
            outer_deadline is not None
            and outer_deadline <= inner_deadline
            and time.monotonic() >= outer_deadline
            and callable(previous)
        ):
            outer_fired = True
            previous(signum, frame)
            return
        raise ScheduleTimeoutError(f"exceeded {seconds}s")

    arm = seconds
    if outer_deadline is not None:
        arm = min(seconds, max(outer_deadline - start, 1e-6))
    signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, arm)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_deadline is not None and not outer_fired:
            # hand the remaining budget back to the outer alarm; if the
            # outer deadline slipped past while we held the timer, fire
            # it (almost) immediately rather than swallowing it
            remaining = outer_deadline - time.monotonic()
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6))


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling request against the registry.

    ``properties`` is the explicit verification target; ``None`` means
    "verify the scheduler against what it promises".  ``oracle`` lets a
    caller thread a pre-warmed :class:`SafetyOracle` through (schedulers
    that take no oracle ignore it via their registry adapter).  ``params``
    are engine options merged over the spec string's ``?key=value`` ones.
    """

    problem: UpdateProblem
    scheduler: str = "wayup"
    include_cleanup: bool = True
    verify: bool = False
    properties: tuple[Property, ...] | None = None
    oracle: SafetyOracle | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.properties is not None:
            object.__setattr__(self, "properties", tuple(self.properties))
        object.__setattr__(self, "params", dict(self.params))

    def resolved(self) -> Scheduler:
        return resolve_scheduler(self.scheduler)

    def cache_key(self) -> tuple:
        """Hashable request identity (canonical spec + options).

        For callers that memoize results per request: alias spellings
        collapse to one key.  The problem object is deliberately
        excluded -- combine with your own instance identity (the
        campaign runner keys its work-unit cache on the seed-derived
        cell identity precisely so one cached problem, with its warm
        oracles, serves every request swept over it).
        """
        properties = (
            None
            if self.properties is None
            else tuple(prop.value for prop in self.properties)
        )
        return (
            self.resolved().name,
            self.include_cleanup,
            self.verify,
            properties,
            json.dumps(dict(self.params), sort_keys=True, default=str),
            self.timeout_s,
        )


@dataclass
class ScheduleResult:
    """The uniform result envelope.

    ``scheduler`` is the canonical registry name actually used (aliases
    and property lists normalized); ``guarantee`` the realized property
    tuple; ``report`` the verification outcome (``None`` when nothing was
    verified); ``oracle_stats`` the :class:`SafetyOracle` counter deltas
    observed while the request ran (memo hits/misses, applies,
    Pearce-Kelly work).  The counters are summed process-wide, so when
    requests run concurrently their deltas interleave -- exact
    per-request attribution holds only for serial callers.
    """

    scheduler: str
    schedule: Any
    guarantee: tuple[Property, ...]
    detail: str | None
    report: VerificationReport | None
    wall_ms: float
    oracle_stats: dict[str, int]
    request: ScheduleRequest

    @property
    def verified(self) -> bool | None:
        """Verification verdict: True/False, or None if nothing verified."""
        return None if self.report is None else self.report.ok

    @property
    def n_rounds(self) -> int:
        return self.schedule.n_rounds

    def total_updates(self) -> int:
        return self.schedule.total_updates()

    def to_dict(self) -> dict:
        """JSON-compatible serialization (the REST / CLI wire format)."""
        data: dict = {
            "scheduler": self.scheduler,
            "schedule": self.schedule.to_dict(),
            "rounds": self.schedule.n_rounds,
            "touches": self.schedule.total_updates(),
            "guarantee": [PROPERTY_NAMES[p] for p in self.guarantee],
            "detail": self.detail,
            "verified": self.verified,
            "wall_ms": round(self.wall_ms, 3),
            "oracle": dict(self.oracle_stats),
        }
        if self.report is not None:
            data["verified_properties"] = [
                PROPERTY_NAMES[p] for p in self.report.properties
            ]
            data["verification_method"] = self.report.method
            data["violations"] = [str(v) for v in self.report.violations]
        return data


def _verify_outcome(schedule, properties) -> VerificationReport | None:
    """The envelope's verification half (``None`` = nothing to check)."""
    if isinstance(schedule, TwoPhaseSchedule):
        report = schedule.verification_report()
        if not properties:
            return report
        missing = [p for p in properties if p not in report.properties]
        if missing:
            # only WPE-without-waypoint can be missing; mirror the
            # model-checking path, which refuses that query outright
            raise VerificationError(
                f"cannot check {[p.value for p in missing]} on this plan"
            )
        return VerificationReport(
            ok=True,
            rounds_checked=report.rounds_checked,
            properties=tuple(properties),
            method=report.method,
        )
    if not properties:
        return None
    return verify_schedule(schedule, properties=tuple(properties))


def execute_request(request: ScheduleRequest) -> ScheduleResult:
    """Run one :class:`ScheduleRequest` through the registry.

    Raises the scheduler's own errors untranslated --
    :class:`~repro.errors.InfeasibleUpdateError`,
    :class:`~repro.errors.UpdateModelError`,
    :class:`~repro.errors.SchedulerSpecError`,
    :class:`~repro.errors.ScheduleTimeoutError` -- so callers keep their
    existing error taxonomy (the campaign runner maps them to cell
    statuses, REST to HTTP codes).
    """
    scheduler = request.resolved()
    problem = request.problem
    if scheduler.requires_waypoint and problem.waypoint is None:
        raise UpdateModelError(
            f"scheduler {scheduler.name!r} requires a waypointed problem"
        )
    before = aggregate_stats().as_dict()
    started = time.perf_counter()
    with obs.span(
        "api.execute_request",
        scheduler=scheduler.name,
        problem=problem.name,
        updates=len(problem.required_updates),
    ) as request_span:
        with time_limit(request.timeout_s):
            with obs.span("api.search", scheduler=scheduler.name):
                run = scheduler.run(
                    problem,
                    include_cleanup=request.include_cleanup,
                    oracle=request.oracle,
                    params=request.params,
                )
            if request.verify:
                with obs.span("api.verify"):
                    report = _verify_outcome(
                        run.schedule, request.properties or run.guarantee
                    )
            else:
                report = None
        wall_ms = (time.perf_counter() - started) * 1000.0
        after = aggregate_stats().as_dict()
        oracle_stats = {
            key: value - before.get(key, 0)
            for key, value in after.items()
            if value - before.get(key, 0) > 0
        }
        request_span.set_attrs(
            rounds=run.schedule.n_rounds,
            wall_ms=round(wall_ms, 3),
            **{f"oracle.{key}": value for key, value in oracle_stats.items()},
        )
    from repro.metrics import global_collector

    collector = global_collector()
    collector.record("api.schedule.wall_ms", wall_ms)
    collector.record("api.schedule.rounds", run.schedule.n_rounds)
    return ScheduleResult(
        scheduler=scheduler.name,
        schedule=run.schedule,
        guarantee=run.guarantee,
        detail=run.detail,
        report=report,
        wall_ms=wall_ms,
        oracle_stats=oracle_stats,
        request=request,
    )


def schedule_update(
    problem: UpdateProblem, scheduler: str = "wayup", **options: Any
) -> ScheduleResult:
    """Convenience wrapper: build the request, execute it, return the result.

    ``options`` are :class:`ScheduleRequest` fields (``include_cleanup``,
    ``verify``, ``properties``, ``oracle``, ``params``, ``timeout_s``).
    """
    return execute_request(
        ScheduleRequest(problem=problem, scheduler=scheduler, **options)
    )
