"""Branch-and-bound exact engine with conflict-learned nogoods.

The IDDFS mode of :mod:`repro.core.optimal` made *finding* optimal
schedules fast, but its worst cases stayed exponential for a structural
reason: iterative deepening re-expands the whole state space once per
budget level, which is exactly what infeasibility proofs (every level
fails) and forced-linear instances (the optimum sits at the top of the
deepening range) maximize.  This module removes both walls:

* an **admissible rounds-remaining lower bound** from the dependency
  structure of the instance.  :class:`PrecedenceAnalysis` derives a
  *sound* subset of the forced-order relation of
  :func:`repro.core.analysis.is_order_forced` in polynomial time: ``v``
  must be committed strictly before ``u`` whenever flipping ``u`` alone
  is provably unsafe in *every* configuration that still has ``v`` on
  its old rule.  Two certificates establish that universally quantified
  statement with one least-fixpoint computation each (no state
  enumeration):

  - **SLF** -- if every adversarial old/new assignment of the other
    nodes forces a walk from ``new_next[u]`` back to ``u``, the new rule
    of ``u`` always closes a loop (``_slf_blocks``);
  - **WPE** -- if under every assignment the union graph contains a
    source→destination path avoiding the waypoint while ``u`` is
    in flight (an AND-OR reachability fixpoint: ``u`` contributes both
    rules, everyone else is adversarial), flipping ``u`` always bypasses
    the waypoint (``_wpe_blocks``).

  Because any safe round containing ``u`` makes the singleton ``{u}``
  safe by monotonicity, each certificate forbids ``u`` from flipping
  before ``v`` is *committed* -- so the longest chain in the precedence
  graph is a true lower bound on the remaining rounds, a precedence
  *cycle* (or a node blocked with no pin at all) is an immediate
  infeasibility proof, and :func:`rounds_lower_bound` is shared with
  :func:`~repro.core.optimal.minimal_round_count` /
  :func:`~repro.core.optimal.is_feasible` as a pre-search short-circuit.

* **conflict-driven nogood learning** -- every unsafe verdict the search
  triggers makes the shared :class:`~repro.core.oracle.SafetyOracle`
  distill the violation witness into a cross-state ``(need_new,
  need_old)`` pattern (see the nogood section of
  :mod:`repro.core.oracle`), so round candidates that re-create a known
  conflict are rejected in two int ops from *every* state -- the
  cross-state generalization of the per-state monotonicity memo.

* **incumbent seeding and anytime intervals** -- the search starts from
  the greedy witness (:func:`~repro.core.combined
  .combined_greedy_schedule`) as upper bound, returns it immediately
  when the lower bound already matches, proves infeasibility in a
  *single* memoized pass (no deepening re-expansion), and otherwise
  deepens only through the window ``[lower bound, incumbent - 1]``.
  When a node or wall-clock budget runs out it raises
  :class:`~repro.errors.ExactSearchBudgetError` carrying the proven
  ``lower``/``upper`` interval, so callers degrade to bounds instead of
  nothing.

Registered through the scheduler registry as
``optimal:<props>?search=bnb`` (or ``?engine=bnb``); campaigns route
``optimal:<props>`` cells here automatically above n=18.
"""

from __future__ import annotations

import time

from repro.errors import (
    ExactSearchBudgetError,
    InfeasibleUpdateError,
    UpdateModelError,
)
from repro.obs import trace as obs
from repro.core.combined import combined_greedy_schedule
from repro.core.oracle import DEFAULT_NOGOOD_LIMIT
from repro.core.schedule import UpdateSchedule
from repro.core.verify import Property

#: ``proven`` value marking a state dead at every remaining-round budget.
_DEAD = 1 << 30

#: Node-expansion interval between ``bnb.milestone`` trace events.
_MILESTONE_EVERY = 5_000

#: Entries above which a per-analysis chain-bound cache is dropped.
_CHAIN_CACHE_LIMIT = 200_000


# ---------------------------------------------------------------------------
# universally quantified reachability certificates
# ---------------------------------------------------------------------------

def _choice_table(problem, required, flex=None, pinned=None) -> dict:
    """Per-node successor choices under adversarial old/new assignment.

    Models the union graph of an arbitrary state ``S'`` probed by the
    singleton query ``{flex}``: every *required* node other than
    ``pinned``/``flex`` may sit on either rule (the adversary picks),
    ``pinned`` is frozen on its old rule, ``flex`` is in flight (both
    rules live), and non-required nodes never move off their old rule
    (deletions are appended after the exact search).  ``None`` next hops
    (installs before install, deletes after delete) are kept: a walk
    dies there, which must count as an adversarial escape.
    """
    old_next, new_next = problem.old_next, problem.new_next
    table: dict = {}
    for node in problem.forwarding_nodes:
        if node == flex:
            options = {old_next.get(node), new_next.get(node)}
        elif node == pinned or node not in required:
            options = {old_next.get(node)}
        else:
            options = {old_next.get(node), new_next.get(node)}
        table[node] = tuple(options)
    return table


def _reach_fixpoint(choices, target, any_nodes=frozenset(), avoid=None):
    """Nodes from which ``target`` is reached under *every* assignment.

    Least fixpoint seeded by ``target``: an ordinary node joins when
    **all** of its choices already force the target (the adversary picks
    the edge), a node in ``any_nodes`` when **some** choice does (its
    union-graph presence offers every edge at once).  ``avoid`` never
    joins and is never traversed.  An ordinary node with a ``None``
    choice (the walk can die there) or an ``avoid`` choice can never be
    forced, and neither can any cycle the adversary can trap a walk in
    -- which is exactly what makes membership a certificate.
    """
    if target == avoid:
        return frozenset()
    preds: dict = {}
    remaining: dict = {}
    for node, options in choices.items():
        if node == avoid:
            continue
        live = [
            option
            for option in options
            if option is not None and option != avoid
        ]
        remaining[node] = len(live) if len(live) == len(options) else _DEAD
        for option in live:
            preds.setdefault(option, []).append(node)
    forced = {target}
    queue = [target]
    while queue:
        reached = queue.pop()
        for node in preds.get(reached, ()):
            if node in forced:
                continue
            if node in any_nodes:
                forced.add(node)
                queue.append(node)
                continue
            remaining[node] -= 1
            if remaining[node] == 0:
                forced.add(node)
                queue.append(node)
    return forced


def _slf_blocks(problem, required, u, pinned=None) -> bool:
    """Does flipping ``u`` alone *always* close a loop while ``pinned``
    (when given) still runs its old rule?

    True when ``new_next[u]`` force-reaches ``u``: every adversarial
    assignment walks the new edge of ``u`` back into ``u``, so the union
    graph of every such singleton query contains a cycle.
    """
    new_target = problem.new_next.get(u)
    if new_target is None:
        return False
    choices = _choice_table(problem, required, pinned=pinned)
    return new_target in _reach_fixpoint(choices, target=u)


def _wpe_blocks(problem, required, u, pinned=None) -> bool:
    """Does flipping ``u`` *always* open a waypoint bypass while
    ``pinned`` (when given) still runs its old rule?

    AND-OR certificate: ``u`` is in flight (both rules in the union
    graph, so *one* forcing choice suffices), everyone else adversarial.
    Truth means every reachable configuration's union graph routes
    source→destination around the waypoint.
    """
    waypoint = problem.waypoint
    if waypoint is None:
        return False
    choices = _choice_table(problem, required, flex=u, pinned=pinned)
    forced = _reach_fixpoint(
        choices,
        target=problem.destination,
        any_nodes=frozenset((u,)),
        avoid=waypoint,
    )
    return problem.source in forced


def _mixed_blocks(problem, required, u, pinned=None, enum_cap=8) -> bool:
    """Does flipping ``u`` *always* violate WPE **or** strong loop
    freedom, whichever the adversarial assignment admits?

    The per-property certificates miss exactly the mixed clashes: some
    assignments bypass the waypoint, the others trap the forwarding walk
    in a transient loop, and neither property covers the whole space
    alone.  This certificate analyses the walk from the source directly:
    a walk that reaches the destination without visiting the waypoint is
    a WPE violation, and a walk that never terminates revisits a node,
    i.e. closes a union cycle -- an SLF violation.  So ``u`` is blocked
    whenever *no* assignment offers the walk a clean escape (reaching
    the destination after the waypoint, or dying at a missing rule).

    The walk analysis runs over ``(node, visited-waypoint)`` states.
    Post-waypoint states live inside the successor-closed union closure
    of the waypoint; enumerating concrete assignments for the required
    nodes of that (typically constant-size) closure keeps every node's
    behaviour consistent across both flags, which makes the fixpoint
    exact per assignment.  Closures with more than ``enum_cap``
    assignable nodes fall back to ``False`` (no claim).
    """
    waypoint = problem.waypoint
    if waypoint is None:
        return False
    old_next, new_next = problem.old_next, problem.new_next
    forwarding = problem.forwarding_nodes
    source, destination = problem.source, problem.destination

    def available(node):
        if node == u:
            return (old_next.get(node), new_next.get(node))
        if node == pinned or node not in required:
            return (old_next.get(node),)
        return (old_next.get(node), new_next.get(node))

    closure = {waypoint}
    stack = [waypoint]
    while stack:
        node = stack.pop()
        if node not in forwarding:
            continue
        for nxt in available(node):
            if nxt is not None and nxt not in closure:
                closure.add(nxt)
                stack.append(nxt)
    assignable = sorted(
        (
            node
            for node in closure
            if node in required and node != u and node != pinned
        ),
        key=repr,
    )
    if len(assignable) > enum_cap:
        return False

    if source not in forwarding:
        return False
    start = (source, source == waypoint)
    for bits in range(1 << len(assignable)):
        fixed = {
            node: (
                new_next.get(node)
                if (bits >> position) & 1
                else old_next.get(node)
            )
            for position, node in enumerate(assignable)
        }
        # CLEAN = least fixpoint of "the walk can escape without a
        # violation": reach the destination after the waypoint, or die
        # at a missing rule / off-model node.  Per branch the outcome is
        # clean-terminal, doom-terminal (destination before the
        # waypoint), or another walk state.  The adversary (every node
        # but ``u``) is clean via ANY clean branch; at ``u`` we chase
        # the violation, so ``u`` is clean only if NO branch dooms and
        # every branch-state turns out clean.  States never joining the
        # fixpoint are doomed: their walks loop forever, i.e. close a
        # union cycle.
        need: dict = {}
        preds: dict = {}
        seeds: list = []
        for node in forwarding:
            options = (fixed[node],) if node in fixed else available(node)
            for flag in (False, True):
                state = (node, flag)
                succ_states = []
                clean_branch = False
                doom_branch = False
                for nxt in options:
                    if nxt is None:
                        clean_branch = True  # the walk dies here
                        continue
                    next_flag = flag or nxt == waypoint
                    if nxt == destination:
                        if next_flag:
                            clean_branch = True
                        else:
                            doom_branch = True  # waypoint bypassed
                        continue
                    if nxt not in forwarding:
                        clean_branch = True  # off-model sink: no claim
                        continue
                    succ_states.append((nxt, next_flag))
                if node != u:
                    if clean_branch:
                        seeds.append(state)
                        continue
                    need[state] = 1  # any clean successor is an escape
                else:
                    if doom_branch:
                        need[state] = _DEAD  # we take the violating rule
                        continue
                    need[state] = len(succ_states)
                    if not succ_states:
                        seeds.append(state)  # every rule already clean
                        continue
                for succ in succ_states:
                    preds.setdefault(succ, []).append(state)
        clean = set(seeds)
        queue = list(seeds)
        while queue:
            reached = queue.pop()
            for state in preds.get(reached, ()):
                if state in clean:
                    continue
                need[state] -= 1
                if need[state] <= 0:
                    clean.add(state)
                    queue.append(state)
        if start in clean:
            return False  # this assignment walks out cleanly: no claim
    return True


# ---------------------------------------------------------------------------
# precedence analysis: forced chains, cycles, stuck nodes
# ---------------------------------------------------------------------------

class PrecedenceAnalysis:
    """Sound forced-order structure of one ``(problem, properties)`` pair.

    ``infeasible_reason`` is non-``None`` when the certificates already
    prove that no safe round schedule exists: either some required
    update can never be applied in any reachable configuration, or the
    forced-order relation contains a cycle (the WPE-versus-loop-freedom
    clash shape).  Otherwise :meth:`chain_bound` returns the longest
    forced chain inside a pending-node mask -- an admissible lower bound
    on the rounds any safe schedule still needs, since chained nodes
    must be committed in strictly increasing rounds.
    """

    def __init__(self, problem, properties: tuple[Property, ...]) -> None:
        self.problem = problem
        self.properties = tuple(properties)
        canonical = tuple(problem.canonical_updates)
        required = frozenset(problem.required_updates)
        index = {node: position for position, node in enumerate(canonical)}
        self.k = len(canonical)
        self.full_mask = (1 << self.k) - 1
        use_slf = Property.SLF in self.properties
        use_wpe = (
            Property.WPE in self.properties and problem.waypoint is not None
        )
        # The mixed walk certificate covers the WPE-versus-SLF clashes
        # where each adversarial assignment violates *one* of the two.
        use_mixed = use_slf and use_wpe
        self.infeasible_reason: str | None = None
        self.canonical = canonical
        self._successors: tuple = ()
        self.edge_count = 0
        self._topo: tuple = ()
        self._chain_cache: dict[int, int] = {}
        successors: list[list[int]] = [[] for _ in canonical]
        edge_count = 0
        if use_slf or use_wpe:
            for u in canonical:
                if (
                    (use_slf and _slf_blocks(problem, required, u))
                    or (use_wpe and _wpe_blocks(problem, required, u))
                    or (use_mixed and _mixed_blocks(problem, required, u))
                ):
                    self.infeasible_reason = (
                        f"update {u!r} can never be applied: every "
                        f"reachable configuration violates "
                        f"{[p.value for p in self.properties]}"
                    )
                    return
                for v in canonical:
                    if v == u:
                        continue
                    if (
                        use_slf and _slf_blocks(problem, required, u, pinned=v)
                    ) or (
                        use_wpe and _wpe_blocks(problem, required, u, pinned=v)
                    ):
                        successors[index[v]].append(index[u])
                        edge_count += 1
        self._successors = tuple(tuple(targets) for targets in successors)
        self.edge_count = edge_count
        # Kahn topological order doubles as the cycle check: a forced
        # cycle admits no safe schedule at all.
        indegree = [0] * self.k
        for targets in self._successors:
            for target in targets:
                indegree[target] += 1
        order = [i for i in range(self.k) if indegree[i] == 0]
        for node in order:
            for target in self._successors[node]:
                indegree[target] -= 1
                if indegree[target] == 0:
                    order.append(target)
        if len(order) < self.k:
            cyclic = sorted(
                repr(canonical[i]) for i in range(self.k) if indegree[i] > 0
            )
            self.infeasible_reason = (
                f"forced-order cycle among {cyclic}: no ordering can "
                f"satisfy {[p.value for p in self.properties]}"
            )
            return
        self._topo = tuple(reversed(order))

    def forced_pairs(self) -> tuple:
        """The certified ``(v, u)`` orders (``v`` strictly before ``u``)."""
        return tuple(
            (self.canonical[position], self.canonical[target])
            for position, targets in enumerate(self._successors)
            for target in targets
        )

    def chain_bound(self, pending_mask: int) -> int:
        """Longest forced chain inside ``pending_mask`` (0 when empty)."""
        if not pending_mask:
            return 0
        if not self.edge_count:
            return 1
        cached = self._chain_cache.get(pending_mask)
        if cached is not None:
            return cached
        depth = [0] * self.k
        best = 1
        for node in self._topo:  # successors before predecessors
            if not (pending_mask >> node) & 1:
                continue
            longest = 0
            for target in self._successors[node]:
                if (pending_mask >> target) & 1 and depth[target] > longest:
                    longest = depth[target]
            depth[node] = longest + 1
            if depth[node] > best:
                best = depth[node]
        if len(self._chain_cache) >= _CHAIN_CACHE_LIMIT:
            self._chain_cache.clear()
        self._chain_cache[pending_mask] = best
        return best


#: Attribute caching analyses per problem (lifetime tied to the problem,
#: mirroring the oracle registry).
_PRECEDENCE_ATTR = "_bnb_precedence_cache"


def precedence_for(
    problem, properties: tuple[Property, ...]
) -> PrecedenceAnalysis:
    """Shared :class:`PrecedenceAnalysis` per ``(problem, properties)``."""
    cache = getattr(problem, _PRECEDENCE_ATTR, None)
    if cache is None:
        cache = {}
        try:
            setattr(problem, _PRECEDENCE_ATTR, cache)
        except AttributeError:  # exotic duck with __slots__: skip caching
            return PrecedenceAnalysis(problem, tuple(properties))
        # register with the oracle module's weak problem set so
        # clear_registry() (the repo-wide cold-start convention) drops
        # this cache too, even when no oracle was ever built
        from repro.core.oracle import _PROBLEMS

        _PROBLEMS.add(problem)
    key = frozenset(properties)
    analysis = cache.get(key)
    if analysis is None:
        analysis = cache[key] = PrecedenceAnalysis(problem, tuple(properties))
    return analysis


def rounds_lower_bound(problem, properties: tuple[Property, ...]) -> int:
    """Admissible lower bound on the rounds of *any* safe schedule.

    0 for no-op instances; raises :class:`InfeasibleUpdateError` when the
    precedence certificates already prove no schedule exists.  Shared by
    the branch-and-bound engine and the
    :func:`~repro.core.optimal.minimal_round_count` /
    :func:`~repro.core.optimal.is_feasible` short-circuits.
    """
    if not problem.required_updates:
        return 0
    analysis = precedence_for(problem, tuple(properties))
    if analysis.infeasible_reason is not None:
        raise InfeasibleUpdateError(analysis.infeasible_reason)
    return max(1, analysis.chain_bound(analysis.full_mask))


def infeasibility_certificate(
    problem, properties: tuple[Property, ...]
) -> str | None:
    """Polynomial infeasibility proof, or ``None`` when none was found.

    ``None`` does *not* mean feasible -- only the exact search decides
    that; a non-``None`` reason is always sound.
    """
    if not problem.required_updates:
        return None
    return precedence_for(problem, tuple(properties)).infeasible_reason


# ---------------------------------------------------------------------------
# the branch-and-bound search
# ---------------------------------------------------------------------------

def search_mask_bnb(
    search,
    properties: tuple[Property, ...],
    max_rounds: int | None = None,
    node_budget: int | None = None,
    time_limit_s: float | None = None,
    nogood_limit: int | None = None,
) -> UpdateSchedule:
    """Branch-and-bound over the mask engine's shared search state.

    ``search`` is the :class:`repro.core.optimal._MaskSearch` verdict
    layer (monotonicity memo included).  Infeasibility is decided in one
    memoized pass -- dead states stay dead, there is no deepening
    re-expansion -- and optimality by deepening only through
    ``[lower bound, incumbent - 1]``.  ``node_budget`` /
    ``time_limit_s`` turn the search anytime: exhausting either raises
    :class:`ExactSearchBudgetError` with the proven interval.
    """
    problem = search.problem
    properties = tuple(properties)
    full = search.full
    classes = search.classes
    k = search.k
    oracle = search.oracle

    analysis = precedence_for(problem, properties)
    if analysis.infeasible_reason is not None:
        raise InfeasibleUpdateError(analysis.infeasible_reason)
    root_lb = max(1, analysis.chain_bound(full))
    if max_rounds is not None and root_lb > max_rounds:
        raise InfeasibleUpdateError(
            f"no schedule satisfies {[p.value for p in properties]} within "
            f"{max_rounds} rounds (forced-chain lower bound is {root_lb})"
        )

    if nogood_limit is None:
        nogood_limit = DEFAULT_NOGOOD_LIMIT
    if nogood_limit:
        oracle.enable_nogood_learning(nogood_limit)
    else:
        # a nogood-free run must really be one: stop learning and drop
        # whatever a previous search left in the shared table
        oracle.disable_nogood_learning()

    best: int | None = None
    incumbent: list[int] | None = None
    if search.round_filter is None:
        try:
            witness = combined_greedy_schedule(
                problem, properties, include_cleanup=False
            )
        except (InfeasibleUpdateError, UpdateModelError):
            witness = None
        if witness is not None:
            best = witness.n_rounds
            incumbent = [oracle.mask_of(nodes) for nodes in witness.rounds]
    if (
        best is not None
        and best <= root_lb
        and (max_rounds is None or best <= max_rounds)
    ):
        return _mask_schedule(search, incumbent, properties)

    from repro.core.optimal import _canonicalize

    proven: dict[int, int] = {}
    expanded = 0
    deadline = (
        time.monotonic() + time_limit_s if time_limit_s is not None else None
    )

    def current_lower(limit: int | None) -> int:
        return root_lb if limit is None else max(root_lb, limit)

    def charge(limit: int | None) -> None:
        nonlocal expanded
        expanded += 1
        if expanded % _MILESTONE_EVERY == 0 and obs.tracing_enabled():
            obs.event(
                "bnb.milestone",
                expanded=expanded,
                lower=current_lower(limit),
                upper=best,
            )
        if node_budget is not None and expanded > node_budget:
            raise ExactSearchBudgetError(
                f"exact search exceeded {node_budget} node expansions",
                lower=current_lower(limit),
                upper=best,
                nodes_expanded=expanded,
            )
        if deadline is not None and time.monotonic() > deadline:
            raise ExactSearchBudgetError(
                f"exact search exceeded {time_limit_s}s",
                lower=current_lower(limit),
                upper=best,
                nodes_expanded=expanded,
            )

    def dfs_any(state: int) -> list[int] | None:
        """Find *any* completion; states without one are marked dead
        permanently, so the infeasibility proof is a single pass."""
        charge(None)
        safe_mask = search.safe_singleton_mask(state)
        sub = safe_mask
        while sub:
            successor = state | sub
            key = _canonicalize(successor, classes, k) if classes else successor
            if proven.get(key, -1) < _DEAD:
                if search.filter_ok(state, sub) and search.round_ok(state, sub):
                    if successor == full:
                        return [sub]
                    tail = dfs_any(successor)
                    if tail is not None:
                        return [sub, *tail]
                    proven[key] = _DEAD
            sub = (sub - 1) & safe_mask
        return None

    def dfs_bounded(state: int, remaining: int, limit: int) -> list[int] | None:
        charge(limit)
        safe_mask = search.safe_singleton_mask(state)
        if not safe_mask:
            return None
        if remaining == 1:
            pending = full & ~state
            if (
                safe_mask == pending
                and search.filter_ok(state, pending)
                and search.round_ok(state, pending)
            ):
                return [pending]
            return None
        sub = safe_mask
        while sub:
            successor = state | sub
            key = _canonicalize(successor, classes, k) if classes else successor
            if proven.get(key, -1) < remaining - 1:
                if successor == full:
                    if search.filter_ok(state, sub) and search.round_ok(
                        state, sub
                    ):
                        return [sub]
                elif analysis.chain_bound(full & ~successor) <= remaining - 1:
                    if search.filter_ok(state, sub) and search.round_ok(
                        state, sub
                    ):
                        tail = dfs_bounded(successor, remaining - 1, limit)
                        if tail is not None:
                            return [sub, *tail]
                        previous = proven.get(key, -1)
                        if remaining - 1 > previous:
                            proven[key] = remaining - 1
            sub = (sub - 1) & safe_mask
        return None

    if best is None:
        # No greedy witness (infeasible instance, or a filtered search
        # the witness cannot speak for): establish feasibility first.
        found = dfs_any(0)
        if found is None:
            raise InfeasibleUpdateError(
                f"no schedule satisfies {[p.value for p in properties]}"
            )
        best = len(found)
        incumbent = found

    ceiling = best - 1
    if max_rounds is not None:
        ceiling = min(ceiling, max_rounds)
    for limit in range(root_lb, ceiling + 1):
        rounds = dfs_bounded(0, limit, limit)
        if rounds is not None:
            return _mask_schedule(search, rounds, properties)

    if max_rounds is not None and best > max_rounds:
        raise InfeasibleUpdateError(
            f"no schedule satisfies {[p.value for p in properties]} "
            f"within {max_rounds} rounds"
        )
    return _mask_schedule(search, incumbent, properties)


def _mask_schedule(
    search, masks: list[int], properties: tuple[Property, ...]
) -> UpdateSchedule:
    return UpdateSchedule(
        search.problem,
        [search.round_nodes(mask) for mask in masks],
        algorithm="optimal",
        metadata={"properties": [p.value for p in properties]},
    )
