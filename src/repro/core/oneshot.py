"""The one-shot baseline: everything in a single asynchronous round.

This models what a stock controller app (Ryu's ``ofctl_rest``) does when a
policy changes: fire all FlowMods at once and hope.  Under an asynchronous
control channel the rules land in arbitrary order, so transiently the
network can bypass waypoints, loop and blackhole -- the failure mode the
paper's demo makes visible and the schedulers exist to prevent (E4).
"""

from __future__ import annotations

from repro.errors import UpdateModelError
from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule


def oneshot_schedule(
    problem: UpdateProblem, include_cleanup: bool = True
) -> UpdateSchedule:
    """All installs, switches (and optionally deletes) in one round."""
    nodes = set(problem.required_updates)
    if include_cleanup:
        nodes |= problem.cleanup_updates
    if not nodes:
        raise UpdateModelError("one-shot invoked on a problem with no rule changes")
    return UpdateSchedule(
        problem,
        [nodes],
        algorithm="oneshot",
        metadata={"round_names": ["everything"]},
    )
