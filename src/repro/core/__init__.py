"""The paper's contribution: transiently secure update scheduling.

Public surface:

* model -- :class:`UpdateProblem`, :class:`UpdateSchedule`, :class:`RuleState`,
  :class:`UpdateKind`, :class:`Configuration`
* verification -- :func:`verify_schedule`, :func:`verify_exhaustive`,
  :class:`Property`, :class:`VerificationReport`
* schedulers -- :func:`wayup_schedule`, :func:`peacock_schedule`,
  :func:`greedy_slf_schedule`, :func:`oneshot_schedule`,
  :func:`two_phase_schedule`, :func:`minimal_round_schedule`,
  :func:`sequential_schedule`
* multi-policy -- :class:`JointUpdateProblem`, :func:`greedy_joint_schedule`,
  :func:`merge_isolated_schedules`
* adversarial instances -- :mod:`repro.core.hardness`
* analytic cost -- :class:`CostModel`, :func:`schedule_update_time`
"""

from repro.core.analysis import (
    cannot_be_last,
    dependency_graph,
    explain_schedule,
    greedy_deadlock_certificate,
    is_order_forced,
    unlock_constraints,
    unsafe_alone,
)
from repro.core.combined import (
    combined_greedy_schedule,
    strongest_feasible_schedule,
)
from repro.core.cost import (
    HARDWARE_TCAM,
    OVS_FAST,
    OVS_LOADED,
    PRESETS,
    WAN_CONTROL,
    CostModel,
    round_time_breakdown,
    schedule_update_time,
    two_phase_update_time,
)
from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.hardness import (
    crossing_instance,
    double_diamond_instance,
    hardness_profile,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.multipolicy import (
    JointUpdateProblem,
    MergedPlan,
    PolicyView,
    greedy_joint_schedule,
    merge_isolated_schedules,
    verify_joint_round,
    verify_joint_schedule,
)
from repro.core.oneshot import oneshot_schedule
from repro.core.optimal import (
    DEFAULT_MAX_NODES,
    is_feasible,
    minimal_round_count,
    minimal_round_schedule,
    round_is_safe,
    round_is_safe_reference,
    symmetry_classes,
)
from repro.core.oracle import (
    OracleStats,
    SafetyOracle,
    aggregate_stats,
    oracle_for,
)
from repro.core.peacock import classify_forward_backward, peacock_schedule
from repro.core.problem import (
    Configuration,
    RuleState,
    UpdateKind,
    UpdateProblem,
    WalkResult,
    WaypointClasses,
    trace_walk,
)
from repro.core.schedule import UpdateSchedule, sequential_schedule
from repro.core.transient import (
    EdgeChoice,
    NodePhase,
    UnionGraph,
    enumerate_round_configurations,
    functional_cycle,
    functional_graph,
    phases_for_round,
)
from repro.core.twophase import (
    NEW_VERSION_TAG,
    OLD_VERSION_TAG,
    TwoPhaseSchedule,
    two_phase_schedule,
)
from repro.core.verify import (
    Property,
    VerificationReport,
    Violation,
    check_blackhole,
    check_rlf,
    check_slf,
    check_wpe,
    default_properties,
    is_round_safe,
    verify_exhaustive,
    verify_round,
    verify_schedule,
)
from repro.core.wayup import ROUND_NAMES as WAYUP_ROUND_NAMES
from repro.core.wayup import wayup_schedule

__all__ = [
    "Configuration",
    "CostModel",
    "DEFAULT_MAX_NODES",
    "EdgeChoice",
    "HARDWARE_TCAM",
    "JointUpdateProblem",
    "MergedPlan",
    "NEW_VERSION_TAG",
    "NodePhase",
    "OLD_VERSION_TAG",
    "OracleStats",
    "SafetyOracle",
    "OVS_FAST",
    "OVS_LOADED",
    "PRESETS",
    "PolicyView",
    "Property",
    "RuleState",
    "TwoPhaseSchedule",
    "UnionGraph",
    "UpdateKind",
    "UpdateProblem",
    "UpdateSchedule",
    "VerificationReport",
    "Violation",
    "WAN_CONTROL",
    "WAYUP_ROUND_NAMES",
    "WalkResult",
    "WaypointClasses",
    "aggregate_stats",
    "cannot_be_last",
    "check_blackhole",
    "check_rlf",
    "check_slf",
    "check_wpe",
    "classify_forward_backward",
    "combined_greedy_schedule",
    "crossing_instance",
    "default_properties",
    "dependency_graph",
    "double_diamond_instance",
    "enumerate_round_configurations",
    "explain_schedule",
    "functional_cycle",
    "functional_graph",
    "greedy_deadlock_certificate",
    "greedy_joint_schedule",
    "greedy_slf_schedule",
    "hardness_profile",
    "is_feasible",
    "is_order_forced",
    "is_round_safe",
    "merge_isolated_schedules",
    "minimal_round_count",
    "minimal_round_schedule",
    "oneshot_schedule",
    "oracle_for",
    "peacock_schedule",
    "phases_for_round",
    "reversal_instance",
    "round_is_safe",
    "round_is_safe_reference",
    "round_time_breakdown",
    "sawtooth_instance",
    "schedule_update_time",
    "sequential_schedule",
    "strongest_feasible_schedule",
    "symmetry_classes",
    "trace_walk",
    "two_phase_schedule",
    "two_phase_update_time",
    "unlock_constraints",
    "unsafe_alone",
    "verify_exhaustive",
    "verify_joint_round",
    "verify_joint_schedule",
    "verify_round",
    "verify_schedule",
    "wayup_schedule",
    "waypoint_slalom_instance",
]
