"""The paper's contribution: transiently secure update scheduling.

The **scheduler-service API** is the intended entry point: every
scheduler in the family -- WayUp, Peacock, greedy SLF, combined,
strongest, the exact minimum-round search, and the one-shot / sequential
/ two-phase baselines -- lives behind one process-wide registry and one
request/result envelope, shared by the CLI, REST, campaign, and
benchmark layers::

    from repro.core import schedule_update, scheduler_names

    result = schedule_update(problem, "peacock", verify=True)
    result.schedule      # the UpdateSchedule (TwoPhaseSchedule for "two-phase")
    result.guarantee     # realized Property tuple
    result.report        # VerificationReport or None
    result.oracle_stats  # SafetyOracle counter deltas of this request

Public surface:

* scheduler service -- :func:`schedule_update`, :func:`execute_request`,
  :class:`ScheduleRequest`, :class:`ScheduleResult`;
  :func:`resolve_scheduler`, :func:`register_scheduler`,
  :func:`scheduler_names`, :class:`Scheduler`, :data:`SCHEDULER_REGISTRY`
  (spec grammar ``name[:<p1+p2>][?key=value]`` -- e.g. ``combined:wpe+rlf``,
  ``optimal:slf?search=bfs``; aliases like ``greedy_slf`` resolve too)
* model -- :class:`UpdateProblem`, :class:`UpdateSchedule`, :class:`RuleState`,
  :class:`UpdateKind`, :class:`Configuration`
* verification -- :func:`verify_schedule`, :func:`verify_exhaustive`,
  :class:`Property`, :class:`VerificationReport`
* scheduler functions (the registry's building blocks, still callable
  directly) -- :func:`wayup_schedule`, :func:`peacock_schedule`,
  :func:`greedy_slf_schedule`, :func:`oneshot_schedule`,
  :func:`two_phase_schedule`, :func:`minimal_round_schedule`,
  :func:`sequential_schedule`
* multi-policy -- :class:`JointUpdateProblem`, :func:`greedy_joint_schedule`,
  :func:`merge_isolated_schedules`
* adversarial instances -- :mod:`repro.core.hardness`
* analytic cost -- :class:`CostModel`, :func:`schedule_update_time`
"""

from repro.core.api import (
    ScheduleRequest,
    ScheduleResult,
    execute_request,
    schedule_update,
    time_limit,
)
from repro.core.analysis import (
    cannot_be_last,
    dependency_graph,
    explain_schedule,
    forced_precedence_graph,
    greedy_deadlock_certificate,
    is_order_forced,
    unlock_constraints,
    unsafe_alone,
)
from repro.core.bnb import (
    infeasibility_certificate,
    rounds_lower_bound,
)
from repro.core.combined import (
    combined_greedy_schedule,
    strongest_feasible_schedule,
)
from repro.core.cost import (
    HARDWARE_TCAM,
    OVS_FAST,
    OVS_LOADED,
    PRESETS,
    WAN_CONTROL,
    CostModel,
    round_time_breakdown,
    schedule_update_time,
    two_phase_update_time,
)
from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.hardness import (
    crossing_clash_instance,
    crossing_instance,
    double_diamond_instance,
    hardness_profile,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.multipolicy import (
    JointUpdateProblem,
    MergedPlan,
    PolicyView,
    greedy_joint_schedule,
    merge_isolated_schedules,
    verify_joint_round,
    verify_joint_schedule,
)
from repro.core.oneshot import oneshot_schedule
from repro.core.optimal import (
    DEFAULT_MAX_NODES,
    is_feasible,
    minimal_round_count,
    minimal_round_schedule,
    round_is_safe,
    round_is_safe_reference,
    symmetry_classes,
)
from repro.core.oracle import (
    OracleStats,
    SafetyOracle,
    aggregate_stats,
    oracle_for,
)
from repro.core.peacock import classify_forward_backward, peacock_schedule
from repro.core.registry import REGISTRY as SCHEDULER_REGISTRY
from repro.core.registry import (
    Scheduler,
    SchedulerDefinition,
    SchedulerRun,
    register_scheduler,
    resolve_scheduler,
    scheduler_names,
)
from repro.core.problem import (
    Configuration,
    RuleState,
    UpdateKind,
    UpdateProblem,
    WalkResult,
    WaypointClasses,
    trace_walk,
)
from repro.core.schedule import UpdateSchedule, sequential_schedule
from repro.core.transient import (
    EdgeChoice,
    NodePhase,
    UnionGraph,
    enumerate_round_configurations,
    functional_cycle,
    functional_graph,
    phases_for_round,
)
from repro.core.twophase import (
    NEW_VERSION_TAG,
    OLD_VERSION_TAG,
    TwoPhaseSchedule,
    two_phase_schedule,
)
from repro.core.verify import (
    Property,
    VerificationReport,
    Violation,
    check_blackhole,
    check_rlf,
    check_slf,
    check_wpe,
    default_properties,
    is_round_safe,
    verify_exhaustive,
    verify_round,
    verify_schedule,
)
from repro.core.wayup import ROUND_NAMES as WAYUP_ROUND_NAMES
from repro.core.wayup import wayup_schedule

__all__ = [
    "Configuration",
    "CostModel",
    "DEFAULT_MAX_NODES",
    "EdgeChoice",
    "HARDWARE_TCAM",
    "JointUpdateProblem",
    "MergedPlan",
    "NEW_VERSION_TAG",
    "NodePhase",
    "OLD_VERSION_TAG",
    "OracleStats",
    "SafetyOracle",
    "OVS_FAST",
    "OVS_LOADED",
    "PRESETS",
    "PolicyView",
    "Property",
    "RuleState",
    "SCHEDULER_REGISTRY",
    "ScheduleRequest",
    "ScheduleResult",
    "Scheduler",
    "SchedulerDefinition",
    "SchedulerRun",
    "TwoPhaseSchedule",
    "UnionGraph",
    "UpdateKind",
    "UpdateProblem",
    "UpdateSchedule",
    "VerificationReport",
    "Violation",
    "WAN_CONTROL",
    "WAYUP_ROUND_NAMES",
    "WalkResult",
    "WaypointClasses",
    "aggregate_stats",
    "cannot_be_last",
    "check_blackhole",
    "check_rlf",
    "check_slf",
    "check_wpe",
    "classify_forward_backward",
    "combined_greedy_schedule",
    "crossing_clash_instance",
    "crossing_instance",
    "default_properties",
    "dependency_graph",
    "double_diamond_instance",
    "enumerate_round_configurations",
    "execute_request",
    "explain_schedule",
    "forced_precedence_graph",
    "functional_cycle",
    "functional_graph",
    "greedy_deadlock_certificate",
    "greedy_joint_schedule",
    "greedy_slf_schedule",
    "hardness_profile",
    "infeasibility_certificate",
    "is_feasible",
    "is_order_forced",
    "is_round_safe",
    "merge_isolated_schedules",
    "minimal_round_count",
    "minimal_round_schedule",
    "oneshot_schedule",
    "oracle_for",
    "peacock_schedule",
    "phases_for_round",
    "register_scheduler",
    "resolve_scheduler",
    "reversal_instance",
    "round_is_safe",
    "round_is_safe_reference",
    "round_time_breakdown",
    "rounds_lower_bound",
    "sawtooth_instance",
    "schedule_update",
    "schedule_update_time",
    "scheduler_names",
    "sequential_schedule",
    "strongest_feasible_schedule",
    "symmetry_classes",
    "time_limit",
    "trace_walk",
    "two_phase_schedule",
    "two_phase_update_time",
    "unlock_constraints",
    "unsafe_alone",
    "verify_exhaustive",
    "verify_joint_round",
    "verify_joint_schedule",
    "verify_round",
    "verify_schedule",
    "wayup_schedule",
    "waypoint_slalom_instance",
]
