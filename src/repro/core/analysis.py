"""Structural analysis of update problems: dependencies and explanations.

Scheduling decisions follow from *ordering constraints* between rule
updates.  This module makes them explicit, using the exact verifiers as
the oracle (so every statement inherits their soundness):

* :func:`unsafe_alone` -- nodes that can never be the very first update;
* :func:`unlock_constraints` -- pairs ``(v, u)``: updating ``v`` alone is
  *sufficient* to make ``u`` safe next (a greedy-friendly view);
* :func:`necessary_predecessors` -- nodes that must *necessarily* be done
  before ``u`` can ever go live (removing any one of them from "everything
  else done" re-breaks ``u``);
* :func:`cannot_be_last` -- nodes whose update is unsafe even with every
  other update already applied: the property is violated by some *earlier*
  configuration no matter when this node flips;
* :func:`greedy_deadlock_certificate` -- when every pending node is unsafe
  first, no round schedule can start at all: an immediate infeasibility
  certificate (this is exactly what the crossing instance produces under
  WPE + loop freedom);
* :func:`explain_schedule` -- human-readable per-round narrative.

These are diagnostics, not schedulers: pairwise views are necessary-side
approximations of the full (set-quantified) feasibility question decided
by :mod:`repro.core.optimal`.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import InfeasibleUpdateError
from repro.core.oracle import oracle_for
from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.verify import Property
from repro.topology.graph import NodeId


def unsafe_alone(
    problem: UpdateProblem, properties: tuple[Property, ...]
) -> set:
    """Nodes whose update, applied first (alone), already violates."""
    oracle = oracle_for(problem, tuple(properties))
    bits = problem.node_bit
    return {
        node
        for node in problem.canonical_updates
        if not oracle.round_is_safe(0, 1 << bits[node])
    }


def unlock_constraints(
    problem: UpdateProblem, properties: tuple[Property, ...]
) -> set[tuple[NodeId, NodeId]]:
    """Pairs ``(v, u)``: ``u`` is unsafe first, but safe right after ``v``.

    A *sufficiency* relation -- the single-step unlocks a greedy scheduler
    can exploit.  Nodes needing several predecessors contribute no pairs.
    """
    oracle = oracle_for(problem, tuple(properties))
    bits = problem.node_bit
    constraints: set[tuple[NodeId, NodeId]] = set()
    nodes = problem.canonical_updates
    blocked = [n for n in nodes if not oracle.round_is_safe(0, 1 << bits[n])]
    for u in blocked:
        u_bit = 1 << bits[u]
        for v in nodes:
            if u == v:
                continue
            if oracle.round_is_safe(1 << bits[v], u_bit):
                constraints.add((v, u))
    return constraints


def cannot_be_last(
    problem: UpdateProblem, properties: tuple[Property, ...]
) -> set:
    """Nodes that are unsafe even as the final update.

    If flipping ``u`` violates when *everything else* is already done, the
    violation is caused by configurations that precede ``u``'s flip -- so
    some other ordering constraint, not ``u``'s own position, is at fault.
    """
    oracle = oracle_for(problem, tuple(properties))
    bits = problem.node_bit
    everyone = problem.required_mask
    return {
        u
        for u in problem.canonical_updates
        if not oracle.round_is_safe(everyone & ~(1 << bits[u]), 1 << bits[u])
    }


def is_order_forced(
    problem: UpdateProblem,
    v: NodeId,
    u: NodeId,
    properties: tuple[Property, ...],
    max_nodes: int = 10,
    use_oracle: bool = True,
    search: str = "bfs",
) -> bool:
    """Must ``v`` be updated strictly before ``u`` in *every* safe schedule?

    Exact: searches for any safe schedule where ``u``'s round is no later
    than ``v``'s (enforced with a transition filter on the exhaustive
    search); if none exists, the order is forced.  Infeasible instances
    force nothing (there are no safe schedules to constrain).  Exponential
    -- intended for the small diagnostic instances.  ``use_oracle`` and
    ``search`` are forwarded to the exact search (the filtered queries
    were previously stuck on the default path).
    """
    required = problem.required_updates
    for node in (v, u):
        if node not in required:
            raise ValueError(f"{node!r} is not a required update")
    if v == u:
        return False

    def u_not_after_v(updated: set, round_nodes: set) -> bool:
        # veto rounds that would update v while u is still pending later
        if v in round_nodes:
            return u in updated or u in round_nodes
        return True

    from repro.core.optimal import minimal_round_schedule

    try:
        minimal_round_schedule(
            problem,
            properties,
            max_nodes=max_nodes,
            round_filter=u_not_after_v,
            use_oracle=use_oracle,
            search=search,
        )
    except InfeasibleUpdateError:
        # no safe schedule with u <= v; forced only if some schedule exists
        try:
            minimal_round_schedule(
                problem,
                properties,
                max_nodes=max_nodes,
                use_oracle=use_oracle,
                search=search,
            )
        except InfeasibleUpdateError:
            return False
        return True
    return False


def dependency_graph(
    problem: UpdateProblem,
    properties: tuple[Property, ...],
    max_nodes: int = 10,
    use_oracle: bool = True,
    search: str = "bfs",
) -> nx.DiGraph:
    """Forced-precedence edges ``v -> u`` (v strictly before u, exactly).

    Quadratically many :func:`is_order_forced` queries; small instances
    only.  The resulting graph is acyclic whenever the instance is
    feasible (a forced cycle would contradict the witness schedule).
    """
    graph = nx.DiGraph()
    nodes = problem.canonical_updates
    graph.add_nodes_from(nodes)
    for v in nodes:
        for u in nodes:
            if v != u and is_order_forced(
                problem, v, u, properties, max_nodes, use_oracle, search
            ):
                graph.add_edge(v, u)
    return graph


def forced_precedence_graph(
    problem: UpdateProblem, properties: tuple[Property, ...]
) -> nx.DiGraph:
    """Polynomial-time sound subset of :func:`dependency_graph`.

    Edges come from the universally quantified reachability certificates
    of :mod:`repro.core.bnb` (forced SLF loops, forced WPE bypasses)
    instead of exponentially many exact searches, so this scales to the
    instances the exact engines ground-truth.  Every edge is a true
    forced order (``v`` strictly before ``u`` in every safe schedule);
    the exact graph may contain more.  The longest path is the
    admissible rounds lower bound the branch-and-bound engine prunes
    with (:func:`repro.core.bnb.rounds_lower_bound`).
    """
    from repro.core.bnb import precedence_for

    analysis = precedence_for(problem, tuple(properties))
    graph = nx.DiGraph()
    graph.add_nodes_from(problem.canonical_updates)
    graph.add_edges_from(analysis.forced_pairs())
    return graph


def greedy_deadlock_certificate(
    problem: UpdateProblem, properties: tuple[Property, ...]
) -> set | None:
    """When *every* required node is unsafe first, return them all.

    No round schedule can begin, so the property combination is
    round-infeasible -- the shape of the WPE-vs-loop-freedom clash on
    crossing instances.  Returns ``None`` when some node can start.
    """
    blocked = unsafe_alone(problem, properties)
    if blocked == set(problem.required_updates) and blocked:
        return blocked
    return None


def explain_schedule(schedule: UpdateSchedule) -> list[str]:
    """One line per round: what changes and why it is grouped there."""
    problem = schedule.problem
    names = schedule.metadata.get("round_names") or [
        f"round-{i}" for i in range(schedule.n_rounds)
    ]
    lines = []
    for index, nodes in enumerate(schedule.rounds):
        changes = []
        for node in sorted(nodes, key=repr):
            kind = problem.kind(node).value
            if kind == "switch":
                old = problem.old_path.next_hop(node)
                new = problem.new_path.next_hop(node)
                changes.append(f"{node}: ->{old} becomes ->{new}")
            elif kind == "install":
                changes.append(f"{node}: install ->{problem.new_path.next_hop(node)}")
            else:
                changes.append(f"{node}: delete stale rule")
        lines.append(f"round {index} [{names[index]}]: " + "; ".join(changes))
    return lines
