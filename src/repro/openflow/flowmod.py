"""The FlowMod message: the unit of every network update in the paper."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, ClassVar, Mapping, Sequence

from repro.errors import OpenFlowError
from repro.openflow.actions import (
    ApplyActions,
    Instruction,
    OutputAction,
    instruction_from_dict,
)
from repro.openflow.constants import (
    DEFAULT_PRIORITY,
    OFP_NO_BUFFER,
    FlowModCommand,
    GroupId,
    MsgType,
    Port,
)
from repro.openflow.match import Match
from repro.openflow.messages import OpenFlowMessage


@dataclass
class FlowMod(OpenFlowMessage):
    """Add / modify / delete one flow entry on a switch.

    Field semantics follow OpenFlow 1.3: ``command`` selects the operation,
    ``match`` + ``priority`` identify entries for the strict variants,
    ``out_port``/``out_group`` further filter deletes.
    """

    cookie: int = 0
    cookie_mask: int = 0
    table_id: int = 0
    command: FlowModCommand = FlowModCommand.ADD
    idle_timeout: int = 0
    hard_timeout: int = 0
    priority: int = DEFAULT_PRIORITY
    buffer_id: int = OFP_NO_BUFFER
    out_port: int = int(Port.ANY)
    out_group: int = int(GroupId.ANY)
    flags: int = 0
    match: Match = field(default_factory=Match)
    instructions: tuple[Instruction, ...] = ()

    msg_type: ClassVar[MsgType] = MsgType.FLOW_MOD

    def __post_init__(self) -> None:
        self.command = FlowModCommand(self.command)
        if not 0 <= self.priority <= 0xFFFF:
            raise OpenFlowError(f"priority {self.priority} out of range")
        if not 0 <= self.table_id <= 0xFF:
            raise OpenFlowError(f"table id {self.table_id} out of range")
        self.instructions = tuple(self.instructions)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def is_add(self) -> bool:
        return self.command is FlowModCommand.ADD

    def is_delete(self) -> bool:
        return self.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT)

    def is_modify(self) -> bool:
        return self.command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT)

    def is_strict(self) -> bool:
        return self.command in (
            FlowModCommand.MODIFY_STRICT,
            FlowModCommand.DELETE_STRICT,
        )

    def output_ports(self) -> list[int]:
        """Ports this FlowMod's apply-actions would output to."""
        ports = []
        for instruction in self.instructions:
            if isinstance(instruction, ApplyActions):
                ports.extend(
                    action.port
                    for action in instruction.actions
                    if isinstance(action, OutputAction)
                )
        return ports

    def with_xid(self, xid: int) -> "FlowMod":
        return replace(self, xid=xid)

    # ------------------------------------------------------------------
    # ofctl-style dict codec (the paper's REST body items)
    # ------------------------------------------------------------------
    def to_ofctl(self, dpid: int | None = None) -> dict[str, Any]:
        data: dict[str, Any] = {
            "cookie": self.cookie,
            "table_id": self.table_id,
            "priority": self.priority,
            "idle_timeout": self.idle_timeout,
            "hard_timeout": self.hard_timeout,
            "match": self.match.to_ofctl(),
            "instructions": [ins.to_dict() for ins in self.instructions],
        }
        if dpid is not None:
            data["dpid"] = dpid
        if self.command is not FlowModCommand.ADD:
            data["command"] = self.command.name
        return data

    @classmethod
    def from_ofctl(
        cls,
        data: Mapping[str, Any],
        command: FlowModCommand | str = FlowModCommand.ADD,
    ) -> "FlowMod":
        """Parse an ofctl_rest-style body (``actions`` is accepted as a
        shorthand for a single APPLY_ACTIONS instruction, as Ryu does)."""
        if isinstance(command, str):
            try:
                command = FlowModCommand[command.upper()]
            except KeyError:
                raise OpenFlowError(f"unknown FlowMod command {command!r}") from None
        if "command" in data:
            raw = data["command"]
            command = (
                FlowModCommand[raw.upper()] if isinstance(raw, str) else FlowModCommand(raw)
            )
        match = Match.from_ofctl(data.get("match", {}))
        instructions: Sequence[Instruction]
        if "instructions" in data:
            instructions = tuple(
                instruction_from_dict(item) for item in data["instructions"]
            )
        elif "actions" in data:
            from repro.openflow.actions import action_from_dict

            instructions = (
                ApplyActions([action_from_dict(item) for item in data["actions"]]),
            )
        else:
            instructions = ()
        return cls(
            cookie=int(data.get("cookie", 0)),
            table_id=int(data.get("table_id", 0)),
            command=command,
            idle_timeout=int(data.get("idle_timeout", 0)),
            hard_timeout=int(data.get("hard_timeout", 0)),
            priority=int(data.get("priority", DEFAULT_PRIORITY)),
            flags=int(data.get("flags", 0)),
            match=match,
            instructions=instructions,
        )


def add_flow(
    match: Match,
    out_port: int,
    priority: int = DEFAULT_PRIORITY,
    table_id: int = 0,
    cookie: int = 0,
    idle_timeout: int = 0,
    hard_timeout: int = 0,
) -> FlowMod:
    """Shorthand for the dominant case: match -> output(port)."""
    return FlowMod(
        command=FlowModCommand.ADD,
        match=match,
        priority=priority,
        table_id=table_id,
        cookie=cookie,
        idle_timeout=idle_timeout,
        hard_timeout=hard_timeout,
        instructions=(ApplyActions([OutputAction(port=out_port)]),),
    )


def delete_flow(
    match: Match,
    priority: int | None = None,
    table_id: int = 0,
    strict: bool = False,
) -> FlowMod:
    """Shorthand for deleting entries matching ``match``.

    Strict deletes require the exact priority; non-strict ignore it.
    """
    if strict and priority is None:
        raise OpenFlowError("strict delete needs an explicit priority")
    return FlowMod(
        command=FlowModCommand.DELETE_STRICT if strict else FlowModCommand.DELETE,
        match=match,
        priority=priority if priority is not None else 0,
        table_id=table_id,
    )
