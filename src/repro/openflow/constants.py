"""OpenFlow 1.3 protocol constants (the subset the prototype uses).

Numeric values follow the OpenFlow 1.3.5 specification so the binary wire
codec in :mod:`repro.openflow.wire` produces frames a real dissector would
recognize for the implemented subset.
"""

from __future__ import annotations

import enum

#: Protocol version byte for OpenFlow 1.3.
OFP_VERSION = 0x04

#: Standard OpenFlow header length in bytes.
OFP_HEADER_LEN = 8

#: "No buffer" sentinel for buffer_id fields.
OFP_NO_BUFFER = 0xFFFFFFFF

#: Default priority Ryu's ofctl uses when none is given.
DEFAULT_PRIORITY = 0x8000


class MsgType(enum.IntEnum):
    """OpenFlow message types (spec section A.1)."""

    HELLO = 0
    ERROR = 1
    ECHO_REQUEST = 2
    ECHO_REPLY = 3
    EXPERIMENTER = 4
    FEATURES_REQUEST = 5
    FEATURES_REPLY = 6
    GET_CONFIG_REQUEST = 7
    GET_CONFIG_REPLY = 8
    SET_CONFIG = 9
    PACKET_IN = 10
    FLOW_REMOVED = 11
    PORT_STATUS = 12
    PACKET_OUT = 13
    FLOW_MOD = 14
    GROUP_MOD = 15
    PORT_MOD = 16
    TABLE_MOD = 17
    MULTIPART_REQUEST = 18
    MULTIPART_REPLY = 19
    BARRIER_REQUEST = 20
    BARRIER_REPLY = 21


class FlowModCommand(enum.IntEnum):
    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4


class FlowModFlags(enum.IntFlag):
    NONE = 0
    SEND_FLOW_REM = 1 << 0
    CHECK_OVERLAP = 1 << 1
    RESET_COUNTS = 1 << 2
    NO_PKT_COUNTS = 1 << 3
    NO_BYT_COUNTS = 1 << 4


class Port(enum.IntEnum):
    """Reserved port numbers."""

    MAX = 0xFFFFFF00
    IN_PORT = 0xFFFFFFF8
    TABLE = 0xFFFFFFF9
    NORMAL = 0xFFFFFFFA
    FLOOD = 0xFFFFFFFB
    ALL = 0xFFFFFFFC
    CONTROLLER = 0xFFFFFFFD
    LOCAL = 0xFFFFFFFE
    ANY = 0xFFFFFFFF


class GroupId(enum.IntEnum):
    MAX = 0xFFFFFF00
    ALL = 0xFFFFFFFC
    ANY = 0xFFFFFFFF


class TableId(enum.IntEnum):
    MAX = 0xFE
    ALL = 0xFF


class PacketInReason(enum.IntEnum):
    NO_MATCH = 0
    ACTION = 1
    INVALID_TTL = 2


class FlowRemovedReason(enum.IntEnum):
    IDLE_TIMEOUT = 0
    HARD_TIMEOUT = 1
    DELETE = 2
    GROUP_DELETE = 3


class PortStatusReason(enum.IntEnum):
    ADD = 0
    DELETE = 1
    MODIFY = 2


class ErrorType(enum.IntEnum):
    HELLO_FAILED = 0
    BAD_REQUEST = 1
    BAD_ACTION = 2
    BAD_INSTRUCTION = 3
    BAD_MATCH = 4
    FLOW_MOD_FAILED = 5
    GROUP_MOD_FAILED = 6
    PORT_MOD_FAILED = 7
    TABLE_MOD_FAILED = 8
    QUEUE_OP_FAILED = 9
    SWITCH_CONFIG_FAILED = 10
    ROLE_REQUEST_FAILED = 11
    METER_MOD_FAILED = 12
    TABLE_FEATURES_FAILED = 13
    EXPERIMENTER = 0xFFFF


class FlowModFailedCode(enum.IntEnum):
    UNKNOWN = 0
    TABLE_FULL = 1
    BAD_TABLE_ID = 2
    OVERLAP = 3
    EPERM = 4
    BAD_TIMEOUT = 5
    BAD_COMMAND = 6
    BAD_FLAGS = 7


class MultipartType(enum.IntEnum):
    DESC = 0
    FLOW = 1
    AGGREGATE = 2
    TABLE = 3
    PORT_STATS = 4


class InstructionType(enum.IntEnum):
    GOTO_TABLE = 1
    WRITE_METADATA = 2
    WRITE_ACTIONS = 3
    APPLY_ACTIONS = 4
    CLEAR_ACTIONS = 5
    METER = 6


class ActionType(enum.IntEnum):
    OUTPUT = 0
    COPY_TTL_OUT = 11
    COPY_TTL_IN = 12
    PUSH_VLAN = 17
    POP_VLAN = 18
    SET_QUEUE = 21
    GROUP = 22
    SET_NW_TTL = 23
    DEC_NW_TTL = 24
    SET_FIELD = 25


#: OXM class for the OpenFlow basic match fields.
OXM_CLASS_OPENFLOW_BASIC = 0x8000


class OxmField(enum.IntEnum):
    """OXM match field ids (OFPXMT_OFB_*)."""

    IN_PORT = 0
    ETH_DST = 3
    ETH_SRC = 4
    ETH_TYPE = 5
    VLAN_VID = 6
    IP_PROTO = 10
    IPV4_SRC = 11
    IPV4_DST = 12
    TCP_SRC = 13
    TCP_DST = 14
    UDP_SRC = 15
    UDP_DST = 16


#: Payload length (bytes) of each supported OXM field.
OXM_LENGTHS: dict[OxmField, int] = {
    OxmField.IN_PORT: 4,
    OxmField.ETH_DST: 6,
    OxmField.ETH_SRC: 6,
    OxmField.ETH_TYPE: 2,
    OxmField.VLAN_VID: 2,
    OxmField.IP_PROTO: 1,
    OxmField.IPV4_SRC: 4,
    OxmField.IPV4_DST: 4,
    OxmField.TCP_SRC: 2,
    OxmField.TCP_DST: 2,
    OxmField.UDP_SRC: 2,
    OxmField.UDP_DST: 2,
}

#: Bit OR-ed into VLAN_VID OXM values to indicate "a tag is present".
OFPVID_PRESENT = 0x1000

# Common ethertypes / IP protocol numbers used by the simulator.
ETH_TYPE_IP = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100
IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17
