"""Multipart flow-statistics messages (OFPMP_FLOW subset).

Used by the REST layer's ``/stats/flow/<dpid>`` endpoint -- the same
interface Ryu's ofctl_rest exposes and the paper's app builds upon -- and
by tests to observe switch state without reaching into internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.openflow.actions import Instruction
from repro.openflow.constants import (
    GroupId,
    MsgType,
    MultipartType,
    Port,
    TableId,
)
from repro.openflow.match import Match
from repro.openflow.messages import OpenFlowMessage


@dataclass
class FlowStatsRequest(OpenFlowMessage):
    """Ask a switch for the flow entries matching the filter."""

    table_id: int = int(TableId.ALL)
    out_port: int = int(Port.ANY)
    out_group: int = int(GroupId.ANY)
    cookie: int = 0
    cookie_mask: int = 0
    match: Match = field(default_factory=Match)

    msg_type: ClassVar[MsgType] = MsgType.MULTIPART_REQUEST
    multipart_type: ClassVar[MultipartType] = MultipartType.FLOW


@dataclass
class FlowStatsEntry:
    """One flow entry's statistics snapshot."""

    table_id: int = 0
    duration_sec: int = 0
    duration_nsec: int = 0
    priority: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    flags: int = 0
    cookie: int = 0
    packet_count: int = 0
    byte_count: int = 0
    match: Match = field(default_factory=Match)
    instructions: tuple[Instruction, ...] = ()

    def to_ofctl(self) -> dict[str, Any]:
        return {
            "table_id": self.table_id,
            "duration_sec": self.duration_sec,
            "priority": self.priority,
            "idle_timeout": self.idle_timeout,
            "hard_timeout": self.hard_timeout,
            "cookie": self.cookie,
            "packet_count": self.packet_count,
            "byte_count": self.byte_count,
            "match": self.match.to_ofctl(),
            "instructions": [ins.to_dict() for ins in self.instructions],
        }


@dataclass
class FlowStatsReply(OpenFlowMessage):
    """The switch's answer: a list of entry snapshots."""

    entries: tuple[FlowStatsEntry, ...] = ()

    msg_type: ClassVar[MsgType] = MsgType.MULTIPART_REPLY
    multipart_type: ClassVar[MultipartType] = MultipartType.FLOW

    def to_ofctl(self, dpid: int) -> dict[str, Any]:
        return {str(dpid): [entry.to_ofctl() for entry in self.entries]}
