"""Binary wire codec for the OpenFlow 1.3 message subset.

``encode(message)`` produces a spec-conformant frame (8-byte header +
struct-packed body, OXM TLV match with 8-byte padding, TLV instructions and
actions); ``decode(data)`` parses one frame back into the message classes.
``decode_stream`` splits a byte stream into frames the way an OpenFlow
agent reads its TCP socket.

Fidelity is per-field for the implemented subset: round-tripping any
supported message is the identity (property-tested), and FLOW_MOD /
BARRIER frames match the layout in the OpenFlow 1.3.5 specification.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import WireFormatError
from repro.openflow.actions import (
    Action,
    ApplyActions,
    ClearActions,
    GotoTable,
    GroupAction,
    Instruction,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
    WriteActions,
)
from repro.openflow.constants import (
    OFP_HEADER_LEN,
    OFP_VERSION,
    ActionType,
    InstructionType,
    MsgType,
    MultipartType,
)
from repro.openflow.flowmod import FlowMod
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowRemoved,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
)
from repro.openflow.stats import FlowStatsEntry, FlowStatsReply, FlowStatsRequest


def _pad_to(length: int, boundary: int = 8) -> int:
    """Bytes of padding needed to reach the next multiple of ``boundary``."""
    return (-length) % boundary


# ---------------------------------------------------------------------------
# match encoding (ofp_match wraps the OXM TLVs)
# ---------------------------------------------------------------------------

def encode_match(match: Match) -> bytes:
    """``ofp_match``: type=1 (OXM), length, fields, pad to 8."""
    oxm = match.to_oxm_bytes()
    length = 4 + len(oxm)  # type + length fields count toward length
    return struct.pack("!HH", 1, length) + oxm + b"\x00" * _pad_to(length)


def decode_match(data: bytes, offset: int) -> tuple[Match, int]:
    """Decode an ``ofp_match`` at ``offset``; returns (match, next_offset)."""
    if offset + 4 > len(data):
        raise WireFormatError("truncated ofp_match header")
    match_type, length = struct.unpack_from("!HH", data, offset)
    if match_type != 1:
        raise WireFormatError(f"unsupported match type {match_type}")
    end = offset + length
    if end > len(data):
        raise WireFormatError("truncated ofp_match body")
    match = Match.from_oxm_bytes(data[offset + 4 : end])
    return match, end + _pad_to(length)


# ---------------------------------------------------------------------------
# action encoding
# ---------------------------------------------------------------------------

def encode_action(action: Action) -> bytes:
    if isinstance(action, OutputAction):
        return struct.pack(
            "!HHIH6x", ActionType.OUTPUT, 16, action.port, action.max_len
        )
    if isinstance(action, PushVlanAction):
        return struct.pack("!HHH2x", ActionType.PUSH_VLAN, 8, action.ethertype)
    if isinstance(action, PopVlanAction):
        return struct.pack("!HH4x", ActionType.POP_VLAN, 8)
    if isinstance(action, GroupAction):
        return struct.pack("!HHI", ActionType.GROUP, 8, action.group_id)
    if isinstance(action, SetFieldAction):
        # Encode the single field as an OXM TLV inside the action.
        oxm = Match(**{action.field_name: action.value}).to_oxm_bytes()
        length = 4 + len(oxm)
        padded = length + _pad_to(length)
        return (
            struct.pack("!HH", ActionType.SET_FIELD, padded)
            + oxm
            + b"\x00" * _pad_to(length)
        )
    raise WireFormatError(f"cannot encode action {action!r}")


def decode_action(data: bytes, offset: int) -> tuple[Action, int]:
    if offset + 4 > len(data):
        raise WireFormatError("truncated action header")
    action_type, length = struct.unpack_from("!HH", data, offset)
    if length < 8 or offset + length > len(data):
        raise WireFormatError(f"bad action length {length}")
    body = data[offset + 4 : offset + length]
    next_offset = offset + length
    if action_type == ActionType.OUTPUT:
        port, max_len = struct.unpack_from("!IH", body, 0)
        return OutputAction(port=port, max_len=max_len), next_offset
    if action_type == ActionType.PUSH_VLAN:
        (ethertype,) = struct.unpack_from("!H", body, 0)
        return PushVlanAction(ethertype=ethertype), next_offset
    if action_type == ActionType.POP_VLAN:
        return PopVlanAction(), next_offset
    if action_type == ActionType.GROUP:
        (group_id,) = struct.unpack_from("!I", body, 0)
        return GroupAction(group_id=group_id), next_offset
    if action_type == ActionType.SET_FIELD:
        match = Match.from_oxm_bytes(_strip_oxm_padding(body))
        set_fields = match.set_fields()
        if len(set_fields) != 1:
            raise WireFormatError("SET_FIELD action must carry exactly one OXM")
        ((name, value),) = set_fields.items()
        return SetFieldAction(field_name=name, value=value), next_offset
    raise WireFormatError(f"unsupported action type {action_type}")


def _strip_oxm_padding(body: bytes) -> bytes:
    """Drop trailing zero padding after a single OXM TLV."""
    if len(body) < 4:
        raise WireFormatError("truncated OXM in SET_FIELD")
    oxm_len = 4 + body[3]
    return body[:oxm_len]


def encode_actions(actions: tuple[Action, ...]) -> bytes:
    return b"".join(encode_action(action) for action in actions)


def decode_actions(data: bytes, offset: int, end: int) -> tuple[tuple[Action, ...], int]:
    actions: list[Action] = []
    while offset < end:
        action, offset = decode_action(data, offset)
        actions.append(action)
    return tuple(actions), offset


# ---------------------------------------------------------------------------
# instruction encoding
# ---------------------------------------------------------------------------

def encode_instruction(instruction: Instruction) -> bytes:
    if isinstance(instruction, (ApplyActions, WriteActions)):
        body = encode_actions(instruction.actions)
        itype = (
            InstructionType.APPLY_ACTIONS
            if isinstance(instruction, ApplyActions)
            else InstructionType.WRITE_ACTIONS
        )
        return struct.pack("!HH4x", itype, 8 + len(body)) + body
    if isinstance(instruction, ClearActions):
        return struct.pack("!HH4x", InstructionType.CLEAR_ACTIONS, 8)
    if isinstance(instruction, GotoTable):
        return struct.pack("!HHB3x", InstructionType.GOTO_TABLE, 8, instruction.table_id)
    raise WireFormatError(f"cannot encode instruction {instruction!r}")


def decode_instruction(data: bytes, offset: int) -> tuple[Instruction, int]:
    if offset + 4 > len(data):
        raise WireFormatError("truncated instruction header")
    itype, length = struct.unpack_from("!HH", data, offset)
    if length < 8 or offset + length > len(data):
        raise WireFormatError(f"bad instruction length {length}")
    end = offset + length
    if itype in (InstructionType.APPLY_ACTIONS, InstructionType.WRITE_ACTIONS):
        actions, _ = decode_actions(data, offset + 8, end)
        cls = ApplyActions if itype == InstructionType.APPLY_ACTIONS else WriteActions
        return cls(actions), end
    if itype == InstructionType.CLEAR_ACTIONS:
        return ClearActions(), end
    if itype == InstructionType.GOTO_TABLE:
        table_id = data[offset + 4]
        return GotoTable(table_id=table_id), end
    raise WireFormatError(f"unsupported instruction type {itype}")


def encode_instructions(instructions: tuple[Instruction, ...]) -> bytes:
    return b"".join(encode_instruction(ins) for ins in instructions)


def decode_instructions(
    data: bytes, offset: int, end: int
) -> tuple[tuple[Instruction, ...], int]:
    instructions: list[Instruction] = []
    while offset < end:
        instruction, offset = decode_instruction(data, offset)
        instructions.append(instruction)
    return tuple(instructions), offset


# ---------------------------------------------------------------------------
# message bodies
# ---------------------------------------------------------------------------

def _encode_body(message: OpenFlowMessage) -> bytes:
    if isinstance(message, (Hello, FeaturesRequest, BarrierRequest, BarrierReply)):
        return b""
    if isinstance(message, (EchoRequest, EchoReply)):
        return message.data
    if isinstance(message, ErrorMsg):
        return struct.pack("!HH", message.err_type, message.err_code) + message.data
    if isinstance(message, FeaturesReply):
        return struct.pack(
            "!QIBB2xII",
            message.datapath_id,
            message.n_buffers,
            message.n_tables,
            message.auxiliary_id,
            message.capabilities,
            0,
        )
    if isinstance(message, FlowMod):
        head = struct.pack(
            "!QQBBHHHIIIH2x",
            message.cookie,
            message.cookie_mask,
            message.table_id,
            int(message.command),
            message.idle_timeout,
            message.hard_timeout,
            message.priority,
            message.buffer_id,
            message.out_port,
            message.out_group,
            message.flags,
        )
        return head + encode_match(message.match) + encode_instructions(
            message.instructions
        )
    if isinstance(message, PacketIn):
        head = struct.pack(
            "!IHBBQ",
            message.buffer_id,
            message.total_len or len(message.data),
            message.reason,
            message.table_id,
            message.cookie,
        )
        return head + encode_match(message.match) + b"\x00\x00" + message.data
    if isinstance(message, PacketOut):
        actions = encode_actions(message.actions)
        head = struct.pack(
            "!IIH6x", message.buffer_id, message.in_port, len(actions)
        )
        return head + actions + message.data
    if isinstance(message, FlowRemoved):
        head = struct.pack(
            "!QHBBIIHHQQ",
            message.cookie,
            message.priority,
            message.reason,
            message.table_id,
            message.duration_sec,
            message.duration_nsec,
            message.idle_timeout,
            message.hard_timeout,
            message.packet_count,
            message.byte_count,
        )
        return head + encode_match(message.match)
    if isinstance(message, FlowStatsRequest):
        body = struct.pack(
            "!B3xII4xQQ",
            message.table_id,
            message.out_port,
            message.out_group,
            message.cookie,
            message.cookie_mask,
        ) + encode_match(message.match)
        return struct.pack("!HH4x", MultipartType.FLOW, 0) + body
    if isinstance(message, FlowStatsReply):
        entries = b"".join(_encode_stats_entry(entry) for entry in message.entries)
        return struct.pack("!HH4x", MultipartType.FLOW, 0) + entries
    raise WireFormatError(f"cannot encode message {message!r}")


def _encode_stats_entry(entry: FlowStatsEntry) -> bytes:
    match_part = encode_match(entry.match)
    instr_part = encode_instructions(entry.instructions)
    length = 48 + len(match_part) + len(instr_part)
    head = struct.pack(
        "!HBxIIHHHH4xQQQ",
        length,
        entry.table_id,
        entry.duration_sec,
        entry.duration_nsec,
        entry.priority,
        entry.idle_timeout,
        entry.hard_timeout,
        entry.flags,
        entry.cookie,
        entry.packet_count,
        entry.byte_count,
    )
    return head + match_part + instr_part


def _decode_stats_entry(data: bytes, offset: int) -> tuple[FlowStatsEntry, int]:
    (
        length,
        table_id,
        duration_sec,
        duration_nsec,
        priority,
        idle_timeout,
        hard_timeout,
        flags,
        cookie,
        packet_count,
        byte_count,
    ) = struct.unpack_from("!HBxIIHHHH4xQQQ", data, offset)
    end = offset + length
    match, cursor = decode_match(data, offset + 48)
    instructions, _ = decode_instructions(data, cursor, end)
    entry = FlowStatsEntry(
        table_id=table_id,
        duration_sec=duration_sec,
        duration_nsec=duration_nsec,
        priority=priority,
        idle_timeout=idle_timeout,
        hard_timeout=hard_timeout,
        flags=flags,
        cookie=cookie,
        packet_count=packet_count,
        byte_count=byte_count,
        match=match,
        instructions=instructions,
    )
    return entry, end


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def encode(message: OpenFlowMessage) -> bytes:
    """Serialize ``message`` into one OpenFlow 1.3 frame."""
    body = _encode_body(message)
    length = OFP_HEADER_LEN + len(body)
    if length > 0xFFFF:
        raise WireFormatError(f"message too long for the length field: {length}")
    header = struct.pack(
        "!BBHI", OFP_VERSION, int(message.msg_type), length, message.xid
    )
    return header + body


def decode(data: bytes) -> OpenFlowMessage:
    """Parse exactly one OpenFlow 1.3 frame."""
    if len(data) < OFP_HEADER_LEN:
        raise WireFormatError(f"frame shorter than a header: {len(data)} bytes")
    version, msg_type_raw, length, xid = struct.unpack_from("!BBHI", data, 0)
    if version != OFP_VERSION:
        raise WireFormatError(f"unsupported OpenFlow version 0x{version:02x}")
    if length != len(data):
        raise WireFormatError(f"length field {length} != frame size {len(data)}")
    try:
        msg_type = MsgType(msg_type_raw)
    except ValueError:
        raise WireFormatError(f"unknown message type {msg_type_raw}") from None
    body = data[OFP_HEADER_LEN:]
    message = _decode_body(msg_type, body)
    message.xid = xid
    return message


def _decode_body(msg_type: MsgType, body: bytes) -> OpenFlowMessage:
    if msg_type == MsgType.HELLO:
        return Hello()
    if msg_type == MsgType.ECHO_REQUEST:
        return EchoRequest(data=body)
    if msg_type == MsgType.ECHO_REPLY:
        return EchoReply(data=body)
    if msg_type == MsgType.FEATURES_REQUEST:
        return FeaturesRequest()
    if msg_type == MsgType.BARRIER_REQUEST:
        return BarrierRequest()
    if msg_type == MsgType.BARRIER_REPLY:
        return BarrierReply()
    if msg_type == MsgType.ERROR:
        err_type, err_code = struct.unpack_from("!HH", body, 0)
        return ErrorMsg(err_type=err_type, err_code=err_code, data=body[4:])
    if msg_type == MsgType.FEATURES_REPLY:
        dpid, n_buffers, n_tables, aux, caps, _reserved = struct.unpack_from(
            "!QIBB2xII", body, 0
        )
        return FeaturesReply(
            datapath_id=dpid,
            n_buffers=n_buffers,
            n_tables=n_tables,
            auxiliary_id=aux,
            capabilities=caps,
        )
    if msg_type == MsgType.FLOW_MOD:
        (
            cookie,
            cookie_mask,
            table_id,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            out_group,
            flags,
        ) = struct.unpack_from("!QQBBHHHIIIH2x", body, 0)
        match, cursor = decode_match(body, 40)
        instructions, _ = decode_instructions(body, cursor, len(body))
        return FlowMod(
            cookie=cookie,
            cookie_mask=cookie_mask,
            table_id=table_id,
            command=command,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            priority=priority,
            buffer_id=buffer_id,
            out_port=out_port,
            out_group=out_group,
            flags=flags,
            match=match,
            instructions=instructions,
        )
    if msg_type == MsgType.PACKET_IN:
        buffer_id, total_len, reason, table_id, cookie = struct.unpack_from(
            "!IHBBQ", body, 0
        )
        match, cursor = decode_match(body, 16)
        data = body[cursor + 2 :]
        return PacketIn(
            buffer_id=buffer_id,
            total_len=total_len,
            reason=reason,
            table_id=table_id,
            cookie=cookie,
            match=match,
            data=data,
        )
    if msg_type == MsgType.PACKET_OUT:
        buffer_id, in_port, actions_len = struct.unpack_from("!IIH6x", body, 0)
        actions, cursor = decode_actions(body, 16, 16 + actions_len)
        return PacketOut(
            buffer_id=buffer_id,
            in_port=in_port,
            actions=actions,
            data=body[cursor:],
        )
    if msg_type == MsgType.FLOW_REMOVED:
        (
            cookie,
            priority,
            reason,
            table_id,
            duration_sec,
            duration_nsec,
            idle_timeout,
            hard_timeout,
            packet_count,
            byte_count,
        ) = struct.unpack_from("!QHBBIIHHQQ", body, 0)
        match, _ = decode_match(body, 40)
        return FlowRemoved(
            cookie=cookie,
            priority=priority,
            reason=reason,
            table_id=table_id,
            duration_sec=duration_sec,
            duration_nsec=duration_nsec,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            packet_count=packet_count,
            byte_count=byte_count,
            match=match,
        )
    if msg_type == MsgType.MULTIPART_REQUEST:
        mp_type, _flags = struct.unpack_from("!HH4x", body, 0)
        if mp_type != MultipartType.FLOW:
            raise WireFormatError(f"unsupported multipart request type {mp_type}")
        table_id, out_port, out_group, cookie, cookie_mask = struct.unpack_from(
            "!B3xII4xQQ", body, 8
        )
        match, _ = decode_match(body, 8 + 32)
        return FlowStatsRequest(
            table_id=table_id,
            out_port=out_port,
            out_group=out_group,
            cookie=cookie,
            cookie_mask=cookie_mask,
            match=match,
        )
    if msg_type == MsgType.MULTIPART_REPLY:
        mp_type, _flags = struct.unpack_from("!HH4x", body, 0)
        if mp_type != MultipartType.FLOW:
            raise WireFormatError(f"unsupported multipart reply type {mp_type}")
        entries: list[FlowStatsEntry] = []
        offset = 8
        while offset < len(body):
            entry, offset = _decode_stats_entry(body, offset)
            entries.append(entry)
        return FlowStatsReply(entries=tuple(entries))
    raise WireFormatError(f"no decoder for message type {msg_type.name}")


def decode_stream(data: bytes) -> Iterator[OpenFlowMessage]:
    """Split a byte stream into frames and decode each one."""
    offset = 0
    while offset < len(data):
        if offset + OFP_HEADER_LEN > len(data):
            raise WireFormatError("trailing bytes shorter than a header")
        (length,) = struct.unpack_from("!H", data, offset + 2)
        if length < OFP_HEADER_LEN or offset + length > len(data):
            raise WireFormatError(f"bad frame length {length} at offset {offset}")
        yield decode(data[offset : offset + length])
        offset += length
