"""OpenFlow match structure with OXM TLV encoding.

A :class:`Match` holds the subset of OXM basic fields the prototype needs
(port, Ethernet, VLAN, IPv4, TCP/UDP).  It can

* test a packet's header fields (:meth:`Match.matches`),
* encode itself to spec-conformant OXM TLV bytes and back,
* convert to/from the ofctl-style JSON dicts used in the paper's REST body.

IPv4 fields accept ``"10.0.0.1"`` or ``"10.0.0.0/24"``; masked matching is
supported for the IPv4 fields only (enough for destination-based policies).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Iterator, Mapping

from repro.errors import OpenFlowError
from repro.openflow.constants import (
    OFPVID_PRESENT,
    OXM_CLASS_OPENFLOW_BASIC,
    OXM_LENGTHS,
    OxmField,
)

# ---------------------------------------------------------------------------
# value helpers
# ---------------------------------------------------------------------------

def ip_to_int(address: str) -> int:
    """``"10.0.0.1"`` -> 0x0a000001 (with validation)."""
    parts = address.split(".")
    if len(parts) != 4:
        raise OpenFlowError(f"bad IPv4 address {address!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise OpenFlowError(f"bad IPv4 address {address!r}") from None
        if not 0 <= octet <= 255:
            raise OpenFlowError(f"bad IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Inverse of :func:`ip_to_int`."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise OpenFlowError(f"IPv4 int out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv4_prefix(spec: str) -> tuple[int, int]:
    """``"10.0.0.0/24"`` -> (address_int, mask_int); bare IPs get /32."""
    if "/" in spec:
        address, prefix_str = spec.split("/", 1)
        try:
            prefix = int(prefix_str)
        except ValueError:
            raise OpenFlowError(f"bad prefix length in {spec!r}") from None
        if not 0 <= prefix <= 32:
            raise OpenFlowError(f"bad prefix length in {spec!r}")
    else:
        address, prefix = spec, 32
    mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
    return ip_to_int(address) & mask, mask


def format_ipv4_prefix(address: int, mask: int) -> str:
    """Inverse of :func:`parse_ipv4_prefix` (contiguous masks only)."""
    if mask == 0xFFFFFFFF:
        return int_to_ip(address)
    prefix = bin(mask).count("1")
    expected = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
    if expected != mask:
        raise OpenFlowError(f"non-contiguous IPv4 mask 0x{mask:08x}")
    return f"{int_to_ip(address)}/{prefix}"


def mac_to_bytes(mac: str) -> bytes:
    """``"aa:bb:cc:dd:ee:ff"`` -> 6 bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise OpenFlowError(f"bad MAC address {mac!r}")
    try:
        return bytes(int(part, 16) for part in parts)
    except ValueError:
        raise OpenFlowError(f"bad MAC address {mac!r}") from None


def bytes_to_mac(data: bytes) -> str:
    if len(data) != 6:
        raise OpenFlowError(f"MAC must be 6 bytes, got {len(data)}")
    return ":".join(f"{byte:02x}" for byte in data)


# ---------------------------------------------------------------------------
# the Match itself
# ---------------------------------------------------------------------------

#: Match attribute -> its OXM field id.
_FIELD_BY_NAME: dict[str, OxmField] = {
    "in_port": OxmField.IN_PORT,
    "eth_dst": OxmField.ETH_DST,
    "eth_src": OxmField.ETH_SRC,
    "eth_type": OxmField.ETH_TYPE,
    "vlan_vid": OxmField.VLAN_VID,
    "ip_proto": OxmField.IP_PROTO,
    "ipv4_src": OxmField.IPV4_SRC,
    "ipv4_dst": OxmField.IPV4_DST,
    "tcp_src": OxmField.TCP_SRC,
    "tcp_dst": OxmField.TCP_DST,
    "udp_src": OxmField.UDP_SRC,
    "udp_dst": OxmField.UDP_DST,
}
_NAME_BY_FIELD = {field: name for name, field in _FIELD_BY_NAME.items()}

#: Fields that may carry a mask in this implementation.
_MASKABLE = {OxmField.IPV4_SRC, OxmField.IPV4_DST}


@dataclass(frozen=True)
class Match:
    """A set of header-field constraints; unset fields are wildcards.

    >>> m = Match(eth_type=0x0800, ipv4_dst="10.0.0.0/24")
    >>> m.matches({"eth_type": 0x0800, "ipv4_dst": "10.0.0.7"})
    True
    >>> m.matches({"eth_type": 0x0806})
    False
    """

    in_port: int | None = None
    eth_dst: str | None = None
    eth_src: str | None = None
    eth_type: int | None = None
    vlan_vid: int | None = None
    ip_proto: int | None = None
    ipv4_src: str | None = None
    ipv4_dst: str | None = None
    tcp_src: int | None = None
    tcp_dst: int | None = None
    udp_src: int | None = None
    udp_dst: int | None = None

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def set_fields(self) -> dict[str, Any]:
        """The non-wildcard constraints as a name->value dict."""
        result = {}
        for field_info in dataclass_fields(self):
            value = getattr(self, field_info.name)
            if value is not None:
                result[field_info.name] = value
        return result

    def is_wildcard(self) -> bool:
        return not self.set_fields()

    def specificity(self) -> int:
        """How many fields are constrained (tie-breaker in tests/reports)."""
        return len(self.set_fields())

    def replace(self, **changes: Any) -> "Match":
        """A copy with some fields changed (None clears a field)."""
        current = {f.name: getattr(self, f.name) for f in dataclass_fields(self)}
        current.update(changes)
        return Match(**current)

    # ------------------------------------------------------------------
    # packet matching
    # ------------------------------------------------------------------
    def matches(self, packet_fields: Mapping[str, Any]) -> bool:
        """Do a packet's header fields satisfy every constraint?"""
        for name, wanted in self.set_fields().items():
            actual = packet_fields.get(name)
            if name in ("ipv4_src", "ipv4_dst"):
                if actual is None:
                    return False
                want_addr, want_mask = parse_ipv4_prefix(str(wanted))
                if ip_to_int(str(actual)) & want_mask != want_addr:
                    return False
            elif actual != wanted:
                return False
        return True

    def subsumes(self, other: "Match") -> bool:
        """True when every packet matching ``other`` also matches ``self``.

        Used for OFPFC_DELETE (non-strict) semantics: a delete with match M
        removes entries whose match is *at least as specific* as M.
        """
        for name, wanted in self.set_fields().items():
            other_value = getattr(other, name)
            if other_value is None:
                return False
            if name in ("ipv4_src", "ipv4_dst"):
                want_addr, want_mask = parse_ipv4_prefix(str(wanted))
                other_addr, other_mask = parse_ipv4_prefix(str(other_value))
                if other_mask & want_mask != want_mask:
                    return False
                if other_addr & want_mask != want_addr:
                    return False
            elif other_value != wanted:
                return False
        return True

    # ------------------------------------------------------------------
    # OXM binary encoding
    # ------------------------------------------------------------------
    def to_oxm_bytes(self) -> bytes:
        """Encode the constraints as a sequence of OXM TLVs."""
        out = bytearray()
        for name in _FIELD_BY_NAME:  # deterministic spec-ish ordering
            value = getattr(self, name)
            if value is None:
                continue
            field = _FIELD_BY_NAME[name]
            payload, mask = _encode_oxm_value(field, value)
            has_mask = mask is not None
            length = len(payload) * (2 if has_mask else 1)
            out += struct.pack(
                "!HBB",
                OXM_CLASS_OPENFLOW_BASIC,
                (field << 1) | (1 if has_mask else 0),
                length,
            )
            out += payload
            if has_mask:
                out += mask
        return bytes(out)

    @classmethod
    def from_oxm_bytes(cls, data: bytes) -> "Match":
        """Decode a sequence of OXM TLVs."""
        offset = 0
        values: dict[str, Any] = {}
        while offset < len(data):
            if offset + 4 > len(data):
                raise OpenFlowError("truncated OXM TLV header")
            oxm_class, field_hm, length = struct.unpack_from("!HBB", data, offset)
            offset += 4
            if oxm_class != OXM_CLASS_OPENFLOW_BASIC:
                raise OpenFlowError(f"unsupported OXM class 0x{oxm_class:04x}")
            has_mask = bool(field_hm & 1)
            try:
                field = OxmField(field_hm >> 1)
            except ValueError:
                raise OpenFlowError(f"unsupported OXM field {field_hm >> 1}") from None
            payload_len = OXM_LENGTHS[field]
            expected = payload_len * (2 if has_mask else 1)
            if length != expected:
                raise OpenFlowError(
                    f"OXM field {field.name} length {length} != {expected}"
                )
            if offset + length > len(data):
                raise OpenFlowError("truncated OXM TLV payload")
            payload = data[offset : offset + payload_len]
            mask = (
                data[offset + payload_len : offset + 2 * payload_len]
                if has_mask
                else None
            )
            offset += length
            name = _NAME_BY_FIELD[field]
            values[name] = _decode_oxm_value(field, payload, mask)
        return cls(**values)

    # ------------------------------------------------------------------
    # ofctl-style dicts (the REST body format)
    # ------------------------------------------------------------------
    def to_ofctl(self) -> dict[str, Any]:
        """Field dict as Ryu's ofctl_rest reports it."""
        return dict(self.set_fields())

    @classmethod
    def from_ofctl(cls, data: Mapping[str, Any]) -> "Match":
        """Parse an ofctl-style match dict (unknown keys are rejected)."""
        values: dict[str, Any] = {}
        aliases = {"nw_src": "ipv4_src", "nw_dst": "ipv4_dst", "dl_type": "eth_type",
                   "dl_src": "eth_src", "dl_dst": "eth_dst", "nw_proto": "ip_proto",
                   "tp_src": "tcp_src", "tp_dst": "tcp_dst", "dl_vlan": "vlan_vid"}
        for key, value in data.items():
            name = aliases.get(key, key)
            if name not in _FIELD_BY_NAME:
                raise OpenFlowError(f"unknown match field {key!r}")
            values[name] = value
        return cls(**values)


def _encode_oxm_value(field: OxmField, value: Any) -> tuple[bytes, bytes | None]:
    """Encode one field value; returns ``(payload, mask_or_None)``."""
    if field in (OxmField.ETH_DST, OxmField.ETH_SRC):
        return mac_to_bytes(str(value)), None
    if field in (OxmField.IPV4_SRC, OxmField.IPV4_DST):
        address, mask = parse_ipv4_prefix(str(value))
        if mask == 0xFFFFFFFF:
            return struct.pack("!I", address), None
        return struct.pack("!I", address), struct.pack("!I", mask)
    if field is OxmField.VLAN_VID:
        return struct.pack("!H", int(value) | OFPVID_PRESENT), None
    if field is OxmField.IN_PORT:
        return struct.pack("!I", int(value)), None
    if field is OxmField.IP_PROTO:
        return struct.pack("!B", int(value)), None
    # remaining 2-byte fields: eth_type, l4 ports
    return struct.pack("!H", int(value)), None


def _decode_oxm_value(field: OxmField, payload: bytes, mask: bytes | None) -> Any:
    if mask is not None and field not in _MASKABLE:
        raise OpenFlowError(f"mask not supported for {field.name}")
    if field in (OxmField.ETH_DST, OxmField.ETH_SRC):
        return bytes_to_mac(payload)
    if field in (OxmField.IPV4_SRC, OxmField.IPV4_DST):
        (address,) = struct.unpack("!I", payload)
        mask_int = struct.unpack("!I", mask)[0] if mask is not None else 0xFFFFFFFF
        return format_ipv4_prefix(address, mask_int)
    if field is OxmField.VLAN_VID:
        (raw,) = struct.unpack("!H", payload)
        return raw & ~OFPVID_PRESENT
    if field is OxmField.IN_PORT:
        return struct.unpack("!I", payload)[0]
    if field is OxmField.IP_PROTO:
        return payload[0]
    return struct.unpack("!H", payload)[0]


def iter_supported_fields() -> Iterator[str]:
    """Names of all match fields this implementation supports."""
    return iter(_FIELD_BY_NAME)
