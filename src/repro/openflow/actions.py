"""OpenFlow actions and instructions (the subset the prototype uses).

Actions are what a flow entry *does* to a packet (output it, rewrite a
field, push/pop a VLAN tag); instructions are the per-table containers
around them.  The two-phase-commit baseline leans on PUSH_VLAN/SET_FIELD/
POP_VLAN for version tagging, so those are first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import OpenFlowError
from repro.openflow.constants import (
    ETH_TYPE_VLAN,
    ActionType,
    InstructionType,
    Port,
)
from repro.openflow.match import iter_supported_fields


class Action:
    """Base class for actions."""

    action_type: ActionType

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class OutputAction(Action):
    """Forward the packet out of ``port`` (possibly a reserved port)."""

    port: int
    max_len: int = 0xFFE5  # OFPCML_MAX, what Ryu sends by default

    action_type = ActionType.OUTPUT

    def to_dict(self) -> dict[str, Any]:
        port = self.port
        name = Port(port).name if port in set(Port) else port
        return {"type": "OUTPUT", "port": name if isinstance(name, str) else port}


@dataclass(frozen=True)
class SetFieldAction(Action):
    """Rewrite one header field (field names as in :class:`Match`)."""

    field_name: str
    value: Any

    action_type = ActionType.SET_FIELD

    def __post_init__(self) -> None:
        if self.field_name not in set(iter_supported_fields()):
            raise OpenFlowError(f"cannot set unsupported field {self.field_name!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"type": "SET_FIELD", "field": self.field_name, "value": self.value}


@dataclass(frozen=True)
class PushVlanAction(Action):
    """Push an 802.1Q tag (the VID is set by a following SET_FIELD)."""

    ethertype: int = ETH_TYPE_VLAN

    action_type = ActionType.PUSH_VLAN

    def to_dict(self) -> dict[str, Any]:
        return {"type": "PUSH_VLAN", "ethertype": self.ethertype}


@dataclass(frozen=True)
class PopVlanAction(Action):
    """Remove the outermost 802.1Q tag."""

    action_type = ActionType.POP_VLAN

    def to_dict(self) -> dict[str, Any]:
        return {"type": "POP_VLAN"}


@dataclass(frozen=True)
class GroupAction(Action):
    """Hand the packet to a group (modelled but not expanded further)."""

    group_id: int

    action_type = ActionType.GROUP

    def to_dict(self) -> dict[str, Any]:
        return {"type": "GROUP", "group_id": self.group_id}


def action_from_dict(data: Mapping[str, Any]) -> Action:
    """Parse an ofctl-style action dict."""
    kind = str(data.get("type", "")).upper()
    if kind == "OUTPUT":
        port = data.get("port")
        if isinstance(port, str):
            try:
                port = int(port)
            except ValueError:
                try:
                    port = int(Port[port.upper()])
                except KeyError:
                    raise OpenFlowError(f"bad output port {data['port']!r}") from None
        if port is None:
            raise OpenFlowError("OUTPUT action without port")
        return OutputAction(port=int(port))
    if kind == "SET_FIELD":
        if "field" not in data or "value" not in data:
            raise OpenFlowError("SET_FIELD action needs 'field' and 'value'")
        return SetFieldAction(field_name=data["field"], value=data["value"])
    if kind == "PUSH_VLAN":
        return PushVlanAction(ethertype=int(data.get("ethertype", ETH_TYPE_VLAN)))
    if kind == "POP_VLAN":
        return PopVlanAction()
    if kind == "GROUP":
        return GroupAction(group_id=int(data["group_id"]))
    raise OpenFlowError(f"unsupported action type {data.get('type')!r}")


# ---------------------------------------------------------------------------
# instructions
# ---------------------------------------------------------------------------

class Instruction:
    """Base class for instructions."""

    instruction_type: InstructionType

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class ApplyActions(Instruction):
    """Apply ``actions`` immediately, in order."""

    actions: tuple[Action, ...] = field(default_factory=tuple)

    instruction_type = InstructionType.APPLY_ACTIONS

    def __init__(self, actions: Sequence[Action] = ()) -> None:
        object.__setattr__(self, "actions", tuple(actions))

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "APPLY_ACTIONS",
            "actions": [action.to_dict() for action in self.actions],
        }


@dataclass(frozen=True)
class WriteActions(Instruction):
    """Write ``actions`` into the action set (applied at pipeline end)."""

    actions: tuple[Action, ...] = field(default_factory=tuple)

    instruction_type = InstructionType.WRITE_ACTIONS

    def __init__(self, actions: Sequence[Action] = ()) -> None:
        object.__setattr__(self, "actions", tuple(actions))

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "WRITE_ACTIONS",
            "actions": [action.to_dict() for action in self.actions],
        }


@dataclass(frozen=True)
class ClearActions(Instruction):
    """Clear the pipeline action set."""

    instruction_type = InstructionType.CLEAR_ACTIONS

    def to_dict(self) -> dict[str, Any]:
        return {"type": "CLEAR_ACTIONS"}


@dataclass(frozen=True)
class GotoTable(Instruction):
    """Continue matching in a later table."""

    table_id: int

    instruction_type = InstructionType.GOTO_TABLE

    def __post_init__(self) -> None:
        if not 0 <= self.table_id <= 0xFE:
            raise OpenFlowError(f"bad goto table id {self.table_id}")

    def to_dict(self) -> dict[str, Any]:
        return {"type": "GOTO_TABLE", "table_id": self.table_id}


def instruction_from_dict(data: Mapping[str, Any]) -> Instruction:
    """Parse an ofctl-style instruction dict."""
    kind = str(data.get("type", "")).upper()
    if kind == "APPLY_ACTIONS":
        return ApplyActions([action_from_dict(a) for a in data.get("actions", [])])
    if kind == "WRITE_ACTIONS":
        return WriteActions([action_from_dict(a) for a in data.get("actions", [])])
    if kind == "CLEAR_ACTIONS":
        return ClearActions()
    if kind == "GOTO_TABLE":
        return GotoTable(table_id=int(data["table_id"]))
    raise OpenFlowError(f"unsupported instruction type {data.get('type')!r}")


def output_instructions(port: int) -> tuple[Instruction, ...]:
    """The ubiquitous single-instruction "send out of port" shorthand."""
    return (ApplyActions([OutputAction(port=port)]),)
