"""JSON-dict codec for OpenFlow messages (trace export / REST bodies).

Binary framing is :mod:`repro.openflow.wire`; this module provides the
human-readable form used by the REST layer, scenario traces and the CLI.
Only the message types that travel through those layers are covered.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import OpenFlowError
from repro.openflow.constants import FlowModCommand, MsgType
from repro.openflow.flowmod import FlowMod
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    Hello,
    OpenFlowMessage,
)

_SIMPLE_TYPES: dict[MsgType, type[OpenFlowMessage]] = {
    MsgType.HELLO: Hello,
    MsgType.FEATURES_REQUEST: FeaturesRequest,
    MsgType.BARRIER_REQUEST: BarrierRequest,
    MsgType.BARRIER_REPLY: BarrierReply,
}


def message_to_dict(message: OpenFlowMessage) -> dict[str, Any]:
    """Serialize a message to a JSON-compatible dict (keyed by ``type``)."""
    data: dict[str, Any] = {"type": message.type_name(), "xid": message.xid}
    if isinstance(message, FlowMod):
        data["flow"] = message.to_ofctl()
        data["command"] = message.command.name
    elif isinstance(message, (EchoRequest, EchoReply)):
        data["data"] = message.data.hex()
    elif isinstance(message, ErrorMsg):
        data["err_type"] = message.err_type
        data["err_code"] = message.err_code
    elif isinstance(message, FeaturesReply):
        data["datapath_id"] = message.datapath_id
        data["n_tables"] = message.n_tables
    return data


def message_from_dict(data: Mapping[str, Any]) -> OpenFlowMessage:
    """Inverse of :func:`message_to_dict` for the supported types."""
    try:
        msg_type = MsgType[str(data["type"]).upper()]
    except KeyError:
        raise OpenFlowError(f"unknown message type {data.get('type')!r}") from None
    xid = int(data.get("xid", 0))
    if msg_type in _SIMPLE_TYPES:
        message: OpenFlowMessage = _SIMPLE_TYPES[msg_type]()
    elif msg_type == MsgType.FLOW_MOD:
        command = data.get("command", FlowModCommand.ADD)
        message = FlowMod.from_ofctl(data.get("flow", {}), command=command)
    elif msg_type in (MsgType.ECHO_REQUEST, MsgType.ECHO_REPLY):
        cls = EchoRequest if msg_type == MsgType.ECHO_REQUEST else EchoReply
        message = cls(data=bytes.fromhex(data.get("data", "")))
    elif msg_type == MsgType.ERROR:
        message = ErrorMsg(
            err_type=int(data.get("err_type", 0)),
            err_code=int(data.get("err_code", 0)),
        )
    elif msg_type == MsgType.FEATURES_REPLY:
        message = FeaturesReply(
            datapath_id=int(data.get("datapath_id", 0)),
            n_tables=int(data.get("n_tables", 254)),
        )
    else:
        raise OpenFlowError(f"no dict codec for message type {msg_type.name}")
    message.xid = xid
    return message


def match_to_dict(match: Match) -> dict[str, Any]:
    """Alias for :meth:`Match.to_ofctl` (symmetry with the other helpers)."""
    return match.to_ofctl()


def match_from_dict(data: Mapping[str, Any]) -> Match:
    """Alias for :meth:`Match.from_ofctl`."""
    return Match.from_ofctl(data)
