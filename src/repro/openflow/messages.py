"""OpenFlow control messages (everything except FlowMod and stats).

Messages are plain dataclasses with an ``xid`` transaction id; the binary
framing lives in :mod:`repro.openflow.wire`.  Barrier request/reply are the
stars of the show -- the paper's rounds are fenced with them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.openflow.constants import (
    OFP_NO_BUFFER,
    ErrorType,
    FlowRemovedReason,
    MsgType,
    PacketInReason,
    Port,
    PortStatusReason,
)
from repro.openflow.actions import Action
from repro.openflow.match import Match


@dataclass
class OpenFlowMessage:
    """Base class: every message carries a transaction id."""

    xid: int = 0

    msg_type: ClassVar[MsgType]

    def type_name(self) -> str:
        return self.msg_type.name


@dataclass
class Hello(OpenFlowMessage):
    """Version negotiation opener (we only speak 1.3)."""

    msg_type: ClassVar[MsgType] = MsgType.HELLO


@dataclass
class EchoRequest(OpenFlowMessage):
    """Liveness probe; the payload is echoed back."""

    data: bytes = b""

    msg_type: ClassVar[MsgType] = MsgType.ECHO_REQUEST


@dataclass
class EchoReply(OpenFlowMessage):
    data: bytes = b""

    msg_type: ClassVar[MsgType] = MsgType.ECHO_REPLY


@dataclass
class FeaturesRequest(OpenFlowMessage):
    msg_type: ClassVar[MsgType] = MsgType.FEATURES_REQUEST


@dataclass
class FeaturesReply(OpenFlowMessage):
    """Switch self-description; ``datapath_id`` is the switch identity."""

    datapath_id: int = 0
    n_buffers: int = 256
    n_tables: int = 254
    auxiliary_id: int = 0
    capabilities: int = 0x4F

    msg_type: ClassVar[MsgType] = MsgType.FEATURES_REPLY


@dataclass
class BarrierRequest(OpenFlowMessage):
    """Fence: the switch must finish all earlier messages before replying."""

    msg_type: ClassVar[MsgType] = MsgType.BARRIER_REQUEST


@dataclass
class BarrierReply(OpenFlowMessage):
    """Acknowledges a :class:`BarrierRequest` with the same xid."""

    msg_type: ClassVar[MsgType] = MsgType.BARRIER_REPLY


@dataclass
class ErrorMsg(OpenFlowMessage):
    """Switch-side rejection of a request."""

    err_type: int = int(ErrorType.BAD_REQUEST)
    err_code: int = 0
    data: bytes = b""

    msg_type: ClassVar[MsgType] = MsgType.ERROR

    def describe(self) -> str:
        try:
            type_name = ErrorType(self.err_type).name
        except ValueError:  # pragma: no cover - unknown vendor type
            type_name = f"type-{self.err_type}"
        return f"{type_name}/code-{self.err_code}"


@dataclass
class PacketIn(OpenFlowMessage):
    """A data packet punted to the controller."""

    buffer_id: int = OFP_NO_BUFFER
    total_len: int = 0
    reason: int = int(PacketInReason.NO_MATCH)
    table_id: int = 0
    cookie: int = 0
    match: Match = field(default_factory=Match)
    data: bytes = b""

    msg_type: ClassVar[MsgType] = MsgType.PACKET_IN

    def __post_init__(self) -> None:
        if self.total_len == 0 and self.data:
            self.total_len = len(self.data)


@dataclass
class PacketOut(OpenFlowMessage):
    """A controller-originated packet injected into the dataplane."""

    buffer_id: int = OFP_NO_BUFFER
    in_port: int = int(Port.CONTROLLER)
    actions: tuple[Action, ...] = ()
    data: bytes = b""

    msg_type: ClassVar[MsgType] = MsgType.PACKET_OUT


@dataclass
class FlowRemoved(OpenFlowMessage):
    """Notification that a flow entry expired or was deleted."""

    cookie: int = 0
    priority: int = 0
    reason: int = int(FlowRemovedReason.DELETE)
    table_id: int = 0
    duration_sec: int = 0
    duration_nsec: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    packet_count: int = 0
    byte_count: int = 0
    match: Match = field(default_factory=Match)

    msg_type: ClassVar[MsgType] = MsgType.FLOW_REMOVED


@dataclass
class PortStatus(OpenFlowMessage):
    """Port lifecycle notification."""

    reason: int = int(PortStatusReason.MODIFY)
    port_no: int = 0
    hw_addr: str = "00:00:00:00:00:00"
    name: str = ""

    msg_type: ClassVar[MsgType] = MsgType.PORT_STATUS


def summarize(message: Any) -> str:
    """One-line human summary used by traces and logs."""
    if isinstance(message, OpenFlowMessage):
        return f"{message.type_name()}(xid={message.xid})"
    return repr(message)
