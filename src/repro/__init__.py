"""repro: transiently secure updates in asynchronous SDNs.

A from-scratch reproduction of Shukla et al., *Towards Transiently Secure
Updates in Asynchronous SDNs* (SIGCOMM'16 demo): round-based network update
scheduling (WayUp, Peacock and friends) with transient-consistency
verification, executed over a simulated OpenFlow control plane (switches,
asynchronous channels, a Ryu-like controller and a Mininet-like network
lab).

Quick taste::

    from repro import UpdateProblem, schedule_update

    problem = UpdateProblem([1, 2, 3, 4, 5], [1, 6, 3, 7, 5], waypoint=3)
    result = schedule_update(problem, "wayup", verify=True)
    assert result.verified

Every scheduler resolves through one registry (``scheduler_names()``
lists them; specs like ``"combined:wpe+rlf"`` or
``"optimal:slf?search=bfs"`` parameterize them) and returns the same
``ScheduleResult`` envelope across the CLI, REST, and campaign layers.
See ``examples/quickstart.py`` for the end-to-end network-lab version.
"""

from repro.core import (
    CostModel,
    JointUpdateProblem,
    Property,
    RuleState,
    ScheduleRequest,
    ScheduleResult,
    Scheduler,
    TwoPhaseSchedule,
    UpdateKind,
    UpdateProblem,
    UpdateSchedule,
    VerificationReport,
    Violation,
    execute_request,
    greedy_joint_schedule,
    greedy_slf_schedule,
    merge_isolated_schedules,
    minimal_round_schedule,
    oneshot_schedule,
    peacock_schedule,
    register_scheduler,
    resolve_scheduler,
    schedule_update,
    schedule_update_time,
    scheduler_names,
    sequential_schedule,
    trace_walk,
    two_phase_schedule,
    verify_exhaustive,
    verify_schedule,
    wayup_schedule,
)
from repro.errors import ReproError
from repro.topology import Path, Topology, figure1, figure1_paths

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "JointUpdateProblem",
    "Path",
    "Property",
    "ReproError",
    "RuleState",
    "ScheduleRequest",
    "ScheduleResult",
    "Scheduler",
    "Topology",
    "TwoPhaseSchedule",
    "UpdateKind",
    "UpdateProblem",
    "UpdateSchedule",
    "VerificationReport",
    "Violation",
    "__version__",
    "execute_request",
    "figure1",
    "figure1_paths",
    "greedy_joint_schedule",
    "greedy_slf_schedule",
    "merge_isolated_schedules",
    "minimal_round_schedule",
    "oneshot_schedule",
    "peacock_schedule",
    "register_scheduler",
    "resolve_scheduler",
    "schedule_update",
    "schedule_update_time",
    "scheduler_names",
    "sequential_schedule",
    "trace_walk",
    "two_phase_schedule",
    "verify_exhaustive",
    "verify_schedule",
    "wayup_schedule",
]
