"""Network topology model.

A :class:`Topology` is an undirected multigraph-free graph of switches and
hosts with numbered ports on every node, mirroring how OpenFlow identifies
links (``dpid`` + ``port_no``).  It is intentionally a thin, fully validated
structure: simulation state (flow tables, queues) lives in the substrate
packages, not here.

Nodes are identified by hashable ids -- integers for switch datapath ids by
convention, strings such as ``"h1"`` for hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

import networkx as nx

from repro.errors import TopologyError

NodeId = Hashable

#: Default link latency in milliseconds used when none is given.
DEFAULT_LINK_LATENCY_MS = 1.0

#: Default link bandwidth in Mbit/s used when none is given.
DEFAULT_LINK_BANDWIDTH_MBPS = 1000.0


@dataclass(frozen=True)
class Link:
    """An undirected link between two nodes with per-link attributes.

    The pair ``(a, b)`` is stored in the orientation it was added;
    :meth:`other_end` resolves either direction.
    """

    a: NodeId
    b: NodeId
    latency_ms: float = DEFAULT_LINK_LATENCY_MS
    bandwidth_mbps: float = DEFAULT_LINK_BANDWIDTH_MBPS
    port_a: int = 0
    port_b: int = 0

    def other_end(self, node: NodeId) -> NodeId:
        """Return the endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"node {node!r} is not an endpoint of {self}")

    def port_of(self, node: NodeId) -> int:
        """Return the port number this link occupies on ``node``."""
        if node == self.a:
            return self.port_a
        if node == self.b:
            return self.port_b
        raise TopologyError(f"node {node!r} is not an endpoint of {self}")

    def endpoints(self) -> tuple[NodeId, NodeId]:
        """Return the two endpoints as added."""
        return (self.a, self.b)


@dataclass
class NodeInfo:
    """Metadata for a node: its kind and free-form attributes."""

    node_id: NodeId
    kind: str = "switch"
    attrs: dict[str, Any] = field(default_factory=dict)

    def is_switch(self) -> bool:
        return self.kind == "switch"

    def is_host(self) -> bool:
        return self.kind == "host"


class Topology:
    """An undirected network graph with numbered ports.

    Example
    -------
    >>> topo = Topology()
    >>> for dpid in (1, 2, 3):
    ...     _ = topo.add_switch(dpid)
    >>> _ = topo.add_link(1, 2)
    >>> _ = topo.add_link(2, 3)
    >>> topo.port_between(2, 3)
    2
    >>> topo.peer(2, 2)
    (3, 1)
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: dict[NodeId, NodeInfo] = {}
        self._links: dict[frozenset, Link] = {}
        # node -> port number -> Link
        self._ports: dict[NodeId, dict[int, Link]] = {}
        self._next_port: dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, kind: str = "switch", **attrs: Any) -> NodeInfo:
        """Add a node; raises :class:`TopologyError` on duplicates."""
        if node_id in self._nodes:
            raise TopologyError(f"duplicate node {node_id!r}")
        info = NodeInfo(node_id=node_id, kind=kind, attrs=dict(attrs))
        self._nodes[node_id] = info
        self._ports[node_id] = {}
        self._next_port[node_id] = 1
        return info

    def add_switch(self, node_id: NodeId, **attrs: Any) -> NodeInfo:
        """Add a switch node (convenience wrapper over :meth:`add_node`)."""
        return self.add_node(node_id, kind="switch", **attrs)

    def add_host(self, node_id: NodeId, **attrs: Any) -> NodeInfo:
        """Add a host node (convenience wrapper over :meth:`add_node`)."""
        return self.add_node(node_id, kind="host", **attrs)

    def add_link(
        self,
        a: NodeId,
        b: NodeId,
        latency_ms: float = DEFAULT_LINK_LATENCY_MS,
        bandwidth_mbps: float = DEFAULT_LINK_BANDWIDTH_MBPS,
    ) -> Link:
        """Connect ``a`` and ``b``, assigning the next free port on each side."""
        if a == b:
            raise TopologyError(f"self-loop on {a!r} is not allowed")
        for node in (a, b):
            if node not in self._nodes:
                raise TopologyError(f"unknown node {node!r}")
        key = frozenset((a, b))
        if key in self._links:
            raise TopologyError(f"duplicate link {a!r}--{b!r}")
        if latency_ms < 0:
            raise TopologyError(f"negative latency on link {a!r}--{b!r}")
        if bandwidth_mbps <= 0:
            raise TopologyError(f"non-positive bandwidth on link {a!r}--{b!r}")
        port_a = self._next_port[a]
        port_b = self._next_port[b]
        link = Link(
            a=a,
            b=b,
            latency_ms=latency_ms,
            bandwidth_mbps=bandwidth_mbps,
            port_a=port_a,
            port_b=port_b,
        )
        self._links[key] = link
        self._ports[a][port_a] = link
        self._ports[b][port_b] = link
        self._next_port[a] = port_a + 1
        self._next_port[b] = port_b + 1
        return link

    def remove_link(self, a: NodeId, b: NodeId) -> None:
        """Remove the link between ``a`` and ``b``; port numbers are not reused."""
        link = self.link_between(a, b)
        del self._links[frozenset((a, b))]
        del self._ports[a][link.port_of(a)]
        del self._ports[b][link.port_of(b)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def has_link(self, a: NodeId, b: NodeId) -> bool:
        return frozenset((a, b)) in self._links

    def node(self, node_id: NodeId) -> NodeInfo:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def link_between(self, a: NodeId, b: NodeId) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise TopologyError(f"no link {a!r}--{b!r}") from None

    def port_between(self, a: NodeId, b: NodeId) -> int:
        """Return the port number on ``a`` that faces ``b``."""
        return self.link_between(a, b).port_of(a)

    def peer(self, node_id: NodeId, port: int) -> tuple[NodeId, int]:
        """Return ``(neighbor, neighbor_port)`` reached from ``node_id:port``."""
        if node_id not in self._nodes:
            raise TopologyError(f"unknown node {node_id!r}")
        link = self._ports[node_id].get(port)
        if link is None:
            raise TopologyError(f"node {node_id!r} has no port {port}")
        other = link.other_end(node_id)
        return other, link.port_of(other)

    def ports(self, node_id: NodeId) -> dict[int, NodeId]:
        """Return ``{port: neighbor}`` for ``node_id``."""
        if node_id not in self._nodes:
            raise TopologyError(f"unknown node {node_id!r}")
        return {
            port: link.other_end(node_id) for port, link in self._ports[node_id].items()
        }

    def neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Return the neighbors of ``node_id`` in port order."""
        return [self._ports[node_id][p].other_end(node_id)
                for p in sorted(self.ports(node_id))]

    def degree(self, node_id: NodeId) -> int:
        return len(self.ports(node_id))

    def nodes(self, kind: str | None = None) -> list[NodeId]:
        """Return node ids, optionally filtered by kind (``"switch"``/``"host"``)."""
        if kind is None:
            return list(self._nodes)
        return [n for n, info in self._nodes.items() if info.kind == kind]

    def switches(self) -> list[NodeId]:
        return self.nodes(kind="switch")

    def hosts(self) -> list[NodeId]:
        return self.nodes(kind="host")

    def links(self) -> list[Link]:
        return list(self._links.values())

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)})"
        )

    # ------------------------------------------------------------------
    # algorithms / conversion
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` (nodes keep their kind)."""
        graph = nx.Graph(name=self.name)
        for node_id, info in self._nodes.items():
            graph.add_node(node_id, kind=info.kind, **info.attrs)
        for link in self._links.values():
            graph.add_edge(
                link.a,
                link.b,
                latency_ms=link.latency_ms,
                bandwidth_mbps=link.bandwidth_mbps,
            )
        return graph

    def shortest_path(self, a: NodeId, b: NodeId) -> list[NodeId]:
        """Hop-count shortest path between two nodes."""
        for node in (a, b):
            if node not in self._nodes:
                raise TopologyError(f"unknown node {node!r}")
        try:
            return nx.shortest_path(self.to_networkx(), a, b)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path between {a!r} and {b!r}") from None

    def is_connected(self) -> bool:
        """True when every node can reach every other node."""
        if not self._nodes:
            return True
        return nx.is_connected(self.to_networkx())

    def disjoint_paths(self, a: NodeId, b: NodeId, k: int = 2) -> list[list[NodeId]]:
        """Up to ``k`` node-disjoint paths between ``a`` and ``b``."""
        graph = self.to_networkx()
        try:
            paths = list(nx.node_disjoint_paths(graph, a, b))
        except (nx.NetworkXNoPath, nx.NetworkXError):
            return []
        paths.sort(key=len)
        return paths[:k]

    def validate(self) -> None:
        """Check internal invariants; raises :class:`TopologyError` on breakage."""
        for key, link in self._links.items():
            if frozenset(link.endpoints()) != key:
                raise TopologyError(f"link key mismatch for {link}")
            for node in link.endpoints():
                if node not in self._nodes:
                    raise TopologyError(f"link {link} references unknown {node!r}")
                if self._ports[node].get(link.port_of(node)) is not link:
                    raise TopologyError(f"port table desync at {node!r}")


def subtopology(topo: Topology, nodes: Iterable[NodeId]) -> Topology:
    """Return the sub-topology induced by ``nodes`` (links between kept nodes).

    Port numbers are re-assigned in the induced topology.
    """
    keep = set(nodes)
    sub = Topology(name=f"{topo.name}-sub")
    for node_id in topo.nodes():
        if node_id in keep:
            info = topo.node(node_id)
            sub.add_node(node_id, kind=info.kind, **info.attrs)
    for link in topo.links():
        if link.a in keep and link.b in keep:
            sub.add_link(
                link.a,
                link.b,
                latency_ms=link.latency_ms,
                bandwidth_mbps=link.bandwidth_mbps,
            )
    return sub
