"""Simple-path abstraction used by routing policies and update problems.

A :class:`Path` is an immutable simple (loop-free) sequence of node ids from
a source to a destination.  Update scheduling reasons purely about node
sequences; validity against a concrete :class:`~repro.topology.graph.Topology`
is an explicit, separate check so that the algorithmic core can be exercised
on abstract instances (as the cited papers do).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from repro.errors import PathError
from repro.topology.graph import NodeId, Topology


class Path:
    """An immutable simple path ``s -> ... -> d``.

    >>> p = Path([1, 2, 3, 4])
    >>> p.source, p.destination
    (1, 4)
    >>> p.next_hop(2)
    3
    >>> list(p.edges())
    [(1, 2), (2, 3), (3, 4)]
    """

    __slots__ = ("_nodes", "_index")

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        nodes = tuple(nodes)
        if len(nodes) < 2:
            raise PathError(f"a path needs at least two nodes, got {nodes!r}")
        index: dict[NodeId, int] = {}
        for position, node in enumerate(nodes):
            if node in index:
                raise PathError(f"path is not simple: {node!r} repeats in {nodes!r}")
            index[node] = position
        self._nodes = nodes
        self._index = index

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return self._nodes

    @property
    def source(self) -> NodeId:
        return self._nodes[0]

    @property
    def destination(self) -> NodeId:
        return self._nodes[-1]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __getitem__(self, position: int) -> NodeId:
        return self._nodes[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Path):
            return self._nodes == other._nodes
        if isinstance(other, (tuple, list)):
            return self._nodes == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._nodes)

    def __repr__(self) -> str:
        inner = " -> ".join(repr(n) for n in self._nodes)
        return f"Path({inner})"

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def index_of(self, node: NodeId) -> int:
        """Position of ``node`` on the path (0 = source)."""
        try:
            return self._index[node]
        except KeyError:
            raise PathError(f"{node!r} is not on {self!r}") from None

    def next_hop(self, node: NodeId) -> NodeId | None:
        """Successor of ``node``; ``None`` for the destination."""
        position = self.index_of(node)
        if position == len(self._nodes) - 1:
            return None
        return self._nodes[position + 1]

    def prev_hop(self, node: NodeId) -> NodeId | None:
        """Predecessor of ``node``; ``None`` for the source."""
        position = self.index_of(node)
        if position == 0:
            return None
        return self._nodes[position - 1]

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Yield consecutive ``(u, v)`` hops."""
        for u, v in zip(self._nodes, self._nodes[1:]):
            yield (u, v)

    def before(self, node: NodeId, strict: bool = True) -> tuple[NodeId, ...]:
        """Nodes preceding ``node`` (excluding it when ``strict``)."""
        position = self.index_of(node)
        if not strict:
            position += 1
        return self._nodes[:position]

    def after(self, node: NodeId, strict: bool = True) -> tuple[NodeId, ...]:
        """Nodes following ``node`` (excluding it when ``strict``)."""
        position = self.index_of(node)
        if strict:
            position += 1
        return self._nodes[position:]

    def subpath(self, start: NodeId, end: NodeId) -> "Path":
        """The contiguous sub-path from ``start`` to ``end`` (inclusive)."""
        i, j = self.index_of(start), self.index_of(end)
        if i >= j:
            raise PathError(f"{start!r} does not precede {end!r} on {self!r}")
        return Path(self._nodes[i : j + 1])

    def reversed(self) -> "Path":
        """The same node sequence traversed destination-to-source."""
        return Path(tuple(reversed(self._nodes)))

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_in(self, topo: Topology) -> None:
        """Require every node to exist and every hop to be a topology link."""
        for node in self._nodes:
            if node not in topo:
                raise PathError(f"path node {node!r} missing from topology")
        for u, v in self.edges():
            if not topo.has_link(u, v):
                raise PathError(f"path hop {u!r}->{v!r} is not a link")

    def is_valid_in(self, topo: Topology) -> bool:
        """Boolean form of :meth:`validate_in`."""
        try:
            self.validate_in(topo)
        except PathError:
            return False
        return True


def as_path(value: "Path | Sequence[NodeId]") -> Path:
    """Coerce a node sequence into a :class:`Path` (idempotent)."""
    if isinstance(value, Path):
        return value
    return Path(value)


def common_nodes(a: Path, b: Path) -> set[NodeId]:
    """Nodes present on both paths."""
    return set(a.nodes) & set(b.nodes)


def exclusive_nodes(a: Path, b: Path) -> set[NodeId]:
    """Nodes on ``a`` but not on ``b``."""
    return set(a.nodes) - set(b.nodes)


def shared_endpoints(a: Path, b: Path) -> bool:
    """True when both paths have the same source and destination."""
    return a.source == b.source and a.destination == b.destination


def forwarding_map(path: Path) -> dict[Hashable, Hashable]:
    """Return ``{node: next_hop}`` for all non-terminal nodes of ``path``."""
    return {u: v for u, v in path.edges()}
