"""Random topologies and random update instances.

All generators take an explicit :class:`random.Random` (or a seed) so every
experiment is reproducible.  Graph generators delegate to :mod:`networkx`
and re-wrap the result as a :class:`~repro.topology.graph.Topology`;
instance generators produce the abstract (old path, new path, waypoint)
triples the scheduling core consumes.
"""

from __future__ import annotations

import random
from typing import Iterable

import networkx as nx

from repro.errors import TopologyError
from repro.topology.graph import Topology
from repro.topology.paths import Path


def _as_rng(seed_or_rng: int | random.Random | None) -> random.Random:
    """Coerce an int seed / Random / None into a Random instance."""
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def _from_networkx(graph: nx.Graph, name: str) -> Topology:
    """Wrap a connected networkx graph as a Topology with 1-based dpids."""
    topo = Topology(name=name)
    relabel = {node: i + 1 for i, node in enumerate(sorted(graph.nodes()))}
    for node in sorted(relabel.values()):
        topo.add_switch(node)
    for u, v in sorted(graph.edges(), key=lambda e: (relabel[e[0]], relabel[e[1]])):
        topo.add_link(relabel[u], relabel[v])
    return topo


def _connected(factory, n: int, rng: random.Random, attempts: int = 200) -> nx.Graph:
    """Call ``factory(seed)`` until it yields a connected graph."""
    for _ in range(attempts):
        graph = factory(rng.randrange(2**31))
        if n <= 1 or nx.is_connected(graph):
            return graph
    raise TopologyError(f"could not sample a connected graph with n={n}")


def erdos_renyi(n: int, p: float, seed: int | random.Random | None = None) -> Topology:
    """Connected Erdos-Renyi G(n, p) topology."""
    if n < 1:
        raise TopologyError(f"need n >= 1, got {n}")
    rng = _as_rng(seed)
    graph = _connected(lambda s: nx.gnp_random_graph(n, p, seed=s), n, rng)
    return _from_networkx(graph, name=f"er-{n}-{p}")


def waxman(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.4,
    seed: int | random.Random | None = None,
) -> Topology:
    """Connected Waxman random topology (the classic ISP-like model)."""
    if n < 1:
        raise TopologyError(f"need n >= 1, got {n}")
    rng = _as_rng(seed)
    graph = _connected(
        lambda s: nx.waxman_graph(n, alpha=alpha, beta=beta, seed=s), n, rng
    )
    return _from_networkx(graph, name=f"waxman-{n}")


def barabasi_albert(
    n: int, m: int = 2, seed: int | random.Random | None = None
) -> Topology:
    """Barabasi-Albert preferential-attachment topology (always connected)."""
    if n <= m:
        raise TopologyError(f"need n > m, got n={n} m={m}")
    rng = _as_rng(seed)
    graph = nx.barabasi_albert_graph(n, m, seed=rng.randrange(2**31))
    return _from_networkx(graph, name=f"ba-{n}-{m}")


def random_simple_path(
    topo: Topology,
    source,
    destination,
    seed: int | random.Random | None = None,
    max_tries: int = 500,
) -> Path:
    """Sample a uniform-ish random simple path via randomized DFS."""
    rng = _as_rng(seed)
    for _ in range(max_tries):
        path = [source]
        seen = {source}
        node = source
        while node != destination:
            options = [n for n in topo.neighbors(node) if n not in seen]
            if not options:
                break
            node = rng.choice(options)
            path.append(node)
            seen.add(node)
        if node == destination:
            return Path(path)
    raise TopologyError(
        f"could not sample a simple path {source!r}->{destination!r}"
    )


def random_update_instance(
    n: int,
    seed: int | random.Random | None = None,
    overlap: float = 0.5,
    with_waypoint: bool = False,
) -> tuple[Path, Path, object | None]:
    """Sample an abstract update instance ``(old, new, waypoint)``.

    The old path is the line ``1 .. n``.  The new path keeps the endpoints,
    keeps each interior node with probability ``overlap`` plus fresh nodes
    ``n+1, n+2, ...`` for the dropped ones, and permutes the interior --
    mirroring how the scheduling papers generate adversarial-ish inputs.
    When ``with_waypoint`` a common interior node is designated waypoint
    (one is added if the permutation kept none).
    """
    if n < 3:
        raise TopologyError(f"need n >= 3 for an update instance, got {n}")
    rng = _as_rng(seed)
    old_nodes = list(range(1, n + 1))
    interior = old_nodes[1:-1]
    kept = [v for v in interior if rng.random() < overlap]
    if with_waypoint and not kept:
        kept = [rng.choice(interior)]
    fresh_count = len(interior) - len(kept)
    fresh = list(range(n + 1, n + 1 + fresh_count))
    new_interior = kept + fresh
    rng.shuffle(new_interior)
    new_nodes = [old_nodes[0], *new_interior, old_nodes[-1]]
    old_path = Path(old_nodes)
    new_path = Path(new_nodes)
    waypoint = None
    if with_waypoint:
        waypoint = rng.choice(kept)
    return old_path, new_path, waypoint


def random_waypointed_instance(
    n: int, seed: int | random.Random | None = None, overlap: float = 0.5
) -> tuple[Path, Path, object]:
    """Like :func:`random_update_instance` but always with a waypoint."""
    old_path, new_path, waypoint = random_update_instance(
        n, seed=seed, overlap=overlap, with_waypoint=True
    )
    assert waypoint is not None
    return old_path, new_path, waypoint


def random_path_pair_in(
    topo: Topology,
    seed: int | random.Random | None = None,
    max_tries: int = 200,
) -> tuple[Path, Path]:
    """Sample two distinct simple paths between a random switch pair."""
    rng = _as_rng(seed)
    switches: Iterable = topo.switches()
    switches = list(switches)
    if len(switches) < 2:
        raise TopologyError("need at least two switches")
    for _ in range(max_tries):
        source, destination = rng.sample(switches, 2)
        try:
            old_path = random_simple_path(topo, source, destination, rng)
            new_path = random_simple_path(topo, source, destination, rng)
        except TopologyError:
            continue
        if old_path != new_path:
            return old_path, new_path
    raise TopologyError("could not sample a distinct path pair")
