"""JSON (de)serialization for topologies and paths.

The on-disk format is a plain JSON object so scenarios can be authored by
hand and shipped next to benchmark configs::

    {
      "name": "figure1",
      "nodes": [{"id": 1, "kind": "switch"}, ...],
      "links": [{"a": 1, "b": 2, "latency_ms": 1.0, "bandwidth_mbps": 1000.0}]
    }

Node ids survive a round-trip for ints and strings (the only kinds the
library itself creates).
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any

from repro.errors import TopologyError
from repro.topology.graph import Topology
from repro.topology.paths import Path


def topology_to_dict(topo: Topology) -> dict[str, Any]:
    """Serialize a topology to a JSON-compatible dict."""
    nodes = []
    for node_id in topo.nodes():
        info = topo.node(node_id)
        entry: dict[str, Any] = {"id": node_id, "kind": info.kind}
        if info.attrs:
            entry["attrs"] = dict(info.attrs)
        nodes.append(entry)
    links = [
        {
            "a": link.a,
            "b": link.b,
            "latency_ms": link.latency_ms,
            "bandwidth_mbps": link.bandwidth_mbps,
        }
        for link in topo.links()
    ]
    return {"name": topo.name, "nodes": nodes, "links": links}


def topology_from_dict(data: dict[str, Any]) -> Topology:
    """Inverse of :func:`topology_to_dict` with validation."""
    if not isinstance(data, dict):
        raise TopologyError(f"expected a dict, got {type(data).__name__}")
    topo = Topology(name=data.get("name", "topology"))
    for entry in data.get("nodes", []):
        if "id" not in entry:
            raise TopologyError(f"node entry without id: {entry!r}")
        topo.add_node(
            entry["id"], kind=entry.get("kind", "switch"), **entry.get("attrs", {})
        )
    for entry in data.get("links", []):
        if "a" not in entry or "b" not in entry:
            raise TopologyError(f"link entry without endpoints: {entry!r}")
        topo.add_link(
            entry["a"],
            entry["b"],
            latency_ms=entry.get("latency_ms", 1.0),
            bandwidth_mbps=entry.get("bandwidth_mbps", 1000.0),
        )
    topo.validate()
    return topo


def save_topology(topo: Topology, path: str | FsPath) -> None:
    """Write a topology to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(topology_to_dict(topo), handle, indent=2, sort_keys=True)


def load_topology(path: str | FsPath) -> Topology:
    """Read a topology from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return topology_from_dict(json.load(handle))


def path_to_list(path: Path) -> list:
    """Serialize a path to a plain list of node ids."""
    return list(path.nodes)


def path_from_list(nodes: list) -> Path:
    """Deserialize a path from a list of node ids."""
    return Path(nodes)
