"""Deterministic topology builders.

These construct the standard shapes used in the tests, examples and
benchmarks: lines, rings, grids, stars, binary trees, k-ary fat-trees and
the reconstruction of the paper's Figure 1 demo topology.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.graph import Topology
from repro.topology.paths import Path


def linear(n: int, with_hosts: bool = False) -> Topology:
    """A chain of ``n`` switches ``1 -- 2 -- ... -- n``.

    With ``with_hosts`` a host ``h1`` hangs off switch 1 and ``h2`` off
    switch ``n`` (the Mininet ``--topo linear`` convention).
    """
    if n < 1:
        raise TopologyError(f"linear topology needs n >= 1, got {n}")
    topo = Topology(name=f"linear-{n}")
    for dpid in range(1, n + 1):
        topo.add_switch(dpid)
    for dpid in range(1, n):
        topo.add_link(dpid, dpid + 1)
    if with_hosts:
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("h1", 1)
        topo.add_link("h2", n)
    return topo


def ring(n: int) -> Topology:
    """A cycle of ``n`` switches (``n >= 3``)."""
    if n < 3:
        raise TopologyError(f"ring topology needs n >= 3, got {n}")
    topo = Topology(name=f"ring-{n}")
    for dpid in range(1, n + 1):
        topo.add_switch(dpid)
    for dpid in range(1, n):
        topo.add_link(dpid, dpid + 1)
    topo.add_link(n, 1)
    return topo


def star(n_leaves: int) -> Topology:
    """Switch 1 at the hub, switches ``2 .. n_leaves + 1`` as spokes."""
    if n_leaves < 1:
        raise TopologyError(f"star topology needs >= 1 leaf, got {n_leaves}")
    topo = Topology(name=f"star-{n_leaves}")
    topo.add_switch(1)
    for dpid in range(2, n_leaves + 2):
        topo.add_switch(dpid)
        topo.add_link(1, dpid)
    return topo


def grid(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` mesh; dpid of cell ``(r, c)`` is ``r * cols + c + 1``."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid needs positive dimensions, got {rows}x{cols}")
    topo = Topology(name=f"grid-{rows}x{cols}")

    def dpid(r: int, c: int) -> int:
        return r * cols + c + 1

    for r in range(rows):
        for c in range(cols):
            topo.add_switch(dpid(r, c))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_link(dpid(r, c), dpid(r, c + 1))
            if r + 1 < rows:
                topo.add_link(dpid(r, c), dpid(r + 1, c))
    return topo


def binary_tree(depth: int) -> Topology:
    """A complete binary tree of switches; root dpid 1, children ``2i``/``2i+1``."""
    if depth < 1:
        raise TopologyError(f"tree depth must be >= 1, got {depth}")
    topo = Topology(name=f"btree-{depth}")
    last = 2**depth - 1
    for dpid in range(1, last + 1):
        topo.add_switch(dpid)
    for dpid in range(1, 2 ** (depth - 1)):
        topo.add_link(dpid, 2 * dpid)
        topo.add_link(dpid, 2 * dpid + 1)
    return topo


def fat_tree(k: int = 4) -> Topology:
    """A k-ary fat-tree (k even): ``(k/2)^2`` core, ``k`` pods of ``k`` switches.

    Dpid layout: cores first, then per pod the aggregation switches, then the
    edge switches, numbered consecutively from 1.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat-tree arity must be even and >= 2, got {k}")
    topo = Topology(name=f"fat-tree-{k}")
    half = k // 2
    n_core = half * half
    cores = list(range(1, n_core + 1))
    for dpid in cores:
        topo.add_switch(dpid, layer="core")
    next_dpid = n_core + 1
    for pod in range(k):
        aggs = list(range(next_dpid, next_dpid + half))
        next_dpid += half
        edges = list(range(next_dpid, next_dpid + half))
        next_dpid += half
        for dpid in aggs:
            topo.add_switch(dpid, layer="agg", pod=pod)
        for dpid in edges:
            topo.add_switch(dpid, layer="edge", pod=pod)
        for agg in aggs:
            for edge in edges:
                topo.add_link(agg, edge)
        # aggregation switch i of each pod connects to core group i
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, cores[i * half + j])
    return topo


#: Reconstructed old (solid) route of the paper's Figure 1: h1 enters at s1,
#: traffic crosses the waypoint s3 and leaves to h2 at s12.
FIGURE1_OLD_PATH = (1, 2, 9, 3, 4, 5, 12)

#: Reconstructed new (dashed) route of Figure 1.  It shares the waypoint s3
#: and the endpoints with the old route but otherwise detours through the
#: remaining switches.  The overlap exercises four of WayUp's round
#: classes: 6/7/8 are new-only (install round), 5 moves from the old suffix
#: onto the new prefix (post-waypoint round, with the waypoint itself),
#: 2 stays on both prefixes (shared-prefix round), the source diverges
#: (source round) and 4/9 become old-only (cleanup).  The "late mover"
#: class (old prefix -> new suffix) is deliberately absent: it provably
#: forces a stable transient loop between rounds (see
#: ``repro.core.hardness.crossing_instance``), which a live demo would not
#: showcase -- connectivity here only flickers within a round.
FIGURE1_NEW_PATH = (1, 6, 2, 5, 3, 7, 8, 12)

#: The waypoint (firewall / IDS) of Figure 1.
FIGURE1_WAYPOINT = 3


def figure1(with_hosts: bool = True) -> Topology:
    """The 12-switch demo topology reconstructed from the paper's Figure 1.

    The figure itself only fixes: 12 OpenFlow switches, ``h1`` at switch 1,
    ``h2`` at switch 12, waypoint switch 3, one solid (old) and one dashed
    (new) route.  We lay the switches out so that both
    :data:`FIGURE1_OLD_PATH` and :data:`FIGURE1_NEW_PATH` exist, plus spare
    switches 10 and 11 as the figure shows unused alternates.
    """
    topo = Topology(name="figure1")
    for dpid in range(1, 13):
        topo.add_switch(dpid, waypoint=(dpid == FIGURE1_WAYPOINT))
    # old (solid) route
    for u, v in zip(FIGURE1_OLD_PATH, FIGURE1_OLD_PATH[1:]):
        topo.add_link(u, v)
    # new (dashed) route -- skip hops that already exist
    for u, v in zip(FIGURE1_NEW_PATH, FIGURE1_NEW_PATH[1:]):
        if not topo.has_link(u, v):
            topo.add_link(u, v)
    # spare switches seen in the figure but unused by either route
    topo.add_link(9, 10)
    topo.add_link(10, 11)
    topo.add_link(11, 12)
    if with_hosts:
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("h1", 1)
        topo.add_link("h2", 12)
    return topo


def figure1_paths() -> tuple[Path, Path, int]:
    """Return ``(old_path, new_path, waypoint)`` of the Figure 1 scenario."""
    return Path(FIGURE1_OLD_PATH), Path(FIGURE1_NEW_PATH), FIGURE1_WAYPOINT
