"""REST-facing campaign service.

Bridges the HTTP surface to the campaign engine:

* ``POST /campaigns`` -- body is either a campaign spec, or
  ``{"spec": {...}, "workers": N}``; runs the campaign (small specs are
  expected over REST; large sweeps belong to ``repro campaign run``) and
  returns the status summary.
* ``GET /campaigns/<campaign_id>`` -- progress counters.
* ``GET /campaigns/<campaign_id>/report`` -- aggregated per
  family x scheduler percentile records.

Fabric (coordinator + worker fleet) endpoints, all idempotent-safe under
at-least-once delivery:

* ``POST /campaigns/serve`` -- ``{"spec": {...}, ...options}``; stand up
  a :class:`~repro.campaign.fabric.Coordinator` for the spec (resuming
  its run directory -- including crash recovery from the fabric journal)
  and return its status.  Cells are *not* executed server-side; pull
  workers do that.
* ``POST /campaigns/<campaign_id>/fabric/register|heartbeat|lease|submit|fail|deregister``
  -- the worker protocol (see :mod:`repro.campaign.fabric.transport`).
  Duplicate shard submissions are counted no-ops.  A ``submit`` body with
  a ``records`` list is the batched form; each entry may carry an
  ``integrity`` sidecar (record checksum + cell identity hash) that the
  coordinator validates before folding.
* ``GET /campaigns/<campaign_id>/fabric`` -- coordinator status with
  lease/reclaim/retry/escalation counters.

Unknown campaign ids are a 404, malformed specs a 400 -- never a raw
``KeyError``/500 out of the router.
"""

from __future__ import annotations

import pathlib
import tempfile
from typing import Any, Mapping

from repro.errors import BadRequestError, CampaignError, CampaignSpecError, NotFoundError
from repro.campaign.aggregate import aggregate_records
from repro.campaign.fabric import Coordinator
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RunStore

#: REST-side cap: campaigns beyond this size must go through the CLI.
MAX_REST_CELLS = 5000

#: Coordinator knobs a ``POST /campaigns/serve`` body may set.
FABRIC_OPTIONS = (
    "lease_ttl_s",
    "heartbeat_interval_s",
    "heartbeat_timeout_s",
    "lease_cells",
    "max_transient_retries",
    "escalation_factor",
    "journal_compact_every",
    "audit_fraction",
    "audit_seed",
    "poison_kill_threshold",
)


class CampaignService:
    """Run directory management + engine invocation for the REST routes."""

    def __init__(self, root: str | None = None) -> None:
        self._root = root
        self._coordinators: dict[str, Coordinator] = {}

    @property
    def root(self) -> str:
        if self._root is None:
            self._root = tempfile.mkdtemp(prefix="repro-campaigns-")
        return self._root

    def _store(self, campaign_id: str) -> RunStore:
        store = RunStore(self.root, str(campaign_id))
        if not store.exists():
            raise NotFoundError(f"unknown campaign {campaign_id!r}")
        return store

    def submit(self, body: Any) -> dict:
        if not isinstance(body, Mapping):
            raise BadRequestError("campaign submission must be a JSON object")
        workers = 1
        spec_data = body
        if "spec" in body:
            spec_data = body["spec"]
            workers = body.get("workers", 1)
            if not isinstance(workers, int) or workers < 1:
                raise BadRequestError("'workers' must be an int >= 1")
            unknown = set(body) - {"spec", "workers"}
            if unknown:
                raise BadRequestError(
                    f"unknown submission keys: {sorted(unknown)}"
                )
        try:
            spec = CampaignSpec.from_dict(spec_data)
            n_cells = len(spec.expand())
        except CampaignSpecError as exc:
            raise BadRequestError(f"bad campaign spec: {exc}") from None
        if n_cells > MAX_REST_CELLS:
            raise BadRequestError(
                f"campaign has {n_cells} cells; REST accepts at most "
                f"{MAX_REST_CELLS} -- use 'repro campaign run'"
            )
        runner = CampaignRunner(spec, root=self.root, workers=workers)
        try:
            status = runner.run()
        except CampaignError as exc:
            raise BadRequestError(str(exc)) from None
        return status

    def status(self, campaign_id: str) -> dict:
        return self._store(campaign_id).status()

    def report(self, campaign_id: str) -> dict:
        store = self._store(campaign_id)
        return {
            "campaign_id": store.campaign_id,
            "rows": aggregate_records(store.records(), store.timings()),
        }

    # ------------------------------------------------------------------
    # fabric: coordinator lifecycle + worker protocol
    # ------------------------------------------------------------------
    def serve(self, body: Any) -> dict:
        """Stand up a coordinator for a spec (idempotent per campaign id)."""
        if not isinstance(body, Mapping) or "spec" not in body:
            raise BadRequestError(
                "fabric serve body must be {'spec': {...}, ...options}"
            )
        unknown = set(body) - {"spec", "chaos"} - set(FABRIC_OPTIONS)
        if unknown:
            raise BadRequestError(f"unknown serve keys: {sorted(unknown)}")
        options: dict[str, Any] = {}
        for key in FABRIC_OPTIONS:
            if key in body:
                value = body[key]
                if not isinstance(value, (int, float)) or value < 0:
                    raise BadRequestError(f"{key!r} must be a number >= 0")
                options[key] = value
        if "chaos" in body:
            # coordinator fault injection (the crash smoke's kill hook);
            # deterministic, so accepting it over REST is test-only sugar
            if not isinstance(body["chaos"], Mapping):
                raise BadRequestError("'chaos' must be an object")
            from repro.campaign.fabric import (
                CoordinatorChaos,
                CoordinatorChaosConfig,
            )

            options["chaos"] = CoordinatorChaos(
                CoordinatorChaosConfig.from_dict(body["chaos"])
            )
        try:
            spec = CampaignSpec.from_dict(body["spec"])
        except CampaignSpecError as exc:
            raise BadRequestError(f"bad campaign spec: {exc}") from None
        active = self._coordinators.get(spec.campaign_id)
        if active is not None and not active.finished:
            raise BadRequestError(
                f"campaign {spec.campaign_id!r} is already being served"
            )
        try:
            coordinator = Coordinator(spec, root=self.root, **options)
        except CampaignError as exc:
            raise BadRequestError(str(exc)) from None
        self._coordinators[spec.campaign_id] = coordinator
        return coordinator.status()

    def fabric(self, campaign_id: str) -> Coordinator:
        coordinator = self._coordinators.get(str(campaign_id))
        if coordinator is None:
            raise NotFoundError(
                f"no coordinator serving campaign {campaign_id!r}"
            )
        return coordinator

    def fabric_ids(self) -> list[str]:
        return sorted(self._coordinators)

    def fabric_status(self, campaign_id: str) -> dict:
        return self.fabric(campaign_id).status()

    def fabric_telemetry(self, campaign_id: str) -> dict:
        """Per-worker live telemetry of a served campaign."""
        return self.fabric(campaign_id).telemetry()

    def fabric_call(self, campaign_id: str, verb: str, body: Any) -> dict:
        """Dispatch one worker-protocol verb with body validation."""
        coordinator = self.fabric(campaign_id)
        if not isinstance(body, Mapping):
            body = {}
        if verb == "register":
            return coordinator.register(body)
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise BadRequestError(f"fabric {verb} needs a 'worker_id' string")
        try:
            if verb == "heartbeat":
                return coordinator.heartbeat(worker_id)
            if verb == "lease":
                max_cells = body.get("max_cells")
                if max_cells is not None and (
                    not isinstance(max_cells, int) or max_cells < 1
                ):
                    raise BadRequestError("'max_cells' must be an int >= 1")
                return coordinator.lease(worker_id, max_cells)
            if verb == "submit":
                if not isinstance(body.get("lease_id"), str):
                    raise BadRequestError("fabric submit needs 'lease_id'")
                if "records" in body:
                    # batched form: a list of per-cell entries, folded
                    # idempotently record by record
                    entries = body["records"]
                    if not isinstance(entries, list) or not all(
                        isinstance(entry, Mapping) for entry in entries
                    ):
                        raise BadRequestError(
                            "'records' must be a list of objects"
                        )
                    return coordinator.submit_batch(
                        worker_id,
                        body["lease_id"],
                        [
                            self._validated_entry(entry)
                            for entry in entries
                        ],
                    )
                entry = self._validated_entry(body)
                return coordinator.submit(
                    worker_id,
                    body["lease_id"],
                    entry["cell_id"],
                    entry["record"],
                    entry["timing"],
                    entry.get("integrity"),
                )
            if verb == "fail":
                for key in ("lease_id", "cell_id"):
                    if not isinstance(body.get(key), str):
                        raise BadRequestError(f"fabric fail needs {key!r}")
                return coordinator.fail(
                    worker_id,
                    body["lease_id"],
                    body["cell_id"],
                    str(body.get("detail", "")),
                    requeue=bool(body.get("requeue", False)),
                )
            if verb == "deregister":
                return coordinator.deregister(worker_id)
        except CampaignError as exc:
            raise BadRequestError(str(exc)) from None
        raise NotFoundError(f"unknown fabric verb {verb!r}")

    @staticmethod
    def _validated_entry(body: Mapping[str, Any]) -> dict:
        """One submit entry: cell_id + record/timing objects + optional
        integrity sidecar, shape-checked before they reach the engine."""
        if not isinstance(body.get("cell_id"), str):
            raise BadRequestError("fabric submit needs 'cell_id'")
        record = body.get("record")
        timing = body.get("timing")
        if not isinstance(record, Mapping) or not isinstance(timing, Mapping):
            raise BadRequestError(
                "fabric submit needs 'record' and 'timing' objects"
            )
        integrity = body.get("integrity")
        if integrity is not None and not isinstance(integrity, Mapping):
            raise BadRequestError("'integrity' must be an object")
        return {
            "cell_id": body["cell_id"],
            "record": record,
            "timing": timing,
            "integrity": integrity,
        }

    def close(self) -> None:
        """Flush and close every served coordinator's run store."""
        for coordinator in self._coordinators.values():
            coordinator.close()

    def known_ids(self) -> list[str]:
        root = pathlib.Path(self.root)
        if not root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in root.iterdir()
            if (entry / "manifest.json").is_file()
        )
