"""REST-facing campaign service.

Bridges the HTTP surface to the campaign engine:

* ``POST /campaigns`` -- body is either a campaign spec, or
  ``{"spec": {...}, "workers": N}``; runs the campaign (small specs are
  expected over REST; large sweeps belong to ``repro campaign run``) and
  returns the status summary.
* ``GET /campaigns/<campaign_id>`` -- progress counters.
* ``GET /campaigns/<campaign_id>/report`` -- aggregated per
  family x scheduler percentile records.

Unknown campaign ids are a 404, malformed specs a 400 -- never a raw
``KeyError``/500 out of the router.
"""

from __future__ import annotations

import pathlib
import tempfile
from typing import Any, Mapping

from repro.errors import BadRequestError, CampaignError, CampaignSpecError, NotFoundError
from repro.campaign.aggregate import aggregate_records
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RunStore

#: REST-side cap: campaigns beyond this size must go through the CLI.
MAX_REST_CELLS = 5000


class CampaignService:
    """Run directory management + engine invocation for the REST routes."""

    def __init__(self, root: str | None = None) -> None:
        self._root = root

    @property
    def root(self) -> str:
        if self._root is None:
            self._root = tempfile.mkdtemp(prefix="repro-campaigns-")
        return self._root

    def _store(self, campaign_id: str) -> RunStore:
        store = RunStore(self.root, str(campaign_id))
        if not store.exists():
            raise NotFoundError(f"unknown campaign {campaign_id!r}")
        return store

    def submit(self, body: Any) -> dict:
        if not isinstance(body, Mapping):
            raise BadRequestError("campaign submission must be a JSON object")
        workers = 1
        spec_data = body
        if "spec" in body:
            spec_data = body["spec"]
            workers = body.get("workers", 1)
            if not isinstance(workers, int) or workers < 1:
                raise BadRequestError("'workers' must be an int >= 1")
            unknown = set(body) - {"spec", "workers"}
            if unknown:
                raise BadRequestError(
                    f"unknown submission keys: {sorted(unknown)}"
                )
        try:
            spec = CampaignSpec.from_dict(spec_data)
            n_cells = len(spec.expand())
        except CampaignSpecError as exc:
            raise BadRequestError(f"bad campaign spec: {exc}") from None
        if n_cells > MAX_REST_CELLS:
            raise BadRequestError(
                f"campaign has {n_cells} cells; REST accepts at most "
                f"{MAX_REST_CELLS} -- use 'repro campaign run'"
            )
        runner = CampaignRunner(spec, root=self.root, workers=workers)
        try:
            status = runner.run()
        except CampaignError as exc:
            raise BadRequestError(str(exc)) from None
        return status

    def status(self, campaign_id: str) -> dict:
        return self._store(campaign_id).status()

    def report(self, campaign_id: str) -> dict:
        store = self._store(campaign_id)
        return {
            "campaign_id": store.campaign_id,
            "rows": aggregate_records(store.records(), store.timings()),
        }

    def known_ids(self) -> list[str]:
        root = pathlib.Path(self.root)
        if not root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in root.iterdir()
            if (entry / "manifest.json").is_file()
        )
