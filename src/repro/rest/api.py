"""In-process REST router exposing the controller apps.

The demo drives its prototype through Ryu's WSGI REST interface; this
module reproduces the interface without sockets: a :class:`Router` matches
``(method, path)`` against registered patterns (``/stats/flow/<dpid>``) and
invokes handlers with path parameters and the JSON body.  The optional
localhost HTTP binding in :mod:`repro.rest.http_binding` serves the same
router over real HTTP for the interactive example.

Routes (mirroring ofctl_rest plus the paper's update endpoint):

* ``GET  /stats/switches``            -- connected dpids
* ``GET  /stats/flow/<dpid>``         -- flow stats of one switch
* ``POST /stats/flowentry/add``       -- one-shot FlowMod (baseline)
* ``POST /stats/flowentry/modify``    -- ditto
* ``POST /stats/flowentry/delete``    -- ditto
* ``POST /update``                    -- the paper's multi-round update
* ``POST /update/<algorithm>``        -- ditto with the algorithm in the path
* ``GET  /update/<update_id>``        -- execution status / timings
* ``POST /schedule``                  -- scheduler service: compute + verify a
  schedule through the registry envelope, without executing it
* ``GET  /schedulers``                -- registry capability listing
* ``POST /campaigns``                 -- run a declarative scenario campaign
* ``GET  /campaigns``                 -- known campaign ids
* ``GET  /campaigns/<campaign_id>``   -- campaign progress counters
* ``GET  /campaigns/<campaign_id>/report`` -- aggregated sweep table
* ``POST /campaigns/serve``           -- stand up a fabric coordinator
* ``GET  /campaigns/fabric``          -- actively-served campaign ids
* ``GET  /campaigns/<campaign_id>/fabric`` -- coordinator status + counters
* ``POST /campaigns/<campaign_id>/fabric/<verb>`` -- the fabric worker
  protocol (register / heartbeat / lease / submit / fail)
* ``GET  /campaigns/<campaign_id>/fabric/telemetry`` -- per-worker live
  telemetry (throughput, lease ages, retry/escalation tallies)
* ``GET  /metrics``                   -- Prometheus text exposition of the
  process collector (``fabric.*``, ``api.*``, oracle counters)

:func:`build_campaign_api` wires a campaign-only router (no simulated
network) -- the surface ``repro campaign serve`` exposes to its fleet.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    BadRequestError,
    InfeasibleUpdateError,
    NotFoundError,
    RestError,
    SchedulerSpecError,
    UnknownDatapathError,
    UpdateModelError,
    VerificationError,
)
from repro.controller.ofctl_rest import OfctlRestApp
from repro.controller.ofctl_rest_own import TransientUpdateApp
from repro.controller.update_queue import UpdateQueueApp
from repro.core.api import schedule_update
from repro.core.problem import UpdateProblem
from repro.core.registry import REGISTRY, parse_properties
from repro.rest.campaigns import CampaignService
from repro.rest.schemas import (
    schedule_result_to_body,
    validate_flowentry_body,
    validate_schedule_body,
    validate_update_body,
)


@dataclass
class RestResponse:
    """Status code plus body (JSON-compatible, or text with an explicit
    ``content_type`` -- the Prometheus exposition is plain text)."""

    status: int
    body: Any
    content_type: str | None = None

    def json(self) -> str:
        return json.dumps(self.body, sort_keys=True)


@dataclass
class Route:
    method: str
    pattern: re.Pattern
    handler: Callable[..., Any]
    param_names: tuple[str, ...] = ()


class Router:
    """Minimal method+path router with ``<param>`` captures."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def register(self, method: str, path: str, handler: Callable[..., Any]) -> None:
        """Register ``handler(body=None, **path_params)`` for method+path."""
        param_names = tuple(re.findall(r"<(\w+)>", path))
        regex = re.escape(path)
        for name in param_names:
            regex = regex.replace(re.escape(f"<{name}>"), f"(?P<{name}>[^/]+)")
        self._routes.append(
            Route(
                method=method.upper(),
                pattern=re.compile(f"^{regex}$"),
                handler=handler,
                param_names=param_names,
            )
        )

    def handle(self, method: str, path: str, body: Any = None) -> RestResponse:
        """Dispatch one request; REST errors become status codes."""
        method = method.upper()
        path_matched = False
        for route in self._routes:
            found = route.pattern.match(path)
            if found is None:
                continue
            path_matched = True
            if route.method != method:
                continue
            try:
                result = route.handler(body, **found.groupdict())
            except RestError as exc:
                return RestResponse(status=exc.status, body={"error": str(exc)})
            if isinstance(result, RestResponse):
                return result  # handler controls status / content type
            return RestResponse(status=200, body=result)
        if path_matched:
            return RestResponse(
                status=405, body={"error": f"method {method} not allowed on {path}"}
            )
        return RestResponse(status=404, body={"error": f"no route for {path}"})

    def routes(self) -> list[tuple[str, str]]:
        """(method, pattern) pairs, for docs and tests."""
        return [(route.method, route.pattern.pattern) for route in self._routes]


@dataclass
class RestApi:
    """The wired-up application router."""

    router: Router
    ofctl: OfctlRestApp
    update_app: TransientUpdateApp
    update_queue: UpdateQueueApp
    flush: Callable[[], None] | None = None
    campaigns: CampaignService | None = None
    _stats_cache: dict = field(default_factory=dict)

    def handle(self, method: str, path: str, body: Any = None) -> RestResponse:
        return self.router.handle(method, path, body)


def build_rest_api(
    ofctl: OfctlRestApp,
    update_app: TransientUpdateApp,
    update_queue: UpdateQueueApp,
    flush: Callable[[], None] | None = None,
    campaign_root: str | None = None,
) -> RestApi:
    """Wire the standard route table onto the given apps.

    ``flush`` (usually ``network.flush``) is invoked by handlers that need
    switch replies (stats) or that should settle the update synchronously
    from the caller's point of view.  ``campaign_root`` is where campaign
    run directories are created (a temp directory by default).
    """
    router = Router()
    campaigns = CampaignService(root=campaign_root)
    api = RestApi(
        router=router,
        ofctl=ofctl,
        update_app=update_app,
        update_queue=update_queue,
        flush=flush,
        campaigns=campaigns,
    )

    def _flush() -> None:
        if flush is not None:
            flush()

    def get_switches(body: Any) -> list[int]:
        return ofctl.switches()

    def get_flow_stats(body: Any, dpid: str) -> dict:
        try:
            dpid_int = int(dpid)
        except ValueError:
            raise BadRequestError(f"bad dpid {dpid!r}") from None
        try:
            future = ofctl.flow_stats(dpid_int)
        except UnknownDatapathError as exc:
            raise NotFoundError(str(exc)) from None
        _flush()
        if not future.done:
            raise RestError("switch did not answer the stats request")
        return future.result().to_ofctl(dpid_int)

    def make_flowentry(operation: str) -> Callable[[Any], dict]:
        def handler(body: Any) -> dict:
            validate_flowentry_body(body)
            result = getattr(ofctl, f"flowentry_{operation}")(body)
            _flush()
            return result

        return handler

    def post_update(body: Any, algorithm: str | None = None) -> dict:
        validate_update_body(body)
        request = dict(body)
        if algorithm is not None:
            request["algorithm"] = algorithm
        summary = update_app.submit_update(request)
        _flush()
        return summary

    def post_schedule(body: Any) -> dict:
        """Scheduler-service endpoint: the envelope over the wire."""
        validate_schedule_body(body)
        try:
            problem = UpdateProblem(
                [int(v) for v in body["oldpath"]],
                [int(v) for v in body["newpath"]],
                waypoint=int(body["wp"])
                if body.get("wp") is not None
                else None,
            )
        except UpdateModelError as exc:
            raise BadRequestError(f"bad schedule request: {exc}") from None
        properties = None
        if body.get("properties"):
            try:
                properties = parse_properties("+".join(body["properties"]))
            except SchedulerSpecError as exc:
                raise BadRequestError(str(exc)) from None
        spec = body.get("scheduler", "wayup")
        try:
            result = schedule_update(
                problem,
                spec,
                include_cleanup=body.get("cleanup", True),
                verify=body.get("verify", True),
                properties=properties,
                params=body.get("params") or {},
            )
        except (SchedulerSpecError, UpdateModelError, VerificationError) as exc:
            # bad spec, model precondition, or an engine refusing the
            # request (size cap, unknown search mode, WPE sans waypoint)
            raise BadRequestError(str(exc)) from None
        except (TypeError, ValueError) as exc:
            # client-supplied params of the wrong type reach the engines
            # as kwargs -- that is a 400; with no params in play the same
            # exceptions mean a library bug and must stay loud
            if not body.get("params"):
                raise
            raise BadRequestError(f"bad engine params: {exc}") from None
        except InfeasibleUpdateError as exc:
            # a well-formed request whose instance admits no schedule is
            # an answer, not a client error; the spec resolved before the
            # scheduler ran, so the canonical name is available
            return {"status": "infeasible",
                    "scheduler": REGISTRY.resolve(spec).name,
                    "detail": str(exc)}
        data = schedule_result_to_body(result)
        data["status"] = "ok"
        return data

    def get_schedulers(body: Any) -> list[dict]:
        return REGISTRY.describe()

    def get_update(body: Any, update_id: str) -> dict:
        for execution in update_queue.completed:
            if execution.update_id == update_id:
                return {
                    "update_id": execution.update_id,
                    "rounds": execution.n_rounds,
                    "duration_ms": execution.duration_ms,
                    "round_durations_ms": [
                        t.duration_ms for t in execution.round_timings
                    ],
                    "errors": len(execution.errors),
                    "state": "completed",
                }
        for execution in update_queue.queue:
            if execution.update_id == update_id:
                return {
                    "update_id": execution.update_id,
                    "current_round": execution.current_round,
                    "state": "running",
                }
        raise NotFoundError(f"unknown update {update_id!r}")

    router.register("GET", "/stats/switches", get_switches)
    router.register("GET", "/stats/flow/<dpid>", get_flow_stats)
    for operation in ("add", "modify", "modify_strict", "delete", "delete_strict"):
        router.register(
            "POST", f"/stats/flowentry/{operation}", make_flowentry(operation)
        )
    router.register("POST", "/update", post_update)
    router.register("POST", "/update/<algorithm>", post_update)
    router.register("GET", "/update/<update_id>", get_update)
    router.register("POST", "/schedule", post_schedule)
    router.register("GET", "/schedulers", get_schedulers)
    register_campaign_routes(router, campaigns)
    return api


def register_campaign_routes(router: Router, campaigns: CampaignService) -> None:
    """Wire the campaign + fabric route table onto ``router``.

    Shared between the full demo API (:func:`build_rest_api`) and the
    campaign-only coordinator surface (:func:`build_campaign_api`).
    """

    def post_campaign(body: Any) -> dict:
        return campaigns.submit(body)

    def get_campaigns(body: Any) -> list[str]:
        return campaigns.known_ids()

    def get_campaign(body: Any, campaign_id: str) -> dict:
        return campaigns.status(campaign_id)

    def get_campaign_report(body: Any, campaign_id: str) -> dict:
        return campaigns.report(campaign_id)

    def post_fabric_serve(body: Any) -> dict:
        return campaigns.serve(body)

    def get_fabric_ids(body: Any) -> dict:
        return {"campaigns": campaigns.fabric_ids()}

    def get_fabric_status(body: Any, campaign_id: str) -> dict:
        return campaigns.fabric_status(campaign_id)

    def get_fabric_telemetry(body: Any, campaign_id: str) -> dict:
        return campaigns.fabric_telemetry(campaign_id)

    def post_fabric_verb(body: Any, campaign_id: str, verb: str) -> dict:
        return campaigns.fabric_call(campaign_id, verb, body)

    router.register("POST", "/campaigns", post_campaign)
    # static segments must register before the <campaign_id> captures
    router.register("POST", "/campaigns/serve", post_fabric_serve)
    router.register("GET", "/campaigns/fabric", get_fabric_ids)
    router.register("GET", "/campaigns", get_campaigns)
    router.register("GET", "/campaigns/<campaign_id>/fabric", get_fabric_status)
    router.register(
        "GET",
        "/campaigns/<campaign_id>/fabric/telemetry",
        get_fabric_telemetry,
    )
    router.register(
        "POST", "/campaigns/<campaign_id>/fabric/<verb>", post_fabric_verb
    )
    router.register("GET", "/campaigns/<campaign_id>", get_campaign)
    router.register("GET", "/campaigns/<campaign_id>/report", get_campaign_report)
    register_metrics_route(router)


def register_metrics_route(router: Router) -> None:
    """Wire ``GET /metrics`` (Prometheus text exposition) onto ``router``.

    Covers every counter/histogram/series on the process collector (the
    ``fabric.*`` and ``api.*`` instruments) plus the safety oracle's
    aggregate counters under ``repro_oracle_*``.
    """

    def get_metrics(body: Any) -> RestResponse:
        from repro.core.oracle import aggregate_stats
        from repro.metrics import global_collector, render_prometheus

        oracle = {
            f"oracle.{key}": value
            for key, value in aggregate_stats().as_dict().items()
        }
        text = render_prometheus(global_collector(), extra_counters=oracle)
        return RestResponse(
            status=200,
            body=text,
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    router.register("GET", "/metrics", get_metrics)


@dataclass
class CampaignRestApi:
    """A campaign-only API surface (no simulated network attached)."""

    router: Router
    campaigns: CampaignService

    def handle(self, method: str, path: str, body: Any = None) -> RestResponse:
        return self.router.handle(method, path, body)


def build_campaign_api(
    campaign_root: str | None = None,
    service: CampaignService | None = None,
) -> CampaignRestApi:
    """Wire only the campaign + fabric routes (``repro campaign serve``)."""
    router = Router()
    campaigns = service or CampaignService(root=campaign_root)
    register_campaign_routes(router, campaigns)
    return CampaignRestApi(router=router, campaigns=campaigns)
