"""Validation of REST request bodies (the paper's message format).

The WayUp REST request has a header part -- ``oldpath``, ``newpath``,
``wp`` and ``interval`` -- and a body part of OpenFlow message payloads
keyed by type (section 2 of the paper).  These validators reject malformed
requests with :class:`~repro.errors.BadRequestError` before anything
touches the controller.
"""

from __future__ import annotations

from typing import Any

from repro.errors import BadRequestError

#: Header fields of the paper's update request and their expected shapes.
UPDATE_HEADER_FIELDS = ("oldpath", "newpath", "wp", "interval")

#: Body keys carrying explicit per-switch FlowMod payloads.
UPDATE_BODY_KEYS = ("add", "modify", "delete")

#: Keys this implementation additionally understands.
UPDATE_EXTENSION_KEYS = ("algorithm", "match", "priority", "name")


def _require_dict(body: Any, what: str) -> dict:
    if not isinstance(body, dict):
        raise BadRequestError(f"{what} must be a JSON object, got {type(body).__name__}")
    return body


def _require_wp(body: dict) -> None:
    if "wp" in body and body["wp"] is not None:
        wp = body["wp"]
        if isinstance(wp, bool) or not isinstance(wp, (int, str)):
            raise BadRequestError(f"'wp' must be a datapath id, got {wp!r}")
        if isinstance(wp, str) and not wp.isdigit():
            raise BadRequestError(f"'wp' must be numeric, got {wp!r}")


def _require_path(body: dict, key: str) -> None:
    value = body.get(key)
    if not isinstance(value, (list, tuple)) or len(value) < 2:
        raise BadRequestError(f"{key!r} must be a list of at least two datapath ids")
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, str)):
            raise BadRequestError(f"{key!r} contains a non-datapath entry: {item!r}")
        if isinstance(item, str) and not item.isdigit():
            raise BadRequestError(f"{key!r} contains a non-numeric id: {item!r}")
    normalized = [int(v) for v in value]
    if len(set(normalized)) != len(normalized):
        raise BadRequestError(f"{key!r} must be a simple path (no repeats)")


def validate_update_body(body: Any) -> dict:
    """Validate the paper's update request; returns the body for chaining."""
    body = _require_dict(body, "update request")
    for key in ("oldpath", "newpath"):
        if key not in body:
            raise BadRequestError(f"update request needs {key!r}")
        _require_path(body, key)
    _require_wp(body)
    if "interval" in body:
        interval = body["interval"]
        if isinstance(interval, bool) or not isinstance(interval, (int, float)):
            raise BadRequestError(f"'interval' must be milliseconds, got {interval!r}")
        if interval < 0:
            raise BadRequestError(f"'interval' must be non-negative, got {interval!r}")
    for key in UPDATE_BODY_KEYS:
        if key in body and body[key] is not None:
            entries = body[key]
            if not isinstance(entries, list):
                raise BadRequestError(f"{key!r} must be a list of FlowMod bodies")
            for entry in entries:
                _require_dict(entry, f"{key!r} entry")
                if "dpid" not in entry:
                    raise BadRequestError(f"{key!r} entry without 'dpid': {entry!r}")
    return body


#: Keys of the scheduler-service request (``POST /schedule``).
SCHEDULE_BODY_KEYS = (
    "oldpath", "newpath", "wp", "scheduler", "properties",
    "cleanup", "verify", "params",
)


def validate_schedule_body(body: Any) -> dict:
    """Validate a ``POST /schedule`` request (the envelope's wire form).

    The path/waypoint part follows the paper's update format; the rest
    maps one-to-one onto :class:`repro.core.api.ScheduleRequest` fields:
    ``scheduler`` (registry spec string), ``properties`` (explicit
    verification target), ``cleanup``/``verify`` flags, and ``params``
    (engine options).  Scheduler-spec validity itself is checked by the
    registry at execution time.
    """
    body = _require_dict(body, "schedule request")
    unknown = set(body) - set(SCHEDULE_BODY_KEYS)
    if unknown:
        raise BadRequestError(f"unknown schedule request keys: {sorted(unknown)}")
    for key in ("oldpath", "newpath"):
        if key not in body:
            raise BadRequestError(f"schedule request needs {key!r}")
        _require_path(body, key)
    _require_wp(body)
    if "scheduler" in body and not isinstance(body["scheduler"], str):
        raise BadRequestError("'scheduler' must be a registry spec string")
    if "properties" in body and body["properties"] is not None:
        properties = body["properties"]
        if not isinstance(properties, list) or not all(
            isinstance(p, str) for p in properties
        ):
            raise BadRequestError("'properties' must be a list of property names")
    for key in ("cleanup", "verify"):
        if key in body and not isinstance(body[key], bool):
            raise BadRequestError(f"{key!r} must be a boolean")
    if "params" in body and not isinstance(body["params"], dict):
        raise BadRequestError("'params' must be an object of engine options")
    return body


def schedule_result_to_body(result: Any) -> dict:
    """Serialize a :class:`repro.core.api.ScheduleResult` for the wire."""
    return result.to_dict()


def validate_flowentry_body(body: Any) -> dict:
    """Validate an ofctl flow-entry body (``dpid`` plus optional fields)."""
    body = _require_dict(body, "flow entry")
    if "dpid" not in body:
        raise BadRequestError("flow entry body needs a 'dpid'")
    dpid = body["dpid"]
    if isinstance(dpid, bool) or not isinstance(dpid, (int, str)):
        raise BadRequestError(f"'dpid' must be a datapath id, got {dpid!r}")
    if isinstance(dpid, str) and not dpid.isdigit():
        raise BadRequestError(f"'dpid' must be numeric, got {dpid!r}")
    if "match" in body and not isinstance(body["match"], dict):
        raise BadRequestError("'match' must be an object")
    for key in ("priority", "idle_timeout", "hard_timeout", "cookie", "table_id"):
        if key in body:
            value = body[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise BadRequestError(f"{key!r} must be an integer, got {value!r}")
            if value < 0:
                raise BadRequestError(f"{key!r} must be non-negative, got {value!r}")
    return body
