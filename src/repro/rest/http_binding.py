"""Serve a :class:`~repro.rest.api.RestApi` over real HTTP on localhost.

This is how the original demo is driven (curl against the Ryu WSGI app).
The binding uses only the standard library and binds to 127.0.0.1; it runs
the request against the in-process router, which in turn advances the
simulation synchronously.  Intended for the interactive example
(``examples/rest_server_demo.py``), not for tests or benchmarks.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.rest.api import RestApi


def _make_handler(api: RestApi) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        # one simulated network is not thread-safe; serialize requests
        _lock = threading.Lock()

        def _respond(self, method: str) -> None:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            body = None
            if raw:
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError:
                    self._write(400, {"error": "request body is not JSON"})
                    return
            with self._lock:
                response = api.handle(method, self.path, body)
            self._write(response.status, response.body)

        def _write(self, status: int, payload) -> None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._respond("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._respond("POST")

        def log_message(self, fmt: str, *args) -> None:  # quiet by default
            pass

    return Handler


class RestHttpServer:
    """A localhost HTTP front-end for one RestApi."""

    def __init__(self, api: RestApi, port: int = 8080) -> None:
        self.api = api
        self.server = ThreadingHTTPServer(("127.0.0.1", port), _make_handler(api))
        self.port = self.server.server_address[1]
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Serve in a daemon thread; returns immediately."""
        self._thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"
