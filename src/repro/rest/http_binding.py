"""HTTP bindings: serve a router over localhost, and a retrying client.

The server side is how the original demo is driven (curl against the Ryu
WSGI app): :class:`RestHttpServer` binds 127.0.0.1 by default with only
the standard library and runs requests against the in-process router.
It also fronts the campaign fabric coordinator (``repro campaign
serve``).  Binding beyond localhost (``host="0.0.0.0"`` for
multi-machine fleets) requires a shared-secret ``token``: every request
must then carry it in the ``X-Repro-Auth`` header or is refused with a
401 before reaching the router.

The client side, :class:`HttpClient`, is what fabric workers (and any
other library-internal caller) use to talk to a server: connection errors
and 5xx responses get bounded exponential backoff with jitter -- the
server may be restarting, the network blipping -- while 4xx responses
(including an auth mismatch's 401) fail fast with
:class:`~repro.errors.HttpStatusError`, because a malformed request will
not get better by retrying.
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.error
import urllib.request
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import HttpStatusError, TransportError
from repro.metrics import global_collector
from repro.obs import trace as obs
from repro.rest.api import RestApi

#: Headers carrying the trace context across the HTTP boundary.
TRACE_HEADER = "X-Repro-Trace"
SPAN_HEADER = "X-Repro-Span"
#: Shared-secret header checked when the server was given a token.
AUTH_HEADER = "X-Repro-Auth"


def _make_handler(
    api: RestApi, token: str | None = None
) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        # one simulated network is not thread-safe; serialize requests
        _lock = threading.Lock()

        def _respond(self, method: str) -> None:
            if token is not None and self.headers.get(AUTH_HEADER) != token:
                # 401 is a 4xx: clients fast-fail instead of retrying --
                # a wrong secret will not get better with backoff
                self._write(401, {"error": "missing or bad X-Repro-Auth"})
                return
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            body = None
            if raw:
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError:
                    self._write(400, {"error": "request body is not JSON"})
                    return
            # adopt the caller's trace context so the handler's spans
            # (e.g. the coordinator's fabric.submit) join the worker-side
            # trace of the same cell
            context = None
            trace_id = self.headers.get(TRACE_HEADER)
            if trace_id:
                context = {
                    "trace": trace_id,
                    "parent": self.headers.get(SPAN_HEADER),
                }
            ctx_token = obs.attach_context(context)
            try:
                with self._lock:
                    response = api.handle(method, self.path, body)
            finally:
                obs.detach_context(ctx_token)
            self._write(
                response.status, response.body, response.content_type
            )

        def _write(
            self, status: int, payload, content_type: str | None = None
        ) -> None:
            if isinstance(payload, str) and content_type:
                data = payload.encode("utf-8")
            else:
                content_type = "application/json"
                data = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._respond("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._respond("POST")

        def log_message(self, fmt: str, *args) -> None:  # quiet by default
            pass

    return Handler


class RestHttpServer:
    """An HTTP front-end for one RestApi (localhost by default).

    ``host`` widens the bind for multi-machine fleets; anything beyond
    loopback demands a shared-secret ``token`` so a campaign coordinator
    is never exposed unauthenticated.  ``allow_reuse_address`` is on (the
    http.server default), so a restarted coordinator can re-bind its old
    port while TIME_WAIT sockets linger -- crash recovery depends on it.
    """

    def __init__(
        self,
        api: RestApi,
        port: int = 8080,
        *,
        host: str = "127.0.0.1",
        token: str | None = None,
    ) -> None:
        if token is None and host not in ("127.0.0.1", "localhost", "::1"):
            raise ValueError(
                f"refusing to bind {host!r} without a --token shared secret"
            )
        self.api = api
        self.host = host
        self.server = ThreadingHTTPServer(
            (host, port), _make_handler(api, token)
        )
        self.port = self.server.server_address[1]
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Serve in a daemon thread; returns immediately."""
        self._thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    @property
    def url(self) -> str:
        # 0.0.0.0 is a bind address, not a destination; loopback reaches
        # the server from this host either way
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::") else self.host
        return f"http://{host}:{self.port}"


class HttpClient:
    """JSON-over-HTTP client with bounded retry for transient failures.

    ``request`` returns the decoded JSON body on any 2xx.  Connection
    errors, timeouts, and 5xx answers are retried up to ``max_attempts``
    times with exponential backoff (``backoff_base_s`` doubling, capped
    at ``backoff_cap_s``) plus up to 50% deterministic-seedable jitter,
    then raise :class:`~repro.errors.TransportError`.  4xx answers raise
    :class:`~repro.errors.HttpStatusError` immediately -- the request is
    wrong, not the weather.  Retries are counted on the process
    collector (``http_client.retries``).
    """

    def __init__(
        self,
        base_url: str,
        *,
        max_attempts: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        timeout_s: float = 10.0,
        jitter_seed: int | None = None,
        token: str | None = None,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.timeout_s = float(timeout_s)
        self.token = token
        self._rng = random.Random(jitter_seed)
        self._sleep = sleep

    def get(self, path: str):
        return self.request("GET", path)

    def post(self, path: str, body=None):
        return self.request("POST", path, body)

    def request(self, method: str, path: str, body=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers[AUTH_HEADER] = self.token
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        context = obs.current_context()
        if context is not None:
            headers[TRACE_HEADER] = context["trace"]
            if context.get("parent"):
                headers[SPAN_HEADER] = context["parent"]
        last_error: str = ""
        for attempt in range(1, self.max_attempts + 1):
            req = urllib.request.Request(
                url, data=data, headers=headers, method=method.upper()
            )
            try:
                with urllib.request.urlopen(req, timeout=self.timeout_s) as reply:
                    return self._decode(reply.read())
            except urllib.error.HTTPError as exc:
                payload = self._decode(exc.read())
                if 400 <= exc.code < 500:
                    detail = ""
                    if isinstance(payload, dict) and payload.get("error"):
                        detail = f": {payload['error']}"
                    raise HttpStatusError(
                        f"{method} {url} -> {exc.code}{detail}",
                        status=exc.code,
                        body=payload,
                    ) from None
                last_error = f"HTTP {exc.code}"
            except (urllib.error.URLError, ConnectionError, socket.timeout, OSError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            if attempt < self.max_attempts:
                global_collector().increment("http_client.retries")
                self._sleep(self._backoff(attempt))
        raise TransportError(
            f"{method} {url} failed after {self.max_attempts} attempts "
            f"({last_error})"
        )

    def _backoff(self, attempt: int) -> float:
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** (attempt - 1)),
        )
        return base * (1.0 + 0.5 * self._rng.random())

    @staticmethod
    def _decode(raw: bytes):
        if not raw:
            return None
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            return {"raw": raw.decode("utf-8", "replace")}
