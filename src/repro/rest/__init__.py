"""REST layer: the paper's update interface over an in-process router."""

from repro.rest.api import (
    CampaignRestApi,
    RestApi,
    RestResponse,
    Route,
    Router,
    build_campaign_api,
    build_rest_api,
)
from repro.rest.http_binding import HttpClient, RestHttpServer
from repro.rest.schemas import (
    SCHEDULE_BODY_KEYS,
    UPDATE_BODY_KEYS,
    UPDATE_EXTENSION_KEYS,
    UPDATE_HEADER_FIELDS,
    schedule_result_to_body,
    validate_flowentry_body,
    validate_schedule_body,
    validate_update_body,
)

__all__ = [
    "CampaignRestApi",
    "HttpClient",
    "RestApi",
    "RestHttpServer",
    "RestResponse",
    "Route",
    "Router",
    "SCHEDULE_BODY_KEYS",
    "UPDATE_BODY_KEYS",
    "UPDATE_EXTENSION_KEYS",
    "UPDATE_HEADER_FIELDS",
    "build_campaign_api",
    "build_rest_api",
    "schedule_result_to_body",
    "validate_flowentry_body",
    "validate_schedule_body",
    "validate_update_body",
]
