"""REST layer: the paper's update interface over an in-process router."""

from repro.rest.api import RestApi, RestResponse, Route, Router, build_rest_api
from repro.rest.http_binding import RestHttpServer
from repro.rest.schemas import (
    SCHEDULE_BODY_KEYS,
    UPDATE_BODY_KEYS,
    UPDATE_EXTENSION_KEYS,
    UPDATE_HEADER_FIELDS,
    schedule_result_to_body,
    validate_flowentry_body,
    validate_schedule_body,
    validate_update_body,
)

__all__ = [
    "RestApi",
    "RestHttpServer",
    "RestResponse",
    "Route",
    "Router",
    "SCHEDULE_BODY_KEYS",
    "UPDATE_BODY_KEYS",
    "UPDATE_EXTENSION_KEYS",
    "UPDATE_HEADER_FIELDS",
    "build_rest_api",
    "schedule_result_to_body",
    "validate_flowentry_body",
    "validate_schedule_body",
    "validate_update_body",
]
