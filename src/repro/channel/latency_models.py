"""Latency models for control channels and switch rule installation.

Each model draws per-message (or per-FlowMod) delays from a distribution;
models carry no RNG of their own -- a stream from
:class:`~repro.sim.random_source.RandomStreams` is passed at sample time so
components stay independently reproducible.

The lognormal and Pareto shapes follow the measurement literature on
control-plane latencies and hardware flow-table updates (heavy upper
tails); Kuzniar et al. (PAM'15) is the reference for the switch presets in
:mod:`repro.switch.latency`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ChannelError


class LatencyModel:
    """Base class: a distribution of non-negative millisecond delays."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean in ms (used by the cost model and reports)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(LatencyModel):
    """Always ``value`` ms -- the synchronous idealization."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ChannelError(f"negative latency {self.value}")

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(LatencyModel):
    """Uniform in ``[low, high]`` ms."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ChannelError(f"bad uniform range [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Exponential(LatencyModel):
    """Exponential with the given mean, shifted by ``floor`` ms."""

    mean_ms: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_ms <= 0 or self.floor < 0:
            raise ChannelError(f"bad exponential params {self}")

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean_ms)

    def mean(self) -> float:
        return self.floor + self.mean_ms


@dataclass(frozen=True)
class LogNormal(LatencyModel):
    """Lognormal parameterized by its *median* and shape ``sigma``."""

    median: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ChannelError(f"bad lognormal params {self}")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median), self.sigma)

    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2.0)


@dataclass(frozen=True)
class Pareto(LatencyModel):
    """Bounded Pareto: heavy tail truncated at ``cap`` ms.

    ``scale`` is the minimum, ``alpha`` the tail index (smaller = heavier).
    """

    scale: float
    alpha: float = 2.5
    cap: float = 1000.0

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.alpha <= 0 or self.cap < self.scale:
            raise ChannelError(f"bad pareto params {self}")

    def sample(self, rng: random.Random) -> float:
        value = self.scale * (1.0 + rng.paretovariate(self.alpha) - 1.0)
        return min(value, self.cap)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return self.cap  # undefined tail mean; the cap dominates
        raw = self.scale * self.alpha / (self.alpha - 1.0)
        return min(raw, self.cap)


def from_spec(spec: "str | float | LatencyModel") -> LatencyModel:
    """Parse shorthand specs: ``2.0``, ``"uniform:1:5"``, ``"exp:3"``, ...

    Accepted forms: a bare number (constant), ``const:V``, ``uniform:L:H``,
    ``exp:MEAN[:FLOOR]``, ``lognormal:MEDIAN[:SIGMA]``,
    ``pareto:SCALE[:ALPHA[:CAP]]`` -- or an existing model (passed through).
    """
    if isinstance(spec, LatencyModel):
        return spec
    if isinstance(spec, (int, float)):
        return Constant(float(spec))
    try:
        return Constant(float(spec))
    except ValueError:
        pass
    parts = spec.split(":")
    kind, args = parts[0], [float(x) for x in parts[1:]]
    try:
        if kind in ("const", "constant"):
            return Constant(*args)
        if kind == "uniform":
            return Uniform(*args)
        if kind == "exp":
            return Exponential(*args)
        if kind == "lognormal":
            return LogNormal(*args)
        if kind == "pareto":
            return Pareto(*args)
    except TypeError:
        raise ChannelError(f"bad latency spec arguments: {spec!r}") from None
    raise ChannelError(f"unknown latency model {kind!r}")
