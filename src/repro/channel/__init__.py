"""Asynchronous control-channel substrate."""

from repro.channel.base import (
    ChannelStats,
    ControlChannel,
    fifo_channel,
    reordering_channel,
)
from repro.channel.latency_models import (
    Constant,
    Exponential,
    LatencyModel,
    LogNormal,
    Pareto,
    Uniform,
    from_spec,
)

__all__ = [
    "ChannelStats",
    "Constant",
    "ControlChannel",
    "Exponential",
    "LatencyModel",
    "LogNormal",
    "Pareto",
    "Uniform",
    "fifo_channel",
    "from_spec",
    "reordering_channel",
]
