"""Asynchronous control channels between the controller and switches.

The channel is where the paper's problem lives: OpenFlow commands travel
over an asynchronous network, so the time between *sending* a FlowMod and
the rule *taking effect* varies per switch and per message.  A
:class:`ControlChannel` is a duplex, event-driven pipe with a pluggable
latency model, optional loss (modelled as retransmission delay, as TCP
would surface it) and a choice between FIFO delivery (TCP-like, per
direction) and free reordering (the adversarial end-to-end behaviour the
demo guards against).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ChannelClosedError, ChannelError
from repro.channel.latency_models import Constant, LatencyModel
from repro.sim.simulator import Simulator


@dataclass
class ChannelStats:
    """Counters kept per channel, per direction."""

    to_switch_sent: int = 0
    to_switch_delivered: int = 0
    to_controller_sent: int = 0
    to_controller_delivered: int = 0
    retransmissions: int = 0
    latency_sum_ms: float = 0.0

    def mean_latency_ms(self) -> float:
        delivered = self.to_switch_delivered + self.to_controller_delivered
        return self.latency_sum_ms / delivered if delivered else 0.0


class ControlChannel:
    """Duplex controller<->switch channel on a shared simulator.

    Parameters
    ----------
    sim:
        The shared :class:`~repro.sim.simulator.Simulator`.
    latency:
        Per-message one-way delay distribution.
    rng:
        Dedicated random stream (see :class:`~repro.sim.random_source.RandomStreams`).
    fifo:
        When True (default, TCP-like) each direction delivers in send
        order; when False messages may overtake each other.
    drop_prob / rto_ms:
        Loss is surfaced the way TCP surfaces it: a dropped transmission
        costs one retransmission timeout and is retried, so the message
        arrives late rather than never.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | float = 1.0,
        rng: random.Random | None = None,
        name: str = "chan",
        fifo: bool = True,
        drop_prob: float = 0.0,
        rto_ms: float = 50.0,
        max_retries: int = 16,
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise ChannelError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.sim = sim
        self.latency = Constant(float(latency)) if isinstance(latency, (int, float)) else latency
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name
        self.fifo = fifo
        self.drop_prob = drop_prob
        self.rto_ms = rto_ms
        self.max_retries = max_retries
        self.stats = ChannelStats()
        self._closed = False
        self._switch_handler: Callable[[Any], None] | None = None
        self._controller_handler: Callable[[Any], None] | None = None
        # per-direction FIFO horizon: nothing may be delivered before it
        self._horizon = {"switch": 0.0, "controller": 0.0}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind_switch(self, handler: Callable[[Any], None]) -> None:
        """Register the switch-side receive callback."""
        self._switch_handler = handler

    def bind_controller(self, handler: Callable[[Any], None]) -> None:
        """Register the controller-side receive callback."""
        self._controller_handler = handler

    def close(self) -> None:
        """Stop accepting messages (in-flight ones still deliver)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def to_switch(self, message: Any) -> float:
        """Send ``message`` controller->switch; returns the delivery time."""
        self.stats.to_switch_sent += 1
        return self._send(message, "switch")

    def to_controller(self, message: Any) -> float:
        """Send ``message`` switch->controller; returns the delivery time."""
        self.stats.to_controller_sent += 1
        return self._send(message, "controller")

    def _send(self, message: Any, direction: str) -> float:
        if self._closed:
            raise ChannelClosedError(f"channel {self.name!r} is closed")
        delay = self.latency.sample(self.rng)
        retries = 0
        while self.drop_prob and self.rng.random() < self.drop_prob:
            retries += 1
            if retries > self.max_retries:
                raise ChannelError(
                    f"channel {self.name!r} exceeded {self.max_retries} retries"
                )
            delay += self.rto_ms + self.latency.sample(self.rng)
        self.stats.retransmissions += retries
        deliver_at = self.sim.now + delay
        if self.fifo:
            deliver_at = max(deliver_at, self._horizon[direction])
            self._horizon[direction] = deliver_at
        self.stats.latency_sum_ms += deliver_at - self.sim.now
        self.sim.schedule_at(deliver_at, self._deliver, message, direction)
        return deliver_at

    def _deliver(self, message: Any, direction: str) -> None:
        if direction == "switch":
            handler = self._switch_handler
            self.stats.to_switch_delivered += 1
        else:
            handler = self._controller_handler
            self.stats.to_controller_delivered += 1
        if handler is None:
            raise ChannelError(
                f"channel {self.name!r} has no {direction}-side handler bound"
            )
        handler(message)


def fifo_channel(
    sim: Simulator,
    latency: LatencyModel | float = 1.0,
    rng: random.Random | None = None,
    name: str = "chan",
    **kwargs: Any,
) -> ControlChannel:
    """A TCP-like in-order channel (the realistic default)."""
    return ControlChannel(sim, latency=latency, rng=rng, name=name, fifo=True, **kwargs)


def reordering_channel(
    sim: Simulator,
    latency: LatencyModel | float = 1.0,
    rng: random.Random | None = None,
    name: str = "chan",
    **kwargs: Any,
) -> ControlChannel:
    """A channel where messages may overtake each other (adversarial)."""
    return ControlChannel(sim, latency=latency, rng=rng, name=name, fifo=False, **kwargs)
