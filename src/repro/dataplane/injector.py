"""Traffic injection during network updates.

A :class:`PeriodicInjector` pushes probe packets into the network at a
fixed cadence while the controller is busy updating rules, exactly like the
demo's ``h1 ping h2`` running across the transition.  Every probe's fate is
recorded; the counters feed experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.dataplane.packets import Packet
from repro.dataplane.violations import TraceRecord, ViolationCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netlab.network import Network


@dataclass
class FlowSpec:
    """What correct delivery means for the injected flow."""

    source_host: str
    destination_host: str
    waypoint: object | None = None
    packet_factory: Callable[[], Packet] | None = None


@dataclass
class InjectionResult:
    counters: ViolationCounters = field(default_factory=ViolationCounters)
    traces: list[TraceRecord] = field(default_factory=list)

    def finalize(self) -> ViolationCounters:
        """Re-tally fates from traces (per-hop mode resolves them late)."""
        counters = ViolationCounters(injected=len(self.traces))
        for trace in self.traces:
            counters.record(trace.fate)
        self.counters = counters
        return counters

    def violating_traces(self) -> list[TraceRecord]:
        from repro.dataplane.violations import PacketFate

        bad = (PacketFate.BYPASSED_WAYPOINT, PacketFate.LOOPED, PacketFate.DROPPED)
        return [trace for trace in self.traces if trace.fate in bad]


class PeriodicInjector:
    """Inject one probe every ``interval_ms`` until stopped."""

    def __init__(
        self,
        network: "Network",
        flow: FlowSpec,
        interval_ms: float = 0.5,
        start_ms: float = 0.0,
        max_packets: int = 100_000,
    ) -> None:
        self.network = network
        self.flow = flow
        self.interval_ms = interval_ms
        self.start_ms = start_ms
        self.max_packets = max_packets
        self.result = InjectionResult()
        self._stopped = False
        self._started = False

    def start(self) -> None:
        """Arm the injector on the network's simulator."""
        if self._started:
            return
        self._started = True
        self.network.sim.schedule_at(
            max(self.network.sim.now, self.start_ms), self._tick
        )

    def stop(self) -> None:
        """Stop after the current tick (pending probes still complete)."""
        self._stopped = True

    def stop_when_update_completes(self, update_queue, extra_probes: int = 3) -> None:
        """Wire to the round FSM: keep probing a little past completion.

        A few extra probes confirm the final state forwards correctly.
        """
        remaining = {"count": extra_probes}

        def on_complete(_event) -> None:
            def late_stop() -> None:
                self.stop()

            self.network.sim.schedule(
                self.interval_ms * remaining["count"], late_stop
            )

        update_queue.on_update_complete.append(on_complete)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped or len(self.result.traces) >= self.max_packets:
            return
        packet = (
            self.flow.packet_factory()
            if self.flow.packet_factory is not None
            else self.network.default_packet(self.flow.source_host, self.flow.destination_host)
        )
        trace = self.network.inject_from_host(
            self.flow.source_host,
            packet,
            waypoint=self.flow.waypoint,
            destination_host=self.flow.destination_host,
        )
        self.result.traces.append(trace)
        self.network.sim.schedule(self.interval_ms, self._tick)
