"""Dataplane substrate: packets, traffic injection, violation accounting."""

from repro.dataplane.injector import FlowSpec, InjectionResult, PeriodicInjector
from repro.dataplane.packets import (
    Packet,
    icmp_ping,
    ipv4_checksum,
    tcp_packet,
    udp_packet,
)
from repro.dataplane.violations import PacketFate, TraceRecord, ViolationCounters

__all__ = [
    "FlowSpec",
    "InjectionResult",
    "Packet",
    "PacketFate",
    "PeriodicInjector",
    "TraceRecord",
    "ViolationCounters",
    "icmp_ping",
    "ipv4_checksum",
    "tcp_packet",
    "udp_packet",
]
