"""Simulated data packets with a real byte-level codec.

A :class:`Packet` carries the header fields the OpenFlow match subset can
see (Ethernet, optional 802.1Q tag, IPv4, TCP/UDP/ICMP).  ``to_bytes`` /
``from_bytes`` implement the actual header layouts -- including the IPv4
checksum -- so PacketIn/PacketOut frames carry plausible bytes and the
codec can be property-tested for round-trips.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import OpenFlowError
from repro.openflow.constants import (
    ETH_TYPE_IP,
    ETH_TYPE_VLAN,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
)
from repro.openflow.match import int_to_ip, ip_to_int, mac_to_bytes, bytes_to_mac


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 ones-complement checksum over a (padded) header."""
    if len(header) % 2:
        header += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", header):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True)
class Packet:
    """One simulated data packet (defaults describe h1 -> h2 TCP traffic)."""

    eth_src: str = "00:00:00:00:00:01"
    eth_dst: str = "00:00:00:00:00:02"
    eth_type: int = ETH_TYPE_IP
    vlan_vid: int | None = None
    ipv4_src: str = "10.0.0.1"
    ipv4_dst: str = "10.0.0.2"
    ip_proto: int = IP_PROTO_TCP
    ttl: int = 64
    tcp_src: int = 40000
    tcp_dst: int = 80
    payload: bytes = b""

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def fields(self, in_port: int | None = None) -> dict[str, Any]:
        """Header fields as the flow-table matcher sees them."""
        result: dict[str, Any] = {
            "eth_src": self.eth_src,
            "eth_dst": self.eth_dst,
            "eth_type": self.eth_type,
            "ipv4_src": self.ipv4_src,
            "ipv4_dst": self.ipv4_dst,
            "ip_proto": self.ip_proto,
        }
        if in_port is not None:
            result["in_port"] = in_port
        if self.vlan_vid is not None:
            result["vlan_vid"] = self.vlan_vid
        if self.ip_proto == IP_PROTO_TCP:
            result["tcp_src"] = self.tcp_src
            result["tcp_dst"] = self.tcp_dst
        elif self.ip_proto == IP_PROTO_UDP:
            result["udp_src"] = self.tcp_src
            result["udp_dst"] = self.tcp_dst
        return result

    # ------------------------------------------------------------------
    # header rewriting (SET_FIELD / VLAN actions)
    # ------------------------------------------------------------------
    def with_field(self, name: str, value: Any) -> "Packet":
        """A copy with one matchable field rewritten."""
        direct = {
            "eth_src", "eth_dst", "eth_type", "vlan_vid",
            "ipv4_src", "ipv4_dst", "ip_proto", "ttl",
        }
        if name in direct:
            return replace(self, **{name: value})
        if name in ("tcp_src", "udp_src"):
            return replace(self, tcp_src=int(value))
        if name in ("tcp_dst", "udp_dst"):
            return replace(self, tcp_dst=int(value))
        raise OpenFlowError(f"cannot rewrite field {name!r}")

    def with_vlan(self, vid: int) -> "Packet":
        return replace(self, vlan_vid=vid)

    def without_vlan(self) -> "Packet":
        return replace(self, vlan_vid=None)

    def decrement_ttl(self) -> "Packet":
        return replace(self, ttl=self.ttl - 1)

    # ------------------------------------------------------------------
    # byte codec
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to Ethernet [+802.1Q] + IPv4 + L4 bytes."""
        out = bytearray()
        out += mac_to_bytes(self.eth_dst)
        out += mac_to_bytes(self.eth_src)
        if self.vlan_vid is not None:
            out += struct.pack("!HH", ETH_TYPE_VLAN, self.vlan_vid & 0x0FFF)
        out += struct.pack("!H", self.eth_type)
        if self.eth_type != ETH_TYPE_IP:
            return bytes(out + self.payload)
        l4 = self._l4_bytes()
        total_len = 20 + len(l4)
        header_wo_csum = struct.pack(
            "!BBHHHBBH4s4s",
            0x45, 0, total_len, 0, 0, self.ttl, self.ip_proto, 0,
            struct.pack("!I", ip_to_int(self.ipv4_src)),
            struct.pack("!I", ip_to_int(self.ipv4_dst)),
        )
        checksum = ipv4_checksum(header_wo_csum)
        header = header_wo_csum[:10] + struct.pack("!H", checksum) + header_wo_csum[12:]
        return bytes(out) + header + l4

    def _l4_bytes(self) -> bytes:
        if self.ip_proto == IP_PROTO_TCP:
            return (
                struct.pack(
                    "!HHIIBBHHH",
                    self.tcp_src, self.tcp_dst, 0, 0, 5 << 4, 0x18, 0xFFFF, 0, 0,
                )
                + self.payload
            )
        if self.ip_proto == IP_PROTO_UDP:
            return (
                struct.pack("!HHHH", self.tcp_src, self.tcp_dst, 8 + len(self.payload), 0)
                + self.payload
            )
        if self.ip_proto == IP_PROTO_ICMP:
            return struct.pack("!BBHI", 8, 0, 0, 0) + self.payload
        return self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse bytes produced by :meth:`to_bytes` (or close enough)."""
        if len(data) < 14:
            raise OpenFlowError(f"frame too short for Ethernet: {len(data)}")
        eth_dst = bytes_to_mac(data[0:6])
        eth_src = bytes_to_mac(data[6:12])
        offset = 12
        vlan_vid: int | None = None
        (eth_type,) = struct.unpack_from("!H", data, offset)
        offset += 2
        if eth_type == ETH_TYPE_VLAN:
            (tci,) = struct.unpack_from("!H", data, offset)
            vlan_vid = tci & 0x0FFF
            (eth_type,) = struct.unpack_from("!H", data, offset + 2)
            offset += 4
        if eth_type != ETH_TYPE_IP:
            return cls(
                eth_src=eth_src, eth_dst=eth_dst, eth_type=eth_type,
                vlan_vid=vlan_vid, payload=data[offset:],
            )
        if offset + 20 > len(data):
            raise OpenFlowError("truncated IPv4 header")
        (
            ver_ihl, _tos, _total_len, _ident, _frag, ttl, proto, _csum, src_raw, dst_raw,
        ) = struct.unpack_from("!BBHHHBBH4s4s", data, offset)
        if ver_ihl >> 4 != 4:
            raise OpenFlowError(f"not IPv4: version {ver_ihl >> 4}")
        ihl_bytes = (ver_ihl & 0xF) * 4
        l4_offset = offset + ihl_bytes
        ipv4_src = int_to_ip(struct.unpack("!I", src_raw)[0])
        ipv4_dst = int_to_ip(struct.unpack("!I", dst_raw)[0])
        sport, dport, payload = 0, 0, b""
        if proto == IP_PROTO_TCP and l4_offset + 20 <= len(data):
            sport, dport = struct.unpack_from("!HH", data, l4_offset)
            payload = data[l4_offset + 20 :]
        elif proto == IP_PROTO_UDP and l4_offset + 8 <= len(data):
            sport, dport = struct.unpack_from("!HH", data, l4_offset)
            payload = data[l4_offset + 8 :]
        elif proto == IP_PROTO_ICMP and l4_offset + 8 <= len(data):
            payload = data[l4_offset + 8 :]
        return cls(
            eth_src=eth_src,
            eth_dst=eth_dst,
            eth_type=ETH_TYPE_IP,
            vlan_vid=vlan_vid,
            ipv4_src=ipv4_src,
            ipv4_dst=ipv4_dst,
            ip_proto=proto,
            ttl=ttl,
            tcp_src=sport,
            tcp_dst=dport,
            payload=payload,
        )


def tcp_packet(src_ip: str, dst_ip: str, dst_port: int = 80, **kwargs: Any) -> Packet:
    """Convenience constructor for the common TCP case."""
    return Packet(
        ipv4_src=src_ip, ipv4_dst=dst_ip, ip_proto=IP_PROTO_TCP,
        tcp_dst=dst_port, **kwargs,
    )


def udp_packet(src_ip: str, dst_ip: str, dst_port: int = 53, **kwargs: Any) -> Packet:
    """Convenience constructor for UDP probes."""
    return Packet(
        ipv4_src=src_ip, ipv4_dst=dst_ip, ip_proto=IP_PROTO_UDP,
        tcp_dst=dst_port, **kwargs,
    )


def icmp_ping(src_ip: str, dst_ip: str, **kwargs: Any) -> Packet:
    """Convenience constructor for ping probes (h1 ping h2)."""
    return Packet(ipv4_src=src_ip, ipv4_dst=dst_ip, ip_proto=IP_PROTO_ICMP, **kwargs)
