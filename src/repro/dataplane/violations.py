"""Violation accounting for packets crossing an updating network.

The demo's pitch is that unscheduled updates let packets transiently bypass
the waypoint (a security violation), loop, or fall into blackholes.  The
tracer classifies every injected packet's fate; these types hold the
verdicts and the aggregate counters the E4 benchmark reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PacketFate(enum.Enum):
    """What ultimately happened to one traced packet."""

    DELIVERED = "delivered"          # reached the destination host, waypoint ok
    BYPASSED_WAYPOINT = "bypassed"   # reached the destination but skipped w
    LOOPED = "looped"                # TTL expired / revisited a switch
    DROPPED = "dropped"              # no rule matched somewhere en route
    IN_FLIGHT = "in-flight"          # still travelling (per-hop mode)


@dataclass
class TraceRecord:
    """One packet's journey."""

    packet_id: int
    injected_ms: float
    path: list = field(default_factory=list)  # switch dpids in visit order
    fate: PacketFate = PacketFate.IN_FLIGHT
    completed_ms: float | None = None

    def visited(self, dpid) -> bool:
        return dpid in self.path

    @property
    def hops(self) -> int:
        return len(self.path)

    @property
    def latency_ms(self) -> float | None:
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.injected_ms


@dataclass
class ViolationCounters:
    """Aggregates over a traffic run (E4's rows)."""

    injected: int = 0
    delivered: int = 0
    bypassed_waypoint: int = 0
    looped: int = 0
    dropped: int = 0
    in_flight: int = 0

    def record(self, fate: PacketFate) -> None:
        if fate is PacketFate.DELIVERED:
            self.delivered += 1
        elif fate is PacketFate.BYPASSED_WAYPOINT:
            self.bypassed_waypoint += 1
        elif fate is PacketFate.LOOPED:
            self.looped += 1
        elif fate is PacketFate.DROPPED:
            self.dropped += 1
        else:
            self.in_flight += 1

    @property
    def violations(self) -> int:
        """Packets whose fate a consistent update forbids."""
        return self.bypassed_waypoint + self.looped + self.dropped

    @property
    def violation_rate(self) -> float:
        return self.violations / self.injected if self.injected else 0.0

    def as_dict(self) -> dict:
        return {
            "injected": self.injected,
            "delivered": self.delivered,
            "bypassed_waypoint": self.bypassed_waypoint,
            "looped": self.looped,
            "dropped": self.dropped,
            "in_flight": self.in_flight,
            "violations": self.violations,
            "violation_rate": round(self.violation_rate, 6),
        }
