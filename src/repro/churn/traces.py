"""Deterministic seeded churn-trace generators.

A :class:`ChurnTrace` bundles a topology, a set of long-lived flows with
installed initial paths, and a time-ordered event sequence (arrivals,
cancellations, link failures).  Two topology shapes are provided:

``fat-tree``
    A k-ary fat-tree (``size`` = k, even) -- the data-center shape whose
    pod/core structure produces realistic partial-overlap reroutes.
``wan``
    A connected Waxman random graph (``size`` = node count) -- the
    classic ISP-like wide-area shape.

Generation is a pure function of ``(kind, size, params, seed)``: one
``random.Random(seed)`` drives every sample in a fixed order, so the
same inputs reproduce the byte-identical trace on every run, machine,
and worker -- the campaign determinism contract extended to churn.

Arrival times follow a Poisson process at ``rate_per_s`` over
``duration_ms``; each arrival targets a uniformly chosen flow with a
freshly sampled simple path between the flow's fixed endpoints.  Each
arrival is independently cancelled with probability ``cancel_prob`` at a
uniform later instant, and ``link_failures`` random links fail at
uniform instants over the trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.churn.events import (
    ChurnError,
    ChurnEvent,
    LinkFailure,
    UpdateArrival,
    UpdateCancel,
    event_sort_key,
)
from repro.topology import builders
from repro.topology.graph import Topology
from repro.topology.random_graphs import waxman

#: Trace-generator defaults, shared by the CLI and campaign families.
DEFAULT_RATE_PER_S = 50.0
DEFAULT_DURATION_MS = 400.0
DEFAULT_FLOWS = 6
DEFAULT_CANCEL_PROB = 0.1
DEFAULT_LINK_FAILURES = 1
DEFAULT_WAYPOINT_PROB = 0.5

TRACE_KINDS = ("fat-tree", "wan")


@dataclass(frozen=True)
class FlowSpec:
    """One long-lived flow: fixed endpoints, an installed initial path."""

    flow_id: str
    path: tuple

    @property
    def source(self):
        return self.path[0]

    @property
    def destination(self):
        return self.path[-1]


@dataclass
class ChurnTrace:
    """A topology, its flows, and the timed churn events against them."""

    name: str
    kind: str
    size: int
    seed: int
    topology: Topology
    flows: tuple
    events: tuple
    duration_ms: float
    params: dict = field(default_factory=dict)

    @property
    def arrivals(self) -> tuple:
        return tuple(e for e in self.events if isinstance(e, UpdateArrival))

    def summary(self) -> dict:
        """JSON-compatible shape record (no topology dump)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "size": self.size,
            "seed": self.seed,
            "switches": len(self.topology.switches()),
            "links": len(self.topology.links()),
            "flows": len(self.flows),
            "arrivals": sum(
                1 for e in self.events if isinstance(e, UpdateArrival)
            ),
            "cancels": sum(
                1 for e in self.events if isinstance(e, UpdateCancel)
            ),
            "link_failures": sum(
                1 for e in self.events if isinstance(e, LinkFailure)
            ),
            "duration_ms": self.duration_ms,
            "params": dict(self.params),
        }


def sample_simple_path(
    topo: Topology,
    source,
    destination,
    rng: random.Random,
    avoid_links: Iterable[tuple] = (),
    max_tries: int = 200,
):
    """Randomized-DFS simple path avoiding dead links; None when stuck.

    The shared sampler of the trace generator (pristine topology) and the
    online controller's re-planner (``avoid_links`` = failed links).
    Link avoidance is direction-insensitive.
    """
    dead = set()
    for u, v in avoid_links:
        dead.add((u, v))
        dead.add((v, u))
    for _ in range(max_tries):
        path = [source]
        seen = {source}
        node = source
        while node != destination:
            options = [
                n
                for n in topo.neighbors(node)
                if n not in seen and (node, n) not in dead
            ]
            if not options:
                break
            node = rng.choice(options)
            path.append(node)
            seen.add(node)
        if node == destination:
            return tuple(path)
    return None


def _sample_flows(
    topo: Topology, n_flows: int, rng: random.Random
) -> tuple:
    switches = topo.switches()
    if len(switches) < 2:
        raise ChurnError("churn traces need at least two switches")
    flows = []
    for index in range(n_flows):
        for _ in range(200):
            source, destination = rng.sample(switches, 2)
            path = sample_simple_path(topo, source, destination, rng)
            if path is not None and len(path) >= 3:
                flows.append(FlowSpec(flow_id=f"f{index}", path=path))
                break
        else:
            raise ChurnError(
                f"could not sample an initial path for flow {index}"
            )
    return tuple(flows)


def _build_topology(kind: str, size: int, seed: int) -> Topology:
    if kind == "fat-tree":
        return builders.fat_tree(size)
    if kind == "wan":
        return waxman(size, seed=random.Random(seed))
    raise ChurnError(f"unknown churn topology kind {kind!r}; known: {TRACE_KINDS}")


def generate_trace(
    kind: str,
    size: int,
    seed: int,
    rate_per_s: float = DEFAULT_RATE_PER_S,
    duration_ms: float = DEFAULT_DURATION_MS,
    flows: int = DEFAULT_FLOWS,
    cancel_prob: float = DEFAULT_CANCEL_PROB,
    link_failures: int = DEFAULT_LINK_FAILURES,
    waypoint_prob: float = DEFAULT_WAYPOINT_PROB,
) -> ChurnTrace:
    """Generate one deterministic churn trace (see module docstring)."""
    if rate_per_s <= 0:
        raise ChurnError(f"need a positive arrival rate, got {rate_per_s}")
    if duration_ms <= 0:
        raise ChurnError(f"need a positive duration, got {duration_ms}")
    rng = random.Random(seed)
    topo = _build_topology(kind, size, seed)
    flow_specs = _sample_flows(topo, flows, rng)

    events: list[ChurnEvent] = []
    clock_ms = 0.0
    request_index = 0
    rate_per_ms = rate_per_s / 1000.0
    while True:
        clock_ms += rng.expovariate(rate_per_ms)
        if clock_ms >= duration_ms:
            break
        flow = rng.choice(flow_specs)
        target = sample_simple_path(topo, flow.source, flow.destination, rng)
        if target is None:  # pragma: no cover - connected generators
            continue
        arrival = UpdateArrival(
            time_ms=round(clock_ms, 6),
            request_id=f"r{request_index}",
            flow_id=flow.flow_id,
            target_path=target,
            waypointed=rng.random() < waypoint_prob,
        )
        request_index += 1
        events.append(arrival)
        if rng.random() < cancel_prob:
            cancel_at = rng.uniform(arrival.time_ms, duration_ms)
            events.append(
                UpdateCancel(
                    time_ms=round(cancel_at, 6), request_id=arrival.request_id
                )
            )
    switches = set(topo.switches())
    fabric_links = [
        link
        for link in topo.links()
        if link.a in switches and link.b in switches
    ]
    for _ in range(max(0, int(link_failures))):
        if not fabric_links:
            break
        link = rng.choice(fabric_links)
        events.append(
            LinkFailure(
                time_ms=round(rng.uniform(0.0, duration_ms), 6),
                link=tuple(sorted(link.endpoints(), key=repr)),
            )
        )
    events.sort(key=event_sort_key)
    params = {
        "rate_per_s": rate_per_s,
        "duration_ms": duration_ms,
        "flows": flows,
        "cancel_prob": cancel_prob,
        "link_failures": link_failures,
        "waypoint_prob": waypoint_prob,
    }
    return ChurnTrace(
        name=f"churn-{kind}-{size}-s{seed}",
        kind=kind,
        size=size,
        seed=seed,
        topology=topo,
        flows=flow_specs,
        events=tuple(events),
        duration_ms=duration_ms,
        params=params,
    )


def trace_params(params: Mapping) -> dict:
    """Coerce campaign-style params into :func:`generate_trace` kwargs."""
    known = {
        "rate_per_s": float,
        "duration_ms": float,
        "flows": int,
        "cancel_prob": float,
        "link_failures": int,
        "waypoint_prob": float,
    }
    unknown = set(params) - set(known)
    if unknown:
        raise ChurnError(
            f"unknown churn trace params {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    return {name: cast(params[name]) for name, cast in known.items() if name in params}
