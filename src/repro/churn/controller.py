"""Online consistent-update controller under topology churn.

The batch pipeline schedules one :class:`~repro.core.problem.UpdateProblem`
at a time, from scratch.  This controller instead lives on the
deterministic simulator and absorbs a *stream* of stimuli -- arrivals,
cancellations, link failures -- while keeping every in-flight update
transiently safe.  The design centres on three ideas:

**One long-lived oracle per update.**  Each admitted request builds its
:class:`~repro.core.oracle.SafetyOracle` once and then drives it purely
through deltas across every round of its lifetime: ``try_apply`` grows a
round greedily, ``commit_round`` settles it when the switches confirm,
``revert`` retracts a planned-but-unissued round, and the next round
continues from the committed state -- the union graph is never rebuilt.

**A retractable plan window.**  Planning a round (``try_apply`` calls)
and issuing it to the switches are separated by ``plan_latency_ms``.
Until the issue instant the round exists only inside the oracle, so a
cancellation, preemption, or link failure in that window reverts the
flexible nodes and retracts the issue timer
(:meth:`~repro.sim.events.ScheduledEvent.cancel`) -- nothing physical
happened yet.  Once issued, flips are irreversible: interruptions wait
for the round boundary, where the round commits first.

**Failure-driven re-planning.**  A link failure invalidates every update
whose target crosses the dead link and strands idle flows whose
installed path crosses it.  The controller re-plans the former and
synthesizes *restoration* updates for the latter, processing
``replan_budget`` victims immediately and deferring the rest on
staggered timers (retracted if the victim settles first).  A re-plan
restarts the update from its *effective* current path -- the walk under
the committed-only configuration -- with a freshly sampled target that
avoids all failed links.

Safety is audited from the outside: every flip triggers a probe walk of
the transient configuration, classified with the dataplane vocabulary
(:class:`~repro.dataplane.violations.PacketFate`).  In scheduled mode
the oracle guarantees every probe is clean -- any subset of an
oracle-safe round's flips is a configuration the FLEX phase already
covered.  The unscheduled one-shot baseline (``scheduled=False``) flips
everything in one staggered round and shows the violations the paper's
schedulers exist to prevent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.churn.events import (
    ChurnError,
    ChurnEvent,
    LinkFailure,
    UpdateArrival,
    UpdateCancel,
)
from repro.churn.metrics import ChurnMetrics, UpdateLifecycle
from repro.churn.traces import ChurnTrace, sample_simple_path
from repro.controller.update_queue import RoundTiming
from repro.core.oracle import oracle_for
from repro.core.problem import Configuration, RuleState, UpdateProblem, trace_walk
from repro.core.verify import Property
from repro.dataplane.violations import PacketFate
from repro.obs import trace as obs
from repro.sim.random_source import RandomStreams, derive_seed
from repro.sim.simulator import Simulator

#: Lifecycle phases of an in-flight update.
PLANNING = "planning"    # round chosen in the oracle, issue timer pending
EXECUTING = "executing"  # flips in flight; irreversible until the boundary
IDLE = "idle"            # between rounds (next-plan timer pending)


@dataclass
class ChurnPolicy:
    """Knobs of the online controller.

    ``preempt`` is the defer-vs-preempt switch: a mid-update arrival for
    a flow either supersedes the in-flight update at the next safe point
    (preempt) or queues behind it (defer).  ``replan_budget`` bounds how
    many failure victims re-plan at the failure instant; the remainder
    re-plan on ``replan_defer_ms``-staggered timers.
    """

    scheduled: bool = True
    preempt: bool = True
    plan_latency_ms: float = 2.0
    flip_latency_ms: float = 1.0
    flip_stagger_ms: float = 0.5
    round_interval_ms: float = 1.0
    replan_budget: int = 2
    replan_defer_ms: float = 5.0
    max_replans: int = 3
    include_cleanup: bool = True


def policy_for_scheduler(scheduler, **overrides) -> ChurnPolicy:
    """Map a registry scheduler onto a churn policy.

    A scheduler with an empty consistency guarantee (the one-shot
    baseline) runs the unscheduled mode; everything else runs the
    oracle-backed scheduled mode.
    """
    return ChurnPolicy(scheduled=bool(scheduler.guarantee), **overrides)


@dataclass
class _Request:
    """An admitted (not yet settled) update request."""

    request_id: str
    target_path: tuple
    waypointed: bool
    record: UpdateLifecycle


@dataclass
class _ActiveUpdate:
    """The in-flight update of one flow."""

    request: _Request
    flow: "_FlowState"
    problem: UpdateProblem
    oracle: object  # SafetyOracle | None (unscheduled mode)
    target: tuple
    remaining: set
    committed: set = field(default_factory=set)
    phase: str = IDLE
    round_nodes: list = field(default_factory=list)
    flips_left: int = 0
    issue_event: object = None
    next_plan_event: object = None
    deferred_event: object = None
    cancel_requested: bool = False
    needs_replan: bool = False

    @property
    def record(self) -> UpdateLifecycle:
        return self.request.record


@dataclass
class _FlowState:
    """One long-lived flow: its installed path and its request queue."""

    spec: object
    current_path: tuple
    active: _ActiveUpdate | None = None
    pending: list = field(default_factory=list)
    restore_event: object = None


class OnlineChurnController:
    """Drive one churn trace to quiescence on a fresh simulator."""

    def __init__(self, trace: ChurnTrace, policy: ChurnPolicy | None = None):
        self.trace = trace
        self.policy = policy or ChurnPolicy()
        self.sim = Simulator()
        self.metrics = ChurnMetrics()
        self.streams = RandomStreams(derive_seed(trace.seed, "churn"))
        self.flows = {
            spec.flow_id: _FlowState(spec=spec, current_path=tuple(spec.path))
            for spec in trace.flows
        }
        self.failed_links: set = set()  # both directions of every dead link
        self._restore_counter = itertools.count(1)
        self._flow_of: dict = {}   # request_id -> _FlowState
        self._spans: dict = {}     # request_id -> live obs span
        self._in_flight = 0

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> ChurnMetrics:
        for event in self.trace.events:
            self.sim.schedule_at(event.time_ms, self._dispatch, event)
        with obs.span(
            "churn.run",
            trace=self.trace.name,
            seed=self.trace.seed,
            scheduled=self.policy.scheduled,
        ) as span:
            self.sim.run()
            span.set_attrs(
                arrivals=self.metrics.arrivals,
                rounds=self.metrics.rounds_issued,
                violations=self.metrics.transient_violations,
                quiescent=self.metrics.quiescent,
            )
        if not self.metrics.quiescent:  # pragma: no cover - defensive
            raise ChurnError("simulator drained but updates never settled")
        return self.metrics

    def _dispatch(self, event: ChurnEvent) -> None:
        if isinstance(event, UpdateArrival):
            self._on_arrival(event)
        elif isinstance(event, UpdateCancel):
            self._on_cancel(event)
        elif isinstance(event, LinkFailure):
            self._on_link_failure(event)
        else:  # pragma: no cover - closed trace vocabulary
            raise ChurnError(f"unknown churn event {event!r}")

    # ------------------------------------------------------------------
    # stimuli
    # ------------------------------------------------------------------
    def _on_arrival(self, arrival: UpdateArrival) -> None:
        flow = self.flows.get(arrival.flow_id)
        if flow is None:
            raise ChurnError(f"arrival for unknown flow {arrival.flow_id!r}")
        record = UpdateLifecycle(
            request_id=arrival.request_id,
            flow_id=arrival.flow_id,
            arrived_ms=self.sim.now,
            waypointed=arrival.waypointed,
        )
        self.metrics.open_lifecycle(record)
        self.metrics.arrivals += 1
        self._flow_of[arrival.request_id] = flow
        request = _Request(
            request_id=arrival.request_id,
            target_path=tuple(arrival.target_path),
            waypointed=arrival.waypointed,
            record=record,
        )
        self._admit(flow, request)

    def _admit(self, flow: _FlowState, request: _Request) -> None:
        if self.policy.preempt:
            # newest wins: anything still waiting is superseded outright
            for waiting in flow.pending:
                self._settle(waiting.record, "superseded")
            flow.pending = [request]
            active = flow.active
            if active is None:
                self._pump(flow)
            elif active.phase in (PLANNING, IDLE):
                # nothing irreversible in flight: hand over immediately
                self._retract(active)
                self._finish_active(active, "superseded")
            # EXECUTING: the round boundary hands over (flips are physical)
        else:
            flow.pending.append(request)
            self._pump(flow)

    def _on_cancel(self, cancel: UpdateCancel) -> None:
        record = self.metrics.lifecycles.get(cancel.request_id)
        if record is None or record.settled:
            self.metrics.cancels_noop += 1
            return
        flow = self._flow_of[cancel.request_id]
        active = flow.active
        if active is not None and active.request.request_id == cancel.request_id:
            if active.phase == EXECUTING:
                # flips are in flight: finish the round, then settle
                active.cancel_requested = True
            else:
                self._retract(active)
                self._finish_active(active, "cancelled")
        else:
            flow.pending = [
                waiting
                for waiting in flow.pending
                if waiting.request_id != cancel.request_id
            ]
            self._settle(record, "cancelled")

    def _on_link_failure(self, failure: LinkFailure) -> None:
        u, v = failure.link
        self.failed_links.add((u, v))
        self.failed_links.add((v, u))
        obs.event("churn.link_failure", link=repr(failure.link))
        # Victims, in deterministic flow order: in-flight updates whose
        # target crosses the dead link, then idle flows stranded on it.
        replan_victims: list = []
        restore_victims: list = []
        for flow_id in sorted(self.flows):
            flow = self.flows[flow_id]
            active = flow.active
            if active is not None:
                if self._crosses_failed(active.target):
                    replan_victims.append(active)
            elif self._crosses_failed(flow.current_path):
                restore_victims.append(flow)
        budget = max(0, int(self.policy.replan_budget))
        deferred_rank = 0
        for active in replan_victims:
            active.needs_replan = True
            if active.phase == EXECUTING:
                continue  # the round boundary re-plans; no timer needed
            self._retract(active)
            if budget > 0:
                budget -= 1
                self._replan_or_abort(active, reason="link-failure")
            else:
                deferred_rank += 1
                active.deferred_event = self.sim.schedule(
                    self.policy.replan_defer_ms * deferred_rank,
                    self._deferred_replan,
                    active,
                )
        for flow in restore_victims:
            if budget > 0:
                budget -= 1
                self._start_restoration(flow)
            else:
                deferred_rank += 1
                flow.restore_event = self.sim.schedule(
                    self.policy.replan_defer_ms * deferred_rank,
                    self._deferred_restoration,
                    flow,
                )

    def _deferred_replan(self, active: _ActiveUpdate) -> None:
        active.deferred_event = None
        if active.record.settled or active.flow.active is not active:
            return  # settled or superseded while the timer ran
        if active.phase != IDLE or not active.needs_replan:
            return  # a round boundary already handled it
        self._replan_or_abort(active, reason="link-failure")

    def _deferred_restoration(self, flow: _FlowState) -> None:
        flow.restore_event = None
        if flow.active is None and self._crosses_failed(flow.current_path):
            self._start_restoration(flow)

    # ------------------------------------------------------------------
    # update lifecycle
    # ------------------------------------------------------------------
    def _pump(self, flow: _FlowState) -> None:
        if flow.active is None and flow.pending:
            self._start_update(flow, flow.pending.pop(0))

    def _start_update(self, flow: _FlowState, request: _Request) -> None:
        record = request.record
        if flow.restore_event is not None:
            # the fresh update routes around failures; restoration is moot
            flow.restore_event.cancel()
            flow.restore_event = None
        target = tuple(request.target_path)
        if self._crosses_failed(target):
            # the requested path died before we could plan it: re-route
            resampled = self._sample_target(flow, record.request_id)
            if resampled is None:
                self._settle(record, "aborted")
                self._pump(flow)
                return
            record.replans += 1
            self.metrics.replans += 1
            target = resampled
            request.target_path = target
        current = tuple(flow.current_path)
        if target == current:
            self._settle(record, "noop")
            self._pump(flow)
            return
        if record.started_ms is None:
            record.started_ms = self.sim.now
        if record.request_id not in self._spans:
            self._spans[record.request_id] = obs.span(
                "churn.update",
                request=record.request_id,
                flow=record.flow_id,
                waypointed=request.waypointed,
            )
        waypoint = (
            self._resolve_waypoint(current, target) if request.waypointed else None
        )
        problem = UpdateProblem(
            current, target, waypoint=waypoint, name=record.request_id
        )
        oracle = None
        if self.policy.scheduled:
            properties = [Property.BLACKHOLE, Property.RLF]
            if waypoint is not None:
                properties.append(Property.WPE)
            oracle = oracle_for(problem, tuple(properties))
            oracle.reset()
        remaining = set(problem.required_updates)
        if self.policy.include_cleanup:
            remaining |= problem.cleanup_updates
        active = _ActiveUpdate(
            request=request,
            flow=flow,
            problem=problem,
            oracle=oracle,
            target=target,
            remaining=remaining,
        )
        flow.active = active
        self._in_flight += 1
        self.metrics.peak_in_flight = max(self.metrics.peak_in_flight, self._in_flight)
        if not remaining:  # pragma: no cover - distinct paths always differ
            self._finish_active(active, "done")
            return
        self._plan_round(active)

    @staticmethod
    def _resolve_waypoint(current: tuple, target: tuple):
        """Deterministic common interior node of both paths (or None)."""
        common = set(current[1:-1]) & set(target[1:-1])
        if not common:
            return None
        return min(common, key=repr)

    def _plan_round(self, active: _ActiveUpdate) -> None:
        active.next_plan_event = None
        if active.cancel_requested:
            self._finish_active(active, "cancelled")
            return
        if self.policy.preempt and active.flow.pending:
            self._finish_active(active, "superseded")
            return
        if active.needs_replan:
            self._replan_or_abort(active, reason="link-failure")
            return
        if active.oracle is None:
            # unscheduled baseline: everything in one staggered round
            round_nodes = sorted(active.remaining, key=repr)
        else:
            round_nodes = [
                node
                for node in sorted(active.remaining, key=repr)
                if active.oracle.try_apply(node)
            ]
            if not round_nodes:
                # greedily stuck: a different target may unstick it
                self._replan_or_abort(active, reason="stuck")
                return
        active.round_nodes = round_nodes
        active.phase = PLANNING
        active.issue_event = self.sim.schedule(
            self.policy.plan_latency_ms, self._issue_round, active
        )

    def _retract(self, active: _ActiveUpdate) -> None:
        """Undo everything retractable: planned rounds and pending timers."""
        if active.issue_event is not None:
            active.issue_event.cancel()
            active.issue_event = None
        if active.next_plan_event is not None:
            active.next_plan_event.cancel()
            active.next_plan_event = None
        if active.deferred_event is not None:
            active.deferred_event.cancel()
            active.deferred_event = None
        if active.phase == PLANNING and active.oracle is not None:
            for node in active.round_nodes:
                active.oracle.revert(node)
        active.round_nodes = []
        active.phase = IDLE

    def _issue_round(self, active: _ActiveUpdate) -> None:
        active.issue_event = None
        active.phase = EXECUTING
        record = active.record
        record.rounds.append(
            RoundTiming(index=len(record.rounds), started_ms=self.sim.now)
        )
        self.metrics.rounds_issued += 1
        active.flips_left = len(active.round_nodes)
        for rank, node in enumerate(active.round_nodes):
            self.sim.schedule(
                self.policy.flip_latency_ms + rank * self.policy.flip_stagger_ms,
                self._flip,
                active,
                node,
            )

    def _flip(self, active: _ActiveUpdate, node) -> None:
        active.committed.add(node)
        active.record.flips += 1
        self.metrics.flips += 1
        self._probe(active)
        active.flips_left -= 1
        if active.flips_left == 0:
            self._complete_round(active)

    def _probe(self, active: _ActiveUpdate) -> None:
        """Audit the transient configuration with a dataplane-style walk."""
        problem = active.problem
        config = Configuration(
            problem, {node: RuleState.NEW for node in active.committed}
        )
        walk = config.walk_from_source()
        if walk.delivered:
            waypoint = problem.waypoint
            if waypoint is not None and not walk.traversed(waypoint):
                fate = PacketFate.BYPASSED_WAYPOINT
            else:
                fate = PacketFate.DELIVERED
        elif walk.looped:
            fate = PacketFate.LOOPED
        else:
            fate = PacketFate.DROPPED
        crossed = any(
            (a, b) in self.failed_links
            for a, b in zip(walk.visited, walk.visited[1:])
        )
        self.metrics.record_probe(active.record, fate, crossed)

    def _complete_round(self, active: _ActiveUpdate) -> None:
        record = active.record
        timing = record.rounds[-1]
        timing.finished_ms = self.sim.now
        if active.oracle is not None:
            active.oracle.commit_round()
        active.remaining -= set(active.round_nodes)
        active.round_nodes = []
        active.phase = IDLE
        if not active.remaining:
            self._finish_active(active, "done")
        elif active.cancel_requested:
            self._finish_active(active, "cancelled")
        else:
            active.next_plan_event = self.sim.schedule(
                self.policy.round_interval_ms, self._plan_round, active
            )

    def _replan_or_abort(self, active: _ActiveUpdate, reason: str) -> None:
        record = active.record
        flow = active.flow
        if record.replans >= self.policy.max_replans:
            self._finish_active(active, "aborted")
            return
        record.replans += 1
        self.metrics.replans += 1
        active.needs_replan = False
        obs.event(
            "churn.replan",
            request=record.request_id,
            reason=reason,
            attempt=record.replans,
        )
        # restart from the physically installed state: the walk under the
        # committed-only configuration is the flow's effective path now
        effective = self._effective_path(active)
        target = self._sample_target_from(effective, record.request_id)
        flow.current_path = effective
        flow.active = None
        self._in_flight -= 1
        if target is None:
            flow.active = active  # settle via the common path
            self._in_flight += 1
            self._finish_active(active, "aborted")
            return
        request = active.request
        request.target_path = target
        self._start_update(flow, request)

    def _finish_active(self, active: _ActiveUpdate, status: str) -> None:
        flow = active.flow
        flow.active = None
        self._in_flight -= 1
        if active.deferred_event is not None:
            active.deferred_event.cancel()
            active.deferred_event = None
        if status == "done":
            flow.current_path = active.target
        else:
            flow.current_path = self._effective_path(active)
        self._settle(active.record, status)
        self._pump(flow)
        if flow.active is None and self._crosses_failed(flow.current_path):
            # the update landed the flow on a dead link: repair it
            self._start_restoration(flow)

    def _settle(self, record: UpdateLifecycle, status: str) -> None:
        self.metrics.settle(record, status, self.sim.now)
        span = self._spans.pop(record.request_id, None)
        if span is not None:
            span.set_attrs(
                rounds=len(record.rounds),
                flips=record.flips,
                replans=record.replans,
                violations=record.violations,
                quiescence_ms=record.time_to_quiescence_ms,
            )
            span.end(status)

    # ------------------------------------------------------------------
    # restoration and re-routing helpers
    # ------------------------------------------------------------------
    def _start_restoration(self, flow: _FlowState) -> None:
        flow.restore_event = None
        request_id = f"{flow.spec.flow_id}-restore{next(self._restore_counter)}"
        record = UpdateLifecycle(
            request_id=request_id,
            flow_id=flow.spec.flow_id,
            arrived_ms=self.sim.now,
        )
        self.metrics.open_lifecycle(record)
        self.metrics.restorations += 1
        self._flow_of[request_id] = flow
        target = self._sample_target(flow, request_id)
        if target is None:
            self._settle(record, "aborted")
            return
        self._start_update(
            flow,
            _Request(
                request_id=request_id,
                target_path=target,
                waypointed=False,
                record=record,
            ),
        )

    def _sample_target(self, flow: _FlowState, request_id: str):
        return self._sample_target_from(tuple(flow.current_path), request_id)

    def _sample_target_from(self, current: tuple, request_id: str):
        rng = self.streams.stream(f"replan:{request_id}")
        return sample_simple_path(
            self.trace.topology,
            current[0],
            current[-1],
            rng,
            avoid_links=self.failed_links,
        )

    def _effective_path(self, active: _ActiveUpdate) -> tuple:
        """The walk under the committed-only configuration.

        Falls back to the last known delivered path (the problem's old
        path) when the partial state does not deliver -- only reachable
        in the unscheduled baseline, whose transient states may drop.
        """
        committed = active.committed
        problem = active.problem

        def next_hop(node):
            state = RuleState.NEW if node in committed else RuleState.OLD
            return problem.next_hop(node, state)

        walk = trace_walk(problem, next_hop)
        if walk.delivered:
            return tuple(walk.visited)
        return tuple(problem.old_path.nodes)

    def _crosses_failed(self, path) -> bool:
        if not self.failed_links:
            return False
        return any((a, b) in self.failed_links for a, b in zip(path, path[1:]))


def run_churn(trace: ChurnTrace, policy: ChurnPolicy | None = None) -> ChurnMetrics:
    """Drive ``trace`` to quiescence and return the run's metrics."""
    return OnlineChurnController(trace, policy=policy).run()
