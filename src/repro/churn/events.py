"""Churn-trace event types.

A churn trace is a timed sequence of control-plane stimuli delivered to
the online controller over the deterministic simulator
(:class:`repro.sim.simulator.Simulator`): update *arrivals* (a flow wants
a new path), *cancellations* (an earlier request is withdrawn), and
*link failures* (the topology changes underneath in-flight rounds).
Each event type is a frozen dataclass so traces are hashable-by-parts,
picklable across campaign pool workers, and trivially serializable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class ChurnError(ReproError):
    """Malformed churn trace or controller misuse."""


@dataclass(frozen=True)
class ChurnEvent:
    """Base: something that happens at a simulated instant (ms)."""

    time_ms: float


@dataclass(frozen=True)
class UpdateArrival(ChurnEvent):
    """A request to move ``flow_id`` onto ``target_path``.

    ``waypointed`` asks the controller to enforce waypoint traversal
    through a deterministic common interior node of the current and
    target paths (when one exists); the concrete waypoint is resolved at
    processing time because only the controller knows the flow's current
    path.
    """

    request_id: str = ""
    flow_id: str = ""
    target_path: tuple = ()
    waypointed: bool = False

    def __post_init__(self) -> None:
        if not self.request_id or not self.flow_id:
            raise ChurnError("an arrival needs request_id and flow_id")
        if len(self.target_path) < 2:
            raise ChurnError(
                f"arrival {self.request_id!r} needs a target path of >= 2 "
                f"nodes, got {self.target_path!r}"
            )


@dataclass(frozen=True)
class UpdateCancel(ChurnEvent):
    """Withdraw an earlier request (no-op if it already settled)."""

    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ChurnError("a cancellation needs a request_id")


@dataclass(frozen=True)
class LinkFailure(ChurnEvent):
    """Bidirectional link ``(u, v)`` goes down and stays down.

    In-flight updates whose target path crosses the link are invalidated
    and must re-plan; idle flows whose installed path crosses it get a
    restoration update synthesized by the controller.
    """

    link: tuple = ()

    def __post_init__(self) -> None:
        if len(self.link) != 2 or self.link[0] == self.link[1]:
            raise ChurnError(f"a link failure needs a (u, v) pair, got {self.link!r}")

    def matches(self, u, v) -> bool:
        a, b = self.link
        return (u == a and v == b) or (u == b and v == a)


def event_sort_key(event: ChurnEvent) -> tuple:
    """Deterministic trace order: time, then kind rank, then identity.

    Simultaneous events process arrivals before cancellations before
    failures, so a same-instant cancel of a same-instant arrival is
    well-defined (it cancels it) on every run.
    """
    if isinstance(event, UpdateArrival):
        return (event.time_ms, 0, event.request_id)
    if isinstance(event, UpdateCancel):
        return (event.time_ms, 1, event.request_id)
    if isinstance(event, LinkFailure):
        return (event.time_ms, 2, repr(event.link))
    raise ChurnError(f"unknown churn event {event!r}")
