"""Continuous online scheduling under topology churn.

Update requests arrive over simulated time; an online controller
schedules them incrementally against one long-lived safety oracle per
update while absorbing cancellations and link failures.  See
:mod:`repro.churn.controller` for the design.
"""

from repro.churn.controller import (
    ChurnPolicy,
    OnlineChurnController,
    policy_for_scheduler,
    run_churn,
)
from repro.churn.events import (
    ChurnError,
    ChurnEvent,
    LinkFailure,
    UpdateArrival,
    UpdateCancel,
    event_sort_key,
)
from repro.churn.metrics import ChurnMetrics, UpdateLifecycle
from repro.churn.traces import (
    ChurnTrace,
    FlowSpec,
    generate_trace,
    sample_simple_path,
    trace_params,
)

__all__ = [
    "ChurnError",
    "ChurnEvent",
    "ChurnMetrics",
    "ChurnPolicy",
    "ChurnTrace",
    "FlowSpec",
    "LinkFailure",
    "OnlineChurnController",
    "UpdateArrival",
    "UpdateCancel",
    "UpdateLifecycle",
    "event_sort_key",
    "generate_trace",
    "policy_for_scheduler",
    "run_churn",
    "sample_simple_path",
    "trace_params",
]
