"""Churn-run accounting: lifecycles, quiescence, transient violations.

The online controller feeds three layers of measurement:

* per-request :class:`UpdateLifecycle` records (arrival → settle, with
  the executed :class:`~repro.controller.update_queue.RoundTiming` list
  -- dumped via the partial-tolerant ``to_dict`` so mid-update snapshots
  never crash on a still-running round);
* a global :class:`~repro.dataplane.violations.ViolationCounters` fed by
  the probe checker -- every rule-walk probe is one "packet" classified
  into the dataplane vocabulary (delivered / bypassed / looped /
  dropped);
* scalar fleet counters (rounds issued, peak in-flight updates,
  re-plans, restorations, time to quiescence).

``to_dict`` is wall-clock-free and key-sorted at serialization time, so
two same-seed runs produce byte-identical JSON -- the determinism gate
of ``make churn-smoke``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.update_queue import RoundTiming
from repro.dataplane.violations import PacketFate, ViolationCounters

#: Terminal request statuses (everything else is still moving).
SETTLED_STATUSES = frozenset(
    {"done", "cancelled", "aborted", "superseded", "noop"}
)


@dataclass
class UpdateLifecycle:
    """One request's arrival→quiescence record."""

    request_id: str
    flow_id: str
    arrived_ms: float
    waypointed: bool = False
    started_ms: float | None = None
    settled_ms: float | None = None
    status: str = "queued"
    rounds: list[RoundTiming] = field(default_factory=list)
    flips: int = 0
    replans: int = 0
    probes: int = 0
    violations: int = 0

    @property
    def settled(self) -> bool:
        return self.status in SETTLED_STATUSES

    @property
    def time_to_quiescence_ms(self) -> float | None:
        if self.settled_ms is None:
            return None
        return self.settled_ms - self.arrived_ms

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "flow_id": self.flow_id,
            "arrived_ms": self.arrived_ms,
            "started_ms": self.started_ms,
            "settled_ms": self.settled_ms,
            "time_to_quiescence_ms": self.time_to_quiescence_ms,
            "status": self.status,
            "waypointed": self.waypointed,
            # partial dumps: a mid-update snapshot may hold a running round
            "rounds": [timing.to_dict() for timing in self.rounds],
            "n_rounds": len(self.rounds),
            "flips": self.flips,
            "replans": self.replans,
            "probes": self.probes,
            "violations": self.violations,
        }


@dataclass
class ChurnMetrics:
    """Aggregates over one churn-trace run."""

    arrivals: int = 0
    completed: int = 0
    cancelled: int = 0
    cancels_noop: int = 0
    aborted: int = 0
    superseded: int = 0
    noops: int = 0
    replans: int = 0
    restorations: int = 0
    rounds_issued: int = 0
    flips: int = 0
    peak_in_flight: int = 0
    failed_link_crossings: int = 0
    time_to_quiescence_ms: float = 0.0
    violations: ViolationCounters = field(default_factory=ViolationCounters)
    lifecycles: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def lifecycle(self, request_id: str) -> UpdateLifecycle:
        return self.lifecycles[request_id]

    def open_lifecycle(self, record: UpdateLifecycle) -> None:
        """Register a lifecycle; the caller bumps ``arrivals`` (trace
        stimuli) or ``restorations`` (controller-synthesized repairs)."""
        self.lifecycles[record.request_id] = record

    def record_probe(
        self, record: UpdateLifecycle, fate: PacketFate, crossed_failed_link: bool
    ) -> None:
        """Classify one rule-walk probe into the dataplane vocabulary.

        A probe whose walk crosses a failed link is a *physical* loss --
        the packet dies at the dead link no matter how the update was
        scheduled -- so it lands in ``failed_link_crossings`` instead of
        the scheduling-violation counters.
        """
        record.probes += 1
        if crossed_failed_link:
            self.failed_link_crossings += 1
            return
        self.violations.injected += 1
        self.violations.record(fate)
        if fate not in (PacketFate.DELIVERED, PacketFate.IN_FLIGHT):
            record.violations += 1

    def settle(self, record: UpdateLifecycle, status: str, now_ms: float) -> None:
        record.status = status
        record.settled_ms = now_ms
        self.time_to_quiescence_ms = max(self.time_to_quiescence_ms, now_ms)
        counter = {
            "done": "completed",
            "cancelled": "cancelled",
            "aborted": "aborted",
            "superseded": "superseded",
            "noop": "noops",
        }[status]
        setattr(self, counter, getattr(self, counter) + 1)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def transient_violations(self) -> int:
        """Probe fates a consistent update forbids (the checker's tally)."""
        return self.violations.violations

    @property
    def quiescent(self) -> bool:
        return all(record.settled for record in self.lifecycles.values())

    def mean_time_to_quiescence_ms(self) -> float:
        durations = [
            record.time_to_quiescence_ms
            for record in self.lifecycles.values()
            if record.time_to_quiescence_ms is not None
        ]
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    def snapshot(self, now_ms: float) -> dict:
        """Mid-run view: safe even while rounds are still executing."""
        in_flight = [
            record.to_dict()
            for record in self.lifecycles.values()
            if not record.settled
        ]
        in_flight.sort(key=lambda item: item["request_id"])
        return {
            "now_ms": now_ms,
            "in_flight": in_flight,
            "settled": sum(
                1 for record in self.lifecycles.values() if record.settled
            ),
            "violations": self.violations.as_dict(),
        }

    def to_dict(self) -> dict:
        lifecycles = [
            self.lifecycles[request_id].to_dict()
            for request_id in sorted(self.lifecycles)
        ]
        return {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "cancels_noop": self.cancels_noop,
            "aborted": self.aborted,
            "superseded": self.superseded,
            "noops": self.noops,
            "replans": self.replans,
            "restorations": self.restorations,
            "rounds_issued": self.rounds_issued,
            "flips": self.flips,
            "peak_in_flight": self.peak_in_flight,
            "failed_link_crossings": self.failed_link_crossings,
            "time_to_quiescence_ms": self.time_to_quiescence_ms,
            "mean_time_to_quiescence_ms": round(
                self.mean_time_to_quiescence_ms(), 6
            ),
            "quiescent": self.quiescent,
            "transient_violations": self.transient_violations,
            "violations": self.violations.as_dict(),
            "lifecycles": lifecycles,
        }
