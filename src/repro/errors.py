"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystems define narrower
classes below; substrate packages (switch, channel, controller, ...) import
from here rather than defining their own ad-hoc exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A topology is malformed or an operation references missing elements."""


class PathError(TopologyError):
    """A path is not simple, not connected, or not present in the topology."""


class UpdateModelError(ReproError):
    """An update problem is ill-formed (endpoints differ, waypoint missing, ...)."""


class ScheduleError(ReproError):
    """A schedule is structurally invalid (node repeated, unknown node, ...)."""


class SchedulerSpecError(ReproError):
    """A scheduler spec string is unknown, malformed, or carries bad params."""


class ScheduleTimeoutError(ReproError):
    """A scheduling request exceeded its wall-clock budget."""


class InfeasibleUpdateError(ReproError):
    """No schedule satisfying the requested properties exists."""


class VerificationError(ReproError):
    """A verifier was invoked on inputs it cannot handle."""


class VerificationBudgetError(VerificationError):
    """An exact verification exceeded its configured state budget."""


class ExactSearchBudgetError(VerificationBudgetError):
    """An exact search ran out of node or wall-clock budget.

    Carries the *anytime* interval proven before the budget ran out:
    ``lower`` is an admissible bound no schedule can beat, ``upper`` the
    round count of the best incumbent schedule found (``None`` when no
    feasible schedule is known yet), and ``nodes_expanded`` the search
    effort spent.  ``upper == lower`` never raises -- the search returns
    the incumbent as proven optimal instead.
    """

    def __init__(
        self,
        message: str,
        lower: int = 1,
        upper: "int | None" = None,
        nodes_expanded: int = 0,
    ) -> None:
        super().__init__(message)
        self.lower = lower
        self.upper = upper
        self.nodes_expanded = nodes_expanded


class OpenFlowError(ReproError):
    """An OpenFlow message is malformed or cannot be encoded/decoded."""


class WireFormatError(OpenFlowError):
    """Binary wire encoding or decoding failed."""


class SwitchError(ReproError):
    """A simulated switch rejected an operation."""


class TableFullError(SwitchError):
    """The flow table has reached its capacity."""


class ChannelError(ReproError):
    """A control channel operation failed."""


class ChannelClosedError(ChannelError):
    """Message submitted to a closed channel."""


class ControllerError(ReproError):
    """Controller runtime failure (unknown datapath, app error, ...)."""


class UnknownDatapathError(ControllerError):
    """A message referenced a datapath id that is not connected."""


class RestError(ReproError):
    """Base class for REST-layer failures."""

    status = 500


class BadRequestError(RestError):
    """The REST request body failed validation."""

    status = 400


class NotFoundError(RestError):
    """No route matched the REST request."""

    status = 404


class TransportError(ReproError):
    """A client-side HTTP transport failure (connect error, 5xx exhausted).

    Raised by :class:`repro.rest.http_binding.HttpClient` after its bounded
    retry budget is spent on retryable failures (connection errors, 5xx).
    """


class HttpStatusError(TransportError):
    """The server answered with a non-retryable HTTP error status (4xx).

    Fails fast -- a malformed request will not get better by retrying.
    Carries the numeric ``status`` and the decoded response ``body``.
    """

    def __init__(self, message: str, status: int, body=None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class CampaignError(ReproError):
    """A campaign run directory or engine invariant was violated."""


class CampaignSpecError(CampaignError):
    """A campaign specification is malformed or references unknown names."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class ScenarioError(ReproError):
    """A netlab scenario is misconfigured."""
