"""Measurement collection and report rendering."""

from repro.metrics.collector import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsCollector,
    Summary,
    global_collector,
    percentile,
    reset_global_collector,
    summarize,
)
from repro.metrics.exposition import render_prometheus
from repro.metrics.report import ascii_table, to_csv, to_json, write_report

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsCollector",
    "Summary",
    "ascii_table",
    "global_collector",
    "percentile",
    "render_prometheus",
    "reset_global_collector",
    "summarize",
    "to_csv",
    "to_json",
    "write_report",
]
