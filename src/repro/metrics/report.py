"""Rendering measurement tables: ASCII for the console, CSV/JSON for files.

Every benchmark prints its paper-table analogue through
:func:`ascii_table`, so ``pytest benchmarks/ --benchmark-only`` output can
be compared against EXPERIMENTS.md at a glance.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a boxed monospace table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(char: str = "-", joint: str = "+") -> str:
        return joint + joint.join(char * (w + 2) for w in widths) + joint

    def render_row(cells: Sequence[str]) -> str:
        padded = (f" {cell.ljust(widths[i])} " for i, cell in enumerate(cells))
        return "|" + "|".join(padded) + "|"

    out = []
    if title:
        out.append(title)
    out.append(line())
    out.append(render_row(list(headers)))
    out.append(line("="))
    for row in formatted:
        out.append(render_row(row))
    out.append(line())
    return "\n".join(out)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def to_json(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as a JSON list of objects."""
    records = [dict(zip(headers, row)) for row in rows]
    return json.dumps(records, indent=2, sort_keys=True)


def write_report(
    path: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    fmt: str = "csv",
) -> None:
    """Write a table to disk in the chosen format."""
    if fmt == "csv":
        text = to_csv(headers, rows)
    elif fmt == "json":
        text = to_json(headers, rows)
    elif fmt == "ascii":
        text = ascii_table(headers, rows) + "\n"
    else:
        raise ValueError(f"unknown report format {fmt!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
