"""Measurement collection with summary statistics.

Benchmarks record named series of values (update times, round counts,
violation rates) into a :class:`MetricsCollector` and render them with
:mod:`repro.metrics.report`.  Statistics are computed with the standard
library -- no heavyweight dependencies on the hot path.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one series."""

    name: str
    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float
    stdev: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "mean": round(self.mean, 6),
            "median": round(self.median, 6),
            "p95": round(self.p95, 6),
            "min": round(self.minimum, 6),
            "max": round(self.maximum, 6),
            "stdev": round(self.stdev, 6),
        }


def summarize(name: str, values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` (empty series are an error)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError(f"cannot summarize empty series {name!r}")
    return Summary(
        name=name,
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        p95=percentile(data, 95.0),
        minimum=data[0],
        maximum=data[-1],
        stdev=statistics.stdev(data) if len(data) > 1 else 0.0,
    )


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not sorted_values:
        raise ValueError("empty series has no percentiles")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


#: Process-wide collector used by long-lived components (e.g. the safety
#: oracle's hit/miss counters) that have no natural per-run collector.
_GLOBAL: "MetricsCollector | None" = None


def global_collector() -> "MetricsCollector":
    """The process-wide :class:`MetricsCollector` (created on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = MetricsCollector()
    return _GLOBAL


def reset_global_collector() -> None:
    """Drop the process-wide collector (tests and benchmark isolation)."""
    global _GLOBAL
    _GLOBAL = None


@dataclass
class MetricsCollector:
    """Named series of float samples plus monotonic event counters.

    Series hold measurements (latencies, round counts) and get the full
    :class:`Summary` treatment; counters are cheap monotonic tallies
    (lease grants, reclaims, retries) that only ever accumulate.
    """

    series: dict[str, list[float]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    def record(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append(float(value))

    def record_many(self, name: str, values: Iterable[float]) -> None:
        self.series.setdefault(name, []).extend(float(v) for v in values)

    def increment(self, name: str, by: float = 1.0) -> float:
        """Bump a monotonic counter; returns the new value."""
        value = self.counters.get(name, 0.0) + float(by)
        self.counters[name] = value
        return value

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def get(self, name: str) -> list[float]:
        return list(self.series.get(name, []))

    def summary(self, name: str) -> Summary:
        return summarize(name, self.series.get(name, []))

    def summaries(self) -> list[Summary]:
        return [summarize(name, values) for name, values in sorted(self.series.items())]

    def merge(self, other: "MetricsCollector") -> None:
        for name, values in other.series.items():
            self.record_many(name, values)
        for name, value in other.counters.items():
            self.increment(name, value)
