"""Measurement collection with summary statistics.

Benchmarks record named series of values (update times, round counts,
violation rates) into a :class:`MetricsCollector` and render them with
:mod:`repro.metrics.report`.  Statistics are computed with the standard
library -- no heavyweight dependencies on the hot path.

The collector is thread-safe: the fabric coordinator, worker heartbeat
threads, and REST handler threads all bump counters on the process-wide
collector concurrently, so every mutation and every read snapshot takes
the collector's lock.  Three kinds of instruments:

* **series** keep every sample and get the full :class:`Summary`
  treatment (benchmarks, small cardinalities);
* **counters** are cheap monotonic tallies, optionally with a frozen
  label set (``collector.increment("fabric.retries", labels={"worker":
  "w1"})``);
* **histograms** bucket samples into fixed bounds at record time, so
  p50/p95/p99 estimates stay available without retaining samples --
  the right instrument for per-request latencies on long-lived services.
"""

from __future__ import annotations

import bisect
import math
import statistics
import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one series."""

    name: str
    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float
    stdev: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "mean": round(self.mean, 6),
            "median": round(self.median, 6),
            "p95": round(self.p95, 6),
            "min": round(self.minimum, 6),
            "max": round(self.maximum, 6),
            "stdev": round(self.stdev, 6),
        }


def summarize(name: str, values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` (empty series and NaNs are errors)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError(f"cannot summarize empty series {name!r}")
    if any(math.isnan(v) for v in data):
        # NaN sorts unpredictably, so check every sample explicitly
        raise ValueError(f"series {name!r} contains NaN samples")
    return Summary(
        name=name,
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        p95=percentile(data, 95.0),
        minimum=data[0],
        maximum=data[-1],
        stdev=statistics.stdev(data) if len(data) > 1 else 0.0,
    )


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list.

    Matches ``statistics.quantiles(..., method="inclusive")`` at the cut
    points ``q = 100 * k / n`` (pinned by property tests).  NaN -- as the
    query or among the samples touched -- is rejected rather than
    silently propagated.
    """
    if not sorted_values:
        raise ValueError("empty series has no percentiles")
    if math.isnan(q):
        raise ValueError("percentile query must not be NaN")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        value = sorted_values[0]
        if math.isnan(value):
            raise ValueError("series contains NaN samples")
        return value
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    lo_value, hi_value = sorted_values[low], sorted_values[high]
    if math.isnan(lo_value) or math.isnan(hi_value):
        raise ValueError("series contains NaN samples")
    if fraction == 0.0 or lo_value == hi_value:
        # avoid inf * 0 = nan when a rank lands exactly on an
        # infinite sample
        return lo_value
    return lo_value * (1 - fraction) + hi_value * fraction


#: Default histogram bucket upper bounds -- log-spaced, tuned for
#: millisecond-scale latencies (schedule walls, RPC times).
DEFAULT_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Histogram:
    """Fixed-bucket histogram: percentile estimates without the samples.

    Buckets are upper bounds (ascending) plus an implicit ``+inf``
    overflow bucket.  Quantiles are estimated by linear interpolation
    inside the bucket containing the target rank -- exact enough for
    p50/p95/p99 dashboards, constant memory regardless of sample count.
    Not itself locked; the owning collector serializes access.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name!r} bounds must ascend")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} rejects NaN samples")
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` (0..1) quantile from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        rank = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else max(self.bounds[-1], self.sum / self.total)
                )
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += count
        return self.bounds[-1]

    def as_dict(self) -> dict:
        data = {
            "name": self.name,
            "count": self.total,
            "sum": round(self.sum, 6),
        }
        if self.total:
            data.update(
                p50=round(self.quantile(0.50), 6),
                p95=round(self.quantile(0.95), 6),
                p99=round(self.quantile(0.99), 6),
            )
        return data

    def snapshot(self) -> "Histogram":
        clone = Histogram(self.name, self.bounds)
        clone.counts = list(self.counts)
        clone.total = self.total
        clone.sum = self.sum
        return clone


#: Process-wide collector used by long-lived components (e.g. the safety
#: oracle's hit/miss counters) that have no natural per-run collector.
_GLOBAL: "MetricsCollector | None" = None
_GLOBAL_LOCK = threading.Lock()


def global_collector() -> "MetricsCollector":
    """The process-wide :class:`MetricsCollector` (created on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = MetricsCollector()
    return _GLOBAL


def reset_global_collector() -> None:
    """Drop the process-wide collector (tests and benchmark isolation)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = None


def _label_key(labels: Mapping[str, str] | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class MetricsCollector:
    """Named series, monotonic counters, and fixed-bucket histograms.

    Series hold measurements (latencies, round counts) and get the full
    :class:`Summary` treatment; counters are cheap monotonic tallies
    (lease grants, reclaims, retries) that only ever accumulate,
    optionally split by a small label set; histograms bucket samples at
    record time (see :class:`Histogram`).  All methods are thread-safe.
    """

    series: dict[str, list[float]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    labeled: dict[str, dict[tuple, float]] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def record(self, name: str, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"series {name!r} rejects NaN samples")
        with self._lock:
            self.series.setdefault(name, []).append(value)

    def record_many(self, name: str, values: Iterable[float]) -> None:
        coerced = [float(v) for v in values]
        if any(math.isnan(v) for v in coerced):
            raise ValueError(f"series {name!r} rejects NaN samples")
        with self._lock:
            self.series.setdefault(name, []).extend(coerced)

    def increment(
        self,
        name: str,
        by: float = 1.0,
        labels: Mapping[str, str] | None = None,
    ) -> float:
        """Bump a monotonic counter; returns the new value.

        With ``labels``, the tally is kept per label set *and* folded
        into the plain counter of the same name, so unlabeled readers
        keep seeing totals.
        """
        by = float(by)
        with self._lock:
            value = self.counters.get(name, 0.0) + by
            self.counters[name] = value
            if labels:
                per_label = self.labeled.setdefault(name, {})
                key = _label_key(labels)
                per_label[key] = per_label.get(key, 0.0) + by
            return value

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> float:
        with self._lock:
            if labels:
                return self.labeled.get(name, {}).get(_label_key(labels), 0.0)
            return self.counters.get(name, 0.0)

    def labeled_counters(self, name: str) -> dict[tuple, float]:
        """Snapshot of one counter's per-label tallies."""
        with self._lock:
            return dict(self.labeled.get(name, {}))

    def observe(
        self,
        name: str,
        value: float,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one sample into the named fixed-bucket histogram.

        ``buckets`` only takes effect when the histogram is first
        created; later calls reuse the existing bounds.
        """
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(name, buckets)
            histogram.observe(value)

    def histogram(self, name: str) -> Histogram:
        """A consistent snapshot of one histogram."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                raise KeyError(name)
            return histogram.snapshot()

    def get(self, name: str) -> list[float]:
        with self._lock:
            return list(self.series.get(name, []))

    def summary(self, name: str) -> Summary:
        with self._lock:
            values = list(self.series.get(name, []))
        return summarize(name, values)

    def summaries(self) -> list[Summary]:
        with self._lock:
            items = [(name, list(values)) for name, values in self.series.items()]
        return [summarize(name, values) for name, values in sorted(items)]

    def merge(self, other: "MetricsCollector") -> None:
        with other._lock:
            series = {name: list(values) for name, values in other.series.items()}
            counters = dict(other.counters)
            labeled = {
                name: dict(per_label) for name, per_label in other.labeled.items()
            }
            histograms = [h.snapshot() for h in other.histograms.values()]
        for name, values in series.items():
            self.record_many(name, values)
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            for name, per_label in labeled.items():
                mine = self.labeled.setdefault(name, {})
                for key, value in per_label.items():
                    mine[key] = mine.get(key, 0.0) + value
            for other_hist in histograms:
                mine_hist = self.histograms.get(other_hist.name)
                if mine_hist is None:
                    self.histograms[other_hist.name] = other_hist
                elif mine_hist.bounds == other_hist.bounds:
                    for i, count in enumerate(other_hist.counts):
                        mine_hist.counts[i] += count
                    mine_hist.total += other_hist.total
                    mine_hist.sum += other_hist.sum
                # mismatched bounds cannot be folded; keep ours
