"""Prometheus text exposition for :class:`MetricsCollector`.

Renders the collector's counters, labeled counters, histograms, and
series into the Prometheus text format (version 0.0.4) so the REST
binding can serve ``GET /metrics`` to a scraper or to ``curl``.  Only
the standard library is used; the format is simple enough that a
dependency would buy nothing.

Name mapping: every metric is prefixed ``repro_`` and characters
outside ``[a-zA-Z0-9_:]`` collapse to ``_`` (so the internal counter
``fabric.leases_granted`` is exposed as
``repro_fabric_leases_granted``).  Series become summaries with
``quantile`` labels; histograms become cumulative ``_bucket`` series
the way Prometheus expects.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.metrics.collector import (
    Histogram,
    MetricsCollector,
    global_collector,
    percentile,
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_PREFIX = "repro_"


def _metric_name(name: str) -> str:
    sanitized = _NAME_OK.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return _PREFIX + sanitized


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _render_counter(
    lines: list[str],
    name: str,
    total: float,
    labeled: Mapping[tuple, float],
) -> None:
    metric = _metric_name(name)
    lines.append(f"# TYPE {metric} counter")
    if labeled:
        for key in sorted(labeled):
            lines.append(
                f"{metric}{_labels(key)} {_format_value(labeled[key])}"
            )
    else:
        lines.append(f"{metric} {_format_value(total)}")


def _render_histogram(lines: list[str], histogram: Histogram) -> None:
    metric = _metric_name(histogram.name)
    lines.append(f"# TYPE {metric} histogram")
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.counts):
        cumulative += count
        lines.append(
            f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
        )
    lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.total}')
    lines.append(f"{metric}_sum {_format_value(histogram.sum)}")
    lines.append(f"{metric}_count {histogram.total}")


def _render_series(lines: list[str], name: str, values: list[float]) -> None:
    metric = _metric_name(name)
    lines.append(f"# TYPE {metric} summary")
    data = sorted(values)
    for q in (0.5, 0.95, 0.99):
        lines.append(
            f'{metric}{{quantile="{q}"}} '
            f"{_format_value(percentile(data, q * 100.0))}"
        )
    lines.append(f"{metric}_sum {_format_value(sum(data))}")
    lines.append(f"{metric}_count {len(data)}")


def render_prometheus(
    collector: MetricsCollector | None = None,
    extra_counters: Mapping[str, float] | None = None,
) -> str:
    """Render a collector in Prometheus text format.

    ``collector`` defaults to the process-wide one.  ``extra_counters``
    lets callers splice in tallies kept outside the collector -- the
    ``/metrics`` handler passes the safety oracle's aggregate stats
    here so ``repro_oracle_*`` shows up without double-counting.
    """
    if collector is None:
        collector = global_collector()
    with collector._lock:
        counters = dict(collector.counters)
        labeled = {
            name: dict(per_label)
            for name, per_label in collector.labeled.items()
        }
        histograms = [h.snapshot() for h in collector.histograms.values()]
        series = {
            name: list(values) for name, values in collector.series.items()
        }

    lines: list[str] = []
    for name in sorted(counters):
        _render_counter(lines, name, counters[name], labeled.get(name, {}))
    if extra_counters:
        for name in sorted(extra_counters):
            if name in counters:
                continue
            _render_counter(lines, name, float(extra_counters[name]), {})
    for histogram in sorted(histograms, key=lambda h: h.name):
        _render_histogram(lines, histogram)
    for name in sorted(series):
        if series[name]:
            _render_series(lines, name, series[name])
    return "\n".join(lines) + "\n" if lines else ""
