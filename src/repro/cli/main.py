"""The ``repro`` command-line interface.

Subcommands::

    repro figure1   -- run the paper's Figure 1 demo scenario
    repro schedule  -- compute and verify a schedule for given paths
    repro rounds    -- round-count scaling table on adversarial families
    repro topo      -- generate a topology JSON file
    repro serve     -- expose the demo over the REST HTTP binding

Each prints human-readable tables; ``--json`` switches to machine output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.hardness import (
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.oneshot import oneshot_schedule
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateProblem
from repro.core.verify import Property, verify_schedule
from repro.core.wayup import wayup_schedule
from repro.errors import ReproError
from repro.metrics.report import ascii_table
from repro.topology import builders
from repro.topology.io import save_topology

_PROPERTY_BY_NAME = {
    "wpe": Property.WPE,
    "slf": Property.SLF,
    "rlf": Property.RLF,
    "blackhole": Property.BLACKHOLE,
}

_SCHEDULERS = {
    "wayup": wayup_schedule,
    "peacock": peacock_schedule,
    "greedy-slf": greedy_slf_schedule,
    "oneshot": oneshot_schedule,
}


def _parse_path(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise SystemExit(f"bad path {text!r}; expected comma-separated ints") from None


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_figure1(args: argparse.Namespace) -> int:
    from repro.netlab.figure1 import run_figure1

    result = run_figure1(
        algorithm=args.algorithm,
        seed=args.seed,
        channel_latency=args.channel_latency,
        packet_mode=args.packet_mode,
    )
    data = result.as_dict()
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    rows = [[key, value] for key, value in data.items()]
    print(ascii_table(["metric", "value"], rows, title=f"Figure 1 / {args.algorithm}"))
    return 0 if result.violations == 0 or args.algorithm == "oneshot" else 1


def cmd_schedule(args: argparse.Namespace) -> int:
    problem = UpdateProblem(
        _parse_path(args.old), _parse_path(args.new), waypoint=args.wp
    )
    factory = _SCHEDULERS[args.algorithm]
    schedule = factory(problem)
    properties = tuple(
        _PROPERTY_BY_NAME[name] for name in (args.properties or "").split(",") if name
    ) or None
    report = verify_schedule(schedule, properties=properties)
    if args.json:
        print(
            json.dumps(
                {
                    "schedule": schedule.to_dict(),
                    "ok": report.ok,
                    "violations": [str(v) for v in report.violations],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if report.ok else 1
    names = schedule.metadata.get("round_names") or [
        str(i) for i in range(schedule.n_rounds)
    ]
    rows = [
        [index, names[index], ", ".join(map(str, sorted(nodes, key=repr)))]
        for index, nodes in enumerate(schedule.rounds)
    ]
    print(ascii_table(["round", "name", "switches"], rows, title=args.algorithm))
    print(f"verified: {report.ok}")
    for violation in report.violations:
        print(f"  {violation}")
    if args.explain:
        from repro.core.analysis import explain_schedule

        for line in explain_schedule(schedule):
            print(line)
    return 0 if report.ok else 1


def cmd_rounds(args: argparse.Namespace) -> int:
    families = {
        "reversal": reversal_instance,
        "sawtooth": lambda n: sawtooth_instance(n, block=max(2, n // 4)),
        "slalom": lambda n: waypoint_slalom_instance(max(1, (n - 3) // 2)),
    }
    family = families[args.family]
    rows = []
    for n in range(args.n_min, args.n_max + 1, args.step):
        problem = family(n)
        peacock = peacock_schedule(problem, include_cleanup=False)
        greedy = greedy_slf_schedule(problem, include_cleanup=False)
        row = [n, peacock.n_rounds, greedy.n_rounds]
        if problem.waypoint is not None:
            row.append(wayup_schedule(problem, include_cleanup=False).n_rounds)
        else:
            row.append("-")
        rows.append(row)
    print(
        ascii_table(
            ["n", "peacock (RLF)", "greedy (SLF)", "wayup (WPE)"],
            rows,
            title=f"rounds on {args.family} instances",
        )
    )
    return 0


def cmd_topo(args: argparse.Namespace) -> int:
    kinds = {
        "linear": lambda: builders.linear(args.n, with_hosts=args.hosts),
        "ring": lambda: builders.ring(args.n),
        "grid": lambda: builders.grid(args.n, args.n),
        "fat-tree": lambda: builders.fat_tree(args.n),
        "figure1": lambda: builders.figure1(with_hosts=args.hosts),
    }
    topo = kinds[args.kind]()
    save_topology(topo, args.out)
    print(f"wrote {topo.name}: {len(topo)} nodes, {len(topo.links())} links -> {args.out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.netlab.figure1 import build_figure1_scenario
    from repro.rest.api import build_rest_api
    from repro.rest.http_binding import RestHttpServer

    scenario = build_figure1_scenario(algorithm="wayup", seed=args.seed)
    scenario.prepare()
    api = build_rest_api(
        scenario.ofctl_app,
        scenario.update_app,
        scenario.update_queue,
        flush=scenario.network.flush,
    )
    server = RestHttpServer(api, port=args.port)
    server.start()
    print(f"figure-1 network ready; REST on {server.url}")
    print("try: curl -X POST -d '{" + '"oldpath": [1,2,9,3,4,5,12], '
          '"newpath": [1,6,2,5,3,7,8,12], "wp": 3, "interval": 0'
          + "}' " + f"{server.url}/update/wayup")
    try:
        import time

        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        server.stop()
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transiently secure SDN updates: schedulers, verifiers, demo",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure1", help="run the paper's demo scenario")
    p_fig.add_argument("--algorithm", default="wayup",
                       choices=["wayup", "peacock", "oneshot", "greedy-slf", "two-phase"])
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--channel-latency", default="1.0")
    p_fig.add_argument("--packet-mode", default="instant", choices=["instant", "perhop"])
    p_fig.add_argument("--json", action="store_true")
    p_fig.set_defaults(func=cmd_figure1)

    p_sched = sub.add_parser("schedule", help="compute and verify a schedule")
    p_sched.add_argument("--old", required=True, help="comma-separated dpids")
    p_sched.add_argument("--new", required=True, help="comma-separated dpids")
    p_sched.add_argument("--wp", type=int, default=None)
    p_sched.add_argument("--algorithm", default="wayup", choices=sorted(_SCHEDULERS))
    p_sched.add_argument("--properties", default=None,
                         help="comma-separated: wpe,slf,rlf,blackhole")
    p_sched.add_argument("--explain", action="store_true",
                         help="print the per-round change narrative")
    p_sched.add_argument("--json", action="store_true")
    p_sched.set_defaults(func=cmd_schedule)

    p_rounds = sub.add_parser("rounds", help="round-count scaling table")
    p_rounds.add_argument("--family", default="reversal",
                          choices=["reversal", "sawtooth", "slalom"])
    p_rounds.add_argument("--n-min", type=int, default=5)
    p_rounds.add_argument("--n-max", type=int, default=25)
    p_rounds.add_argument("--step", type=int, default=5)
    p_rounds.set_defaults(func=cmd_rounds)

    p_topo = sub.add_parser("topo", help="generate a topology JSON")
    p_topo.add_argument("--kind", default="figure1",
                        choices=["linear", "ring", "grid", "fat-tree", "figure1"])
    p_topo.add_argument("--n", type=int, default=4)
    p_topo.add_argument("--hosts", action="store_true")
    p_topo.add_argument("--out", default="topology.json")
    p_topo.set_defaults(func=cmd_topo)

    p_serve = sub.add_parser("serve", help="REST HTTP server on the demo network")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
