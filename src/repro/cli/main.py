"""The ``repro`` command-line interface.

Subcommands::

    repro figure1   -- run the paper's Figure 1 demo scenario
    repro schedule  -- compute and verify a schedule for given paths
    repro rounds    -- round-count scaling table on adversarial families
    repro topo      -- generate a topology JSON file
    repro serve     -- expose the demo over the REST HTTP binding
    repro campaign  -- run / inspect / report declarative scenario campaigns
    repro churn     -- online scheduling under topology churn
    repro trace     -- summarize structured traces (repro.obs)

Each prints human-readable tables; ``--json`` switches to machine output
(and, where verification runs, a non-zero exit code flags failures).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.api import schedule_update
from repro.core.hardness import (
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.problem import UpdateProblem
from repro.core.registry import PROPERTY_NAMES, parse_properties, scheduler_names
from repro.core.schedule import UpdateSchedule
from repro.core.verify import default_properties
from repro.errors import ReproError
from repro.metrics.report import ascii_table
from repro.topology import builders
from repro.topology.io import save_topology


def available_schedulers() -> list[str]:
    """The registry's scheduler names -- the CLI exposes exactly these."""
    return scheduler_names()


def _parse_path(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise SystemExit(f"bad path {text!r}; expected comma-separated ints") from None


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_figure1(args: argparse.Namespace) -> int:
    from repro.netlab.figure1 import run_figure1

    result = run_figure1(
        algorithm=args.algorithm,
        seed=args.seed,
        channel_latency=args.channel_latency,
        packet_mode=args.packet_mode,
    )
    data = result.as_dict()
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    rows = [[key, value] for key, value in data.items()]
    print(ascii_table(["metric", "value"], rows, title=f"Figure 1 / {args.algorithm}"))
    return 0 if result.violations == 0 or args.algorithm == "oneshot" else 1


def _generated_problem(args: argparse.Namespace) -> UpdateProblem:
    """Build the instance of ``--family``/``--n``/``--seed`` (CLI sugar)."""
    from repro.campaign.families import single_problem
    from repro.campaign.spec import derive_seed

    params = (
        {"waypoint": True}
        if args.family == "random-update" and getattr(args, "waypointed", False)
        else {}
    )
    seed = derive_seed(args.seed, args.family, args.n, 0)
    return single_problem(args.family, args.n, params, seed)


def cmd_schedule(args: argparse.Namespace) -> int:
    if args.family is not None:
        if args.old or args.new:
            raise SystemExit("--family replaces --old/--new; give one or the other")
        if args.wp is not None:
            raise SystemExit(
                "--wp picks a waypoint on explicit --old/--new paths; "
                "for --family random-update use --waypointed instead"
            )
        if args.waypointed and args.family != "random-update":
            raise SystemExit("--waypointed only applies to --family random-update")
        problem = _generated_problem(args)
    else:
        if not (args.old and args.new):
            raise SystemExit("either --old and --new, or --family, is required")
        problem = UpdateProblem(
            _parse_path(args.old), _parse_path(args.new), waypoint=args.wp
        )
    names = [name for name in (args.properties or "").split(",") if name]
    properties = parse_properties("+".join(names)) if names else ()
    # CLI policy: without --properties, verify against the default
    # transient-security expectations of the problem (blackhole freedom,
    # plus WPE when waypointed) -- the registry's guarantee is what the
    # scheduler promises, the default is what the operator expects
    result = schedule_update(
        problem,
        args.algorithm,
        verify=True,
        properties=properties or default_properties(problem),
    )
    schedule = result.schedule
    report = result.report
    if args.json:
        print(
            json.dumps(
                {
                    "scheduler": result.scheduler,
                    "schedule": schedule.to_dict(),
                    # short names, same vocabulary as --properties and REST
                    "guarantee": [PROPERTY_NAMES[p] for p in result.guarantee],
                    "ok": report.ok,
                    "violations": [str(v) for v in report.violations],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if report.ok else 1
    names = schedule.metadata.get("round_names") or [
        str(i) for i in range(schedule.n_rounds)
    ]
    rows = [
        [index, names[index], ", ".join(map(str, sorted(nodes, key=repr)))]
        for index, nodes in enumerate(schedule.rounds)
    ]
    print(ascii_table(["round", "name", "switches"], rows, title=result.scheduler))
    print(f"verified: {report.ok}")
    for violation in report.violations:
        print(f"  {violation}")
    if args.explain:
        if isinstance(schedule, UpdateSchedule):
            from repro.core.analysis import explain_schedule

            for line in explain_schedule(schedule):
                print(line)
        else:
            print("(--explain only narrates round schedules, "
                  "not two-phase plans)")
    return 0 if report.ok else 1


def _exact_round_cell(problem, args) -> tuple:
    """The ``--engine`` exact column of ``repro rounds``: ``(cell, record)``.

    ``cell`` is the human table entry; ``record`` the JSON fields.  A
    branch-and-bound budget exhaustion degrades to the proven anytime
    ``[lower, upper]`` interval instead of failing the sweep.
    """
    from repro.errors import (
        ExactSearchBudgetError,
        InfeasibleUpdateError,
        ScheduleTimeoutError,
        UpdateModelError,
        VerificationError,
    )

    params: dict = {"search": args.engine}
    timeout_s = None
    if args.time_limit is not None:
        if args.engine == "bnb":
            # internal deadline: the search raises with proven bounds
            params["time_limit_s"] = args.time_limit
        else:
            timeout_s = args.time_limit
    spec = f"optimal:{args.exact_properties}"
    try:
        result = schedule_update(
            problem, spec, include_cleanup=False,
            params=params, timeout_s=timeout_s,
        )
    except ExactSearchBudgetError as exc:
        upper = "?" if exc.upper is None else exc.upper
        return (
            f"[{exc.lower},{upper}]",
            {
                "optimal": None,
                "optimal_status": "timeout",
                "optimal_lower": exc.lower,
                "optimal_upper": exc.upper,
            },
        )
    except ScheduleTimeoutError:
        return "timeout", {"optimal": None, "optimal_status": "timeout"}
    except InfeasibleUpdateError:
        return "infeasible", {"optimal": None, "optimal_status": "infeasible"}
    except (VerificationError, UpdateModelError) as exc:
        # over the exact-search cap, or e.g. WPE without a waypoint
        detail = "capped" if "capped" in str(exc) else "unsupported"
        return detail, {"optimal": None, "optimal_status": detail}
    return (
        result.schedule.n_rounds,
        {"optimal": result.schedule.n_rounds, "optimal_status": "ok"},
    )


def cmd_rounds(args: argparse.Namespace) -> int:
    from repro.campaign.spec import derive_seed

    def _random(n: int, seed: int, waypointed: bool) -> UpdateProblem:
        from repro.campaign.families import single_problem

        params = {"waypoint": True} if waypointed else {}
        return single_problem("random-update", n, params, seed)

    families = {
        "reversal": lambda n, seed: reversal_instance(n),
        "sawtooth": lambda n, seed: sawtooth_instance(n, block=max(2, n // 4)),
        "slalom": lambda n, seed: waypoint_slalom_instance(max(1, (n - 3) // 2)),
        "random": lambda n, seed: _random(n, seed, waypointed=False),
        "random-wp": lambda n, seed: _random(n, seed, waypointed=True),
    }
    if args.engine is not None:
        # validate the property list before sweeping, not per row
        parse_properties(args.exact_properties.replace(",", "+"))
        args.exact_properties = args.exact_properties.replace(",", "+")
    family = families[args.family]
    rows = []
    records = []
    all_ok = True
    for n in range(args.n_min, args.n_max + 1, args.step):
        problem = family(n, derive_seed(args.seed, args.family, n, 0))
        if not problem.required_updates:
            # a no-op instance has a valid zero-round optimal schedule
            rows.append([n, 0, 0, "-"] + ([0] if args.engine else []))
            record = {"n": n, "peacock": 0, "greedy-slf": 0, "ok": True}
            if args.engine is not None:
                record.update({"optimal": 0, "optimal_status": "ok"})
            records.append(record)
            continue
        # each scheduler is verified against the guarantee it promises
        # (the envelope's default); records key on the canonical
        # registry name, whatever spelling the table uses
        sweep = ["peacock", "greedy-slf"]
        if problem.waypoint is not None:
            sweep.append("wayup")
        results = {}
        record: dict = {"n": n}
        ok = True
        for spec in sweep:
            result = schedule_update(
                problem, spec, include_cleanup=False, verify=args.json
            )
            results[result.scheduler] = result
            record[result.scheduler] = result.schedule.n_rounds
            if result.verified is not None:
                ok = ok and result.verified
        if args.json:
            record["ok"] = ok
            all_ok = all_ok and ok
        row = [
            n,
            results["peacock"].schedule.n_rounds,
            results["greedy-slf"].schedule.n_rounds,
            results["wayup"].schedule.n_rounds if "wayup" in results else "-",
        ]
        if args.engine is not None:
            cell, exact_record = _exact_round_cell(problem, args)
            row.append(cell)
            record.update(exact_record)
        records.append(record)
        rows.append(row)
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0 if all_ok else 1
    headers = ["n", "peacock (RLF)", "greedy (SLF)", "wayup (WPE)"]
    if args.engine is not None:
        headers.append(f"optimal:{args.exact_properties} ({args.engine})")
    print(
        ascii_table(
            headers,
            rows,
            title=f"rounds on {args.family} instances (seed={args.seed})",
        )
    )
    return 0


def cmd_topo(args: argparse.Namespace) -> int:
    kinds = {
        "linear": lambda: builders.linear(args.n, with_hosts=args.hosts),
        "ring": lambda: builders.ring(args.n),
        "grid": lambda: builders.grid(args.n, args.n),
        "fat-tree": lambda: builders.fat_tree(args.n),
        "figure1": lambda: builders.figure1(with_hosts=args.hosts),
    }
    topo = kinds[args.kind]()
    save_topology(topo, args.out)
    print(f"wrote {topo.name}: {len(topo)} nodes, {len(topo.links())} links -> {args.out}")
    return 0


def cmd_churn_run(args: argparse.Namespace) -> int:
    from repro.churn import ChurnPolicy, generate_trace, run_churn

    trace = generate_trace(
        args.kind,
        args.size,
        args.seed,
        rate_per_s=args.rate,
        duration_ms=args.duration,
        flows=args.flows,
        cancel_prob=args.cancel_prob,
        link_failures=args.link_failures,
        waypoint_prob=args.waypoint_prob,
    )
    policy = ChurnPolicy(
        scheduled=not args.unscheduled,
        preempt=not args.defer,
        replan_budget=args.replan_budget,
    )
    metrics = run_churn(trace, policy)
    data = {
        "trace": trace.summary(),
        "policy": {
            "scheduled": policy.scheduled,
            "preempt": policy.preempt,
            "replan_budget": policy.replan_budget,
        },
        "metrics": metrics.to_dict(),
    }
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        summary = metrics.to_dict()
        rows = [
            [key, summary[key]]
            for key in (
                "arrivals",
                "completed",
                "cancelled",
                "superseded",
                "aborted",
                "noops",
                "restorations",
                "replans",
                "rounds_issued",
                "flips",
                "peak_in_flight",
                "failed_link_crossings",
                "transient_violations",
                "time_to_quiescence_ms",
                "quiescent",
            )
        ]
        mode = "scheduled" if policy.scheduled else "unscheduled"
        print(ascii_table(["metric", "value"], rows, title=f"churn / {trace.name} / {mode}"))
    clean = metrics.quiescent and (
        not policy.scheduled or metrics.transient_violations == 0
    )
    return 0 if clean else 1


def _open_campaign_store(args: argparse.Namespace):
    """Resolve a run-directory path or a campaign id under ``--root``."""
    import pathlib

    from repro.campaign.store import RunStore

    target = pathlib.Path(args.campaign)
    if (target / "manifest.json").is_file():
        return RunStore.open_dir(target)
    return RunStore.open_dir(pathlib.Path(args.root) / args.campaign)


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign.runner import CampaignRunner
    from repro.campaign.spec import CampaignSpec

    with open(args.spec, encoding="utf-8") as handle:
        spec = CampaignSpec.from_dict(json.load(handle))

    def progress(record: dict, done: int, total: int) -> None:
        if not args.json and (done % 25 == 0 or done == total):
            print(f"  [{done}/{total}] {record['id']}: {record['status']}")

    runner = CampaignRunner(spec, root=args.root, workers=args.workers)
    if not args.json:
        print(f"campaign {spec.campaign_id} -> {runner.store.directory}")
    status = runner.run(progress=progress)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        from repro.campaign.aggregate import render_report

        store = runner.store
        print(render_report(
            store.records(), store.timings(), title=f"campaign {spec.campaign_id}"
        ))
        counts = ", ".join(
            f"{name}={count}"
            for name, count in status["by_status"].items()
            if count
        )
        print(f"done: {status['done']}/{status['total']} cells ({counts})")
    failed_verification = status.get("verification_failures", 0)
    if failed_verification and not args.json:
        print(f"verification FAILED for {failed_verification} cell(s) "
              "(see results.jsonl)")
    ok = status["by_status"].get("error", 0) == 0 and not failed_verification
    return 0 if ok else 1


def _render_telemetry(data: dict) -> str:
    """The per-worker live table of ``campaign status --watch``."""
    rows = []
    for worker in data["workers"]:
        beat = worker["last_seen_age_s"]
        if worker.get("quarantined"):
            state = "quarantined"
        elif worker["alive"]:
            state = "up"
        else:
            state = "dead"
        rows.append([
            worker["worker_id"],
            state,
            worker["cells_done"],
            worker["cells_per_s"],
            worker["in_flight"],
            "-" if beat is None else f"{beat:.1f}s",
            worker["timeouts"],
            worker["escalations"],
            worker["transient_failures"],
        ])
    if not rows:
        rows.append(["(no workers yet)"] + [""] * 8)
    counters = data["counters"]
    table = ascii_table(
        ["worker", "state", "done", "cells/s", "in-flight", "beat-age",
         "timeouts", "escalated", "transient"],
        rows,
        title=(
            f"{data['campaign']}: {data['done']}/{data['total']} cells, "
            f"up {data['uptime_s']:.0f}s"
        ),
    )
    tail = ", ".join(
        f"{name}={counters.get(name, 0)}"
        for name in (
            "leases_granted", "reclaims", "retries", "escalations",
            "integrity_rejects", "audits_run", "audit_mismatches",
            "quarantines", "poisoned_cells",
        )
    )
    return f"{table}\nfabric: {tail}"


def _watch_telemetry(args: argparse.Namespace) -> int:
    """Poll the coordinator's telemetry endpoint; loop under ``--watch``.

    A restarting coordinator (crash recovery) surfaces as a
    ``TransportError``, or briefly as a 404 while the new process has
    bound the port but not yet re-served the campaign.  Under ``--watch``
    both mean "reconnecting", not "crash the watch loop"; any other 4xx
    (401 auth mismatch, bad campaign id) still fails fast.
    """
    import time

    from repro.errors import HttpStatusError, TransportError
    from repro.rest.http_binding import HttpClient

    client = HttpClient(args.url, token=getattr(args, "token", None))
    path = f"/campaigns/{args.campaign}/fabric/telemetry"
    while True:
        try:
            data = client.get(path)
        except HttpStatusError as exc:
            if not args.watch or exc.status != 404:
                raise
            print("coordinator restarting (campaign not re-served yet)…",
                  file=sys.stderr)
            time.sleep(max(0.05, args.interval))
            continue
        except TransportError:
            if not args.watch:
                raise
            print("coordinator unreachable; reconnecting…", file=sys.stderr)
            time.sleep(max(0.05, args.interval))
            continue
        if args.json:
            print(json.dumps(data, sort_keys=True))
        else:
            print(_render_telemetry(data))
        if not args.watch or data.get("finished"):
            return 0
        time.sleep(max(0.05, args.interval))


def cmd_campaign_status(args: argparse.Namespace) -> int:
    if args.url:
        return _watch_telemetry(args)
    if args.watch:
        raise SystemExit("--watch needs --url (a live coordinator to poll)")
    status = _open_campaign_store(args).status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    rows = [[key, value] for key, value in status["by_status"].items()]
    print(ascii_table(
        ["status", "cells"], rows,
        title=f"{status['campaign_id']}: {status['done']}/{status['total']} done",
    ))
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, summarize_trace

    records = load_trace(args.trace)
    rows = summarize_trace(records)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print(f"no trace records in {args.trace}")
        return 1
    print(ascii_table(
        ["phase", "count", "errors", "total ms", "mean ms", "p50 ms",
         "p95 ms", "max ms"],
        [
            [row["name"], row["count"], row["errors"], row["total_ms"],
             row["mean_ms"], row["p50_ms"], row["p95_ms"], row["max_ms"]]
            for row in rows
        ],
        title=f"trace {args.trace} ({len(records)} records)",
    ))
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign.aggregate import render_report

    store = _open_campaign_store(args)
    text = render_report(
        store.records(),
        store.timings(),
        fmt=args.format,
        title=f"campaign {store.campaign_id}",
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + ("\n" if not text.endswith("\n") else ""))
        print(f"wrote {args.format} report -> {args.out}")
    else:
        print(text)
    return 0


def cmd_campaign_serve(args: argparse.Namespace) -> int:
    from repro.campaign.fabric import worker_main
    from repro.campaign.spec import CampaignSpec
    from repro.rest.api import build_campaign_api
    from repro.rest.http_binding import RestHttpServer

    with open(args.spec, encoding="utf-8") as handle:
        spec = CampaignSpec.from_dict(json.load(handle))

    api = build_campaign_api(campaign_root=args.root)
    server = RestHttpServer(api, port=args.port, host=args.host, token=args.token)
    server.start()
    body: dict = {"spec": spec.to_dict()}
    for key, value in (
        ("lease_ttl_s", args.lease_ttl),
        ("heartbeat_interval_s", args.heartbeat_interval),
        ("lease_cells", args.lease_cells),
        ("max_transient_retries", args.max_retries),
        ("journal_compact_every", args.journal_compact_every),
        ("audit_fraction", args.audit_fraction),
        ("audit_seed", args.audit_seed),
        ("poison_kill_threshold", args.poison_kill_threshold),
    ):
        if value is not None:
            body[key] = value
    try:
        api.campaigns.serve(body)
        coordinator = api.campaigns.fabric(spec.campaign_id)
        if args.json:
            print(json.dumps({
                "campaign_id": spec.campaign_id,
                "url": server.url,
                "directory": str(coordinator.store.directory),
            }, sort_keys=True))
        else:
            print(f"fabric serving campaign {spec.campaign_id} on {server.url}")
            print(f"join with: repro campaign work {server.url}")
        sys.stdout.flush()

        procs = []
        if args.local_workers:
            import multiprocessing

            ctx = multiprocessing.get_context("spawn")
            procs = [
                ctx.Process(
                    target=worker_main,
                    args=(server.url, spec.campaign_id),
                    kwargs={"name": f"local{i}", "token": args.token},
                    daemon=True,
                )
                for i in range(args.local_workers)
            ]
            for proc in procs:
                proc.start()

        completed = coordinator.wait(timeout_s=args.timeout)
        for proc in procs:
            proc.join(timeout=10)
        status = coordinator.status()
    finally:
        server.stop()
        api.campaigns.close()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        counts = ", ".join(
            f"{name}={count}"
            for name, count in status["by_status"].items()
            if count
        )
        print(f"done: {status['done']}/{status['total']} cells ({counts})")
        fabric = status["fabric"]
        print("fabric: " + ", ".join(
            f"{name}={fabric[name]}"
            for name in ("leases_granted", "reclaims", "retries", "escalations")
        ))
    failures = status.get("verification_failures", 0)
    errors = status["by_status"].get("error", 0)
    ok = completed and not failures and not errors
    return 0 if ok else 1


def cmd_campaign_work(args: argparse.Namespace) -> int:
    from repro.campaign.fabric import worker_main
    from repro.rest.http_binding import HttpClient

    campaign_id = args.campaign
    if campaign_id is None:
        served = HttpClient(args.url, token=args.token).get(
            "/campaigns/fabric"
        )["campaigns"]
        if len(served) != 1:
            print(
                f"error: coordinator serves {len(served)} campaigns "
                f"({', '.join(served) or 'none'}); pass --campaign",
                file=sys.stderr,
            )
            return 2
        campaign_id = served[0]
    # worker_main installs SIGTERM/SIGINT drain handlers: finish the
    # in-flight cell, hand the rest of the lease back, deregister
    summary = worker_main(
        args.url,
        campaign_id,
        name=args.name,
        max_lease_cells=args.cells,
        batch_cells=args.batch_cells,
        max_offline_s=args.max_offline_s,
        token=args.token,
    )
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        tags = "".join(
            f" ({tag})"
            for tag in ("drained", "gave_up_offline", "quarantined")
            if summary.get(tag)
        )
        print(f"{summary['worker_id']}: {summary['cells_done']} cells done"
              + tags)
    if summary.get("quarantined"):
        return 1
    return 0 if not summary.get("gave_up_offline") else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.netlab.figure1 import build_figure1_scenario
    from repro.rest.api import build_rest_api
    from repro.rest.http_binding import RestHttpServer

    scenario = build_figure1_scenario(algorithm="wayup", seed=args.seed)
    scenario.prepare()
    api = build_rest_api(
        scenario.ofctl_app,
        scenario.update_app,
        scenario.update_queue,
        flush=scenario.network.flush,
    )
    server = RestHttpServer(api, port=args.port)
    server.start()
    print(f"figure-1 network ready; REST on {server.url}")
    print("try: curl -X POST -d '{" + '"oldpath": [1,2,9,3,4,5,12], '
          '"newpath": [1,6,2,5,3,7,8,12], "wp": 3, "interval": 0'
          + "}' " + f"{server.url}/update/wayup")
    try:
        import time

        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        server.stop()
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transiently secure SDN updates: schedulers, verifiers, demo",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure1", help="run the paper's demo scenario")
    p_fig.add_argument("--algorithm", default="wayup",
                       choices=["wayup", "peacock", "oneshot", "greedy-slf", "two-phase"])
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--channel-latency", default="1.0")
    p_fig.add_argument("--packet-mode", default="instant", choices=["instant", "perhop"])
    p_fig.add_argument("--json", action="store_true")
    p_fig.set_defaults(func=cmd_figure1)

    p_sched = sub.add_parser("schedule", help="compute and verify a schedule")
    p_sched.add_argument("--old", default=None, help="comma-separated dpids")
    p_sched.add_argument("--new", default=None, help="comma-separated dpids")
    p_sched.add_argument("--wp", type=int, default=None)
    p_sched.add_argument("--family", default=None,
                         choices=["reversal", "sawtooth", "slalom",
                                  "random-update", "fat-tree"],
                         help="generate the instance instead of --old/--new")
    p_sched.add_argument("--n", type=int, default=10,
                         help="instance size for --family")
    p_sched.add_argument("--seed", type=int, default=0,
                         help="seed for randomized --family instances")
    p_sched.add_argument("--waypointed", action="store_true",
                         help="with --family random-update: add a waypoint")
    p_sched.add_argument("--algorithm", default="wayup", metavar="SCHEDULER",
                         help="registry scheduler spec: "
                              f"{', '.join(available_schedulers())}; "
                              "aliases and parameterized forms like "
                              "'combined:wpe+rlf' or 'optimal:slf?search=bfs' "
                              "resolve too")
    p_sched.add_argument("--properties", default=None,
                         help="comma-separated: wpe,slf,rlf,blackhole")
    p_sched.add_argument("--explain", action="store_true",
                         help="print the per-round change narrative")
    p_sched.add_argument("--json", action="store_true")
    p_sched.set_defaults(func=cmd_schedule)

    p_rounds = sub.add_parser("rounds", help="round-count scaling table")
    p_rounds.add_argument("--family", default="reversal",
                          choices=["reversal", "sawtooth", "slalom",
                                   "random", "random-wp"])
    p_rounds.add_argument("--n-min", type=int, default=5)
    p_rounds.add_argument("--n-max", type=int, default=25)
    p_rounds.add_argument("--step", type=int, default=5)
    p_rounds.add_argument("--seed", type=int, default=0,
                          help="seed for the randomized families")
    p_rounds.add_argument("--engine", default=None,
                          choices=["bfs", "iddfs", "bnb"],
                          help="add an exact minimum-round column computed "
                               "by this search engine of optimal:<props>")
    p_rounds.add_argument("--exact-properties", default="rlf",
                          metavar="P1+P2",
                          help="properties the --engine column optimizes "
                               "(default rlf)")
    p_rounds.add_argument("--time-limit", type=float, default=None,
                          metavar="SECONDS",
                          help="per-instance budget for the --engine column; "
                               "with bnb a timeout degrades to the proven "
                               "[lower, upper] round interval")
    p_rounds.add_argument("--json", action="store_true",
                          help="machine output; verifies every schedule and "
                               "exits non-zero on a verification failure")
    p_rounds.set_defaults(func=cmd_rounds)

    p_campaign = sub.add_parser(
        "campaign", help="declarative scenario campaigns (run/status/report)"
    )
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command", required=True)

    p_run = campaign_sub.add_parser("run", help="execute a campaign spec JSON")
    p_run.add_argument("spec", help="path to the campaign spec JSON file")
    p_run.add_argument("-j", "--workers", type=int, default=1,
                       help="worker processes (1 = in-process)")
    p_run.add_argument("--root", default="campaign-runs",
                       help="directory holding campaign run directories")
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(func=cmd_campaign_run)

    p_cserve = campaign_sub.add_parser(
        "serve", help="coordinate a campaign for a pull-based worker fleet"
    )
    p_cserve.add_argument("spec", help="path to the campaign spec JSON file")
    p_cserve.add_argument("--root", default="campaign-runs",
                          help="directory holding campaign run directories")
    p_cserve.add_argument("--port", type=int, default=0,
                          help="HTTP port for the fabric endpoints (0 = ephemeral)")
    p_cserve.add_argument("--host", default="127.0.0.1",
                          help="bind address; beyond loopback requires --token")
    p_cserve.add_argument("--token", default=None, metavar="SECRET",
                          help="shared secret workers must send as X-Repro-Auth")
    p_cserve.add_argument("--journal-compact-every", type=int, default=None,
                          metavar="N",
                          help="compact the fabric write-ahead journal into a "
                               "snapshot every N records")
    p_cserve.add_argument("--local-workers", type=int, default=0, metavar="N",
                          help="also spawn N worker processes against this server")
    p_cserve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                          help="give up waiting for the fleet after this long")
    p_cserve.add_argument("--lease-ttl", type=float, default=None, metavar="SECONDS",
                          help="lease TTL before an unrefreshed cell is reclaimed")
    p_cserve.add_argument("--heartbeat-interval", type=float, default=None,
                          metavar="SECONDS", help="worker heartbeat period")
    p_cserve.add_argument("--lease-cells", type=int, default=None, metavar="N",
                          help="cells handed out per lease")
    p_cserve.add_argument("--max-retries", type=int, default=None, metavar="N",
                          help="transient-failure retries before a cell errors out")
    p_cserve.add_argument("--audit-fraction", type=float, default=None,
                          metavar="F",
                          help="fraction of accepted cells re-executed by a "
                               "different worker and byte-compared (0 disables)")
    p_cserve.add_argument("--audit-seed", type=int, default=None, metavar="N",
                          help="seed for the deterministic audit sample")
    p_cserve.add_argument("--poison-kill-threshold", type=int, default=None,
                          metavar="N",
                          help="distinct worker deaths before a cell is "
                               "declared poisoned and terminally recorded")
    p_cserve.add_argument("--json", action="store_true")
    p_cserve.set_defaults(func=cmd_campaign_serve)

    p_work = campaign_sub.add_parser(
        "work", help="join a served campaign as a pull worker"
    )
    p_work.add_argument("url", help="coordinator base URL (from 'campaign serve')")
    p_work.add_argument("--campaign", default=None,
                        help="campaign id (defaults to the single served one)")
    p_work.add_argument("--name", default="worker",
                        help="worker name shown in coordinator status")
    p_work.add_argument("--cells", type=int, default=None, metavar="N",
                        help="max cells to lease at a time")
    p_work.add_argument("--batch-cells", type=int, default=1, metavar="N",
                        help="buffer N finished cells per submit round-trip "
                             "(1 streams each shard immediately)")
    p_work.add_argument("--token", default=None, metavar="SECRET",
                        help="shared secret matching the coordinator's --token")
    p_work.add_argument("--max-offline-s", type=float, default=120.0,
                        metavar="SECONDS",
                        help="how long to wait out a coordinator outage "
                             "(reconnect backoff budget) before giving up")
    p_work.add_argument("--json", action="store_true")
    p_work.set_defaults(func=cmd_campaign_work)

    p_status = campaign_sub.add_parser("status", help="progress of a campaign")
    p_status.add_argument("campaign", help="campaign id or run directory path")
    p_status.add_argument("--root", default="campaign-runs")
    p_status.add_argument("--url", default=None, metavar="URL",
                          help="poll a live coordinator's telemetry endpoint "
                               "instead of reading the run directory")
    p_status.add_argument("--watch", action="store_true",
                          help="with --url: keep polling until the campaign "
                               "finishes, printing a per-worker table; rides "
                               "out coordinator restarts")
    p_status.add_argument("--token", default=None, metavar="SECRET",
                          help="shared secret matching the coordinator's --token")
    p_status.add_argument("--interval", type=float, default=1.0,
                          metavar="SECONDS", help="--watch poll period")
    p_status.add_argument("--json", action="store_true")
    p_status.set_defaults(func=cmd_campaign_status)

    p_report = campaign_sub.add_parser("report", help="aggregate sweep table")
    p_report.add_argument("campaign", help="campaign id or run directory path")
    p_report.add_argument("--root", default="campaign-runs")
    p_report.add_argument("--format", default="ascii",
                          choices=["ascii", "csv", "json"])
    p_report.add_argument("--out", default=None, help="write instead of print")
    p_report.set_defaults(func=cmd_campaign_report)

    p_trace = sub.add_parser(
        "trace", help="inspect structured traces (see repro.obs)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summarize", help="per-phase time breakdown of a trace"
    )
    p_tsum.add_argument(
        "trace", help="trace JSONL file, or a directory of trace-*.jsonl"
    )
    p_tsum.add_argument("--json", action="store_true")
    p_tsum.set_defaults(func=cmd_trace_summarize)

    p_churn = sub.add_parser(
        "churn", help="online scheduling under topology churn"
    )
    churn_sub = p_churn.add_subparsers(dest="churn_command", required=True)
    p_crun = churn_sub.add_parser(
        "run", help="drive a seeded churn trace to quiescence"
    )
    p_crun.add_argument("--kind", default="fat-tree", choices=["fat-tree", "wan"])
    p_crun.add_argument("--size", type=int, default=4,
                        help="fat-tree arity (even) or WAN node count")
    p_crun.add_argument("--seed", type=int, default=0)
    p_crun.add_argument("--rate", type=float, default=50.0,
                        help="arrival rate per simulated second")
    p_crun.add_argument("--duration", type=float, default=400.0,
                        help="trace duration in simulated ms")
    p_crun.add_argument("--flows", type=int, default=6)
    p_crun.add_argument("--cancel-prob", type=float, default=0.1)
    p_crun.add_argument("--link-failures", type=int, default=1)
    p_crun.add_argument("--waypoint-prob", type=float, default=0.5)
    p_crun.add_argument("--unscheduled", action="store_true",
                        help="one-shot baseline (no safety oracle)")
    p_crun.add_argument("--defer", action="store_true",
                        help="queue mid-update arrivals instead of preempting")
    p_crun.add_argument("--replan-budget", type=int, default=2,
                        help="immediate re-plans per link-failure event")
    p_crun.add_argument("--json", action="store_true")
    p_crun.set_defaults(func=cmd_churn_run)

    p_topo = sub.add_parser("topo", help="generate a topology JSON")
    p_topo.add_argument("--kind", default="figure1",
                        choices=["linear", "ring", "grid", "fat-tree", "figure1"])
    p_topo.add_argument("--n", type=int, default=4)
    p_topo.add_argument("--hosts", action="store_true")
    p_topo.add_argument("--out", default="topology.json")
    p_topo.set_defaults(func=cmd_topo)

    p_serve = sub.add_parser("serve", help="REST HTTP server on the demo network")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
