"""Command-line interface (``repro`` entry point)."""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
