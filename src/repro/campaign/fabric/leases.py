"""Worker registry and lease table for the campaign fabric.

The coordinator hands out *leases*: a worker takes temporary ownership of
a batch of cells, bounded by a TTL.  Liveness is tracked per worker --
every RPC a worker makes (heartbeat, lease, submit, fail) counts as proof
of life and extends that worker's leases -- so a worker that is alive but
slow keeps its work, while a SIGKILLed or wedged worker stops making
requests, its heartbeat ages out, and :meth:`LeaseTable.reap` returns its
leases for the coordinator to reclaim.

Extensions are bounded: a lease can only be refreshed up to
``hard_ttl_factor`` times its TTL past the grant.  Without the cap, a
worker that silently lost a result on the wire but keeps heartbeating
(it believes the submit landed) would hold its cell leased forever and
the campaign would never finish.  Reclaiming under a live worker is safe
-- the coordinator's accept path is idempotent, so the worst case is
duplicate work, never duplicate records.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class Lease:
    """Temporary ownership of a batch of cell indices by one worker."""

    lease_id: str
    worker_id: str
    cell_indices: list[int]
    granted_at: float
    expires_at: float
    #: refreshes never push ``expires_at`` past this point
    max_expires_at: float = float("inf")


@dataclass
class WorkerState:
    """One registered worker's liveness bookkeeping."""

    worker_id: str
    name: str
    registered_at: float
    last_seen: float
    meta: dict = field(default_factory=dict)


class LeaseTable:
    """Registration, liveness, and lease-TTL bookkeeping (no cell logic)."""

    def __init__(
        self,
        lease_ttl_s: float,
        heartbeat_timeout_s: float,
        hard_ttl_factor: float = 8.0,
    ) -> None:
        self.lease_ttl_s = float(lease_ttl_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.hard_ttl_factor = float(hard_ttl_factor)
        self._workers: dict[str, WorkerState] = {}
        self._leases: dict[str, Lease] = {}
        self._worker_seq = itertools.count(1)
        self._lease_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def register_worker(
        self, name: str, meta: Mapping[str, Any], now: float
    ) -> WorkerState:
        worker_id = f"w{next(self._worker_seq)}-{name}"
        state = WorkerState(
            worker_id=worker_id,
            name=name,
            registered_at=now,
            last_seen=now,
            meta=dict(meta),
        )
        self._workers[worker_id] = state
        return state

    def touch(self, worker_id: str, now: float) -> bool:
        """Record proof of life; extends the worker's leases.  False when
        the worker is unknown (never registered, or reaped as dead)."""
        state = self._workers.get(worker_id)
        if state is None:
            return False
        state.last_seen = now
        for lease in self._leases.values():
            if lease.worker_id == worker_id:
                lease.expires_at = min(
                    now + self.lease_ttl_s, lease.max_expires_at
                )
        return True

    def deregister_worker(self, worker_id: str) -> list[Lease]:
        """Forget a worker on its own request (graceful drain) and return
        its leases so the coordinator can requeue the cells immediately
        instead of waiting for the TTL to expire.  Unknown workers (never
        registered, already reaped) simply return no leases."""
        self._workers.pop(worker_id, None)
        released = [
            lease
            for lease in self._leases.values()
            if lease.worker_id == worker_id
        ]
        for lease in released:
            del self._leases[lease.lease_id]
        return released

    def release_worker_leases(self, worker_id: str) -> list[Lease]:
        """Remove and return a worker's leases, keeping it registered.

        Quarantine path: the worker stays known (its heartbeats remain
        answerable, its lease requests get the quarantined reply) but its
        in-flight cells go back to the pool immediately."""
        released = [
            lease
            for lease in self._leases.values()
            if lease.worker_id == worker_id
        ]
        for lease in released:
            del self._leases[lease.lease_id]
        return released

    def worker_alive(self, worker_id: str, now: float) -> bool:
        state = self._workers.get(worker_id)
        return (
            state is not None
            and now - state.last_seen <= self.heartbeat_timeout_s
        )

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def grant(self, worker_id: str, cell_indices: list[int], now: float) -> Lease:
        if worker_id not in self._workers:
            raise KeyError(worker_id)
        lease = Lease(
            lease_id=f"l{next(self._lease_seq)}",
            worker_id=worker_id,
            cell_indices=list(cell_indices),
            granted_at=now,
            expires_at=now + self.lease_ttl_s,
            max_expires_at=now + self.lease_ttl_s * self.hard_ttl_factor,
        )
        self._leases[lease.lease_id] = lease
        return lease

    def release_cell(self, lease_id: str, cell_index: int) -> bool:
        """Drop one finished cell from its lease (lease removed when
        empty).  False when the lease no longer exists -- a stale submit
        after a reclaim."""
        lease = self._leases.get(lease_id)
        if lease is None:
            return False
        if cell_index in lease.cell_indices:
            lease.cell_indices.remove(cell_index)
        if not lease.cell_indices:
            del self._leases[lease.lease_id]
        return True

    def reap(self, now: float) -> list[tuple[Lease, str]]:
        """Remove and return (lease, reason) for every expired lease and
        every lease owned by a dead worker; dead workers are dropped."""
        dead = [
            worker_id
            for worker_id, state in self._workers.items()
            if now - state.last_seen > self.heartbeat_timeout_s
        ]
        reclaimed: list[tuple[Lease, str]] = []
        for lease in list(self._leases.values()):
            if lease.worker_id in dead:
                reclaimed.append((lease, "worker-dead"))
                del self._leases[lease.lease_id]
            elif lease.expires_at <= now:
                reclaimed.append((lease, "lease-expired"))
                del self._leases[lease.lease_id]
        for worker_id in dead:
            del self._workers[worker_id]
        return reclaimed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def leases(self) -> list[Lease]:
        return list(self._leases.values())

    def workers(self) -> list[WorkerState]:
        return list(self._workers.values())
