"""Pull-based campaign fabric worker.

A worker registers with the coordinator, then loops: lease a batch of
cells, execute each through the unchanged
:func:`~repro.campaign.runner.run_cell` (deterministic records, per-cell
SIGALRM timeouts, error capture), and stream each finished cell straight
back -- one shard per cell, so a death loses at most the cell in flight.
A daemon heartbeat thread keeps the worker's leases alive while a long
cell computes.

Infrastructure failures around ``run_cell`` (the cell itself never
raises) are reported to the coordinator as *transient* via ``fail``, to
be retried with backoff; transport failures on submit are swallowed after
the :class:`HttpClient` retry budget -- the lease expires and the
coordinator re-runs the cell, which is safe because records are
deterministic and the accept path idempotent.

:func:`worker_main` is the process entry point used by ``repro campaign
work``, the fault-injection suite, and the fabric smoke: plain args, so
it survives ``multiprocessing`` spawn and SIGKILL harnesses.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import TransportError
from repro.obs import trace as obs
from repro.campaign.fabric.chaos import Chaos, ChaosConfig, ChaosKill
from repro.campaign.runner import run_cell


class FabricWorker:
    """One pull-based worker bound to a coordinator transport."""

    def __init__(
        self,
        client,
        *,
        name: str = "worker",
        max_lease_cells: int | None = None,
        chaos: ChaosConfig | None = None,
        sleep=time.sleep,
        run_cell_fn=run_cell,
    ) -> None:
        self.client = client
        self.name = name
        self.max_lease_cells = max_lease_cells
        self.chaos = Chaos(chaos) if chaos is not None else None
        self._sleep = sleep
        self._run_cell = run_cell_fn
        self.worker_id: str | None = None
        self.cells_done = 0
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Work until the coordinator reports the campaign done.

        Returns a summary dict; ``died`` is True when an injected
        exception-mode kill ended the worker early (process workers in
        ``sigkill`` mode never return at all).
        """
        died = False
        try:
            self._register()
            self._loop()
        except ChaosKill:
            died = True
        finally:
            self._stop_heartbeats()
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "cells_done": self.cells_done,
            "died": died,
        }

    # ------------------------------------------------------------------
    def _register(self) -> None:
        with obs.span("fabric.rpc.register", worker=self.name):
            reply = self.client.register(
                {"name": self.name, "pid": os.getpid()}
            )
        self.worker_id = reply["worker_id"]
        interval = float(reply.get("heartbeat_interval_s", 2.0))
        self._hb_stop.clear()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, args=(interval,), daemon=True
        )
        self._hb_thread.start()

    def _stop_heartbeats(self) -> None:
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=2.0)
            self._hb_thread = None

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._hb_stop.wait(interval):
            if self.chaos is not None and not self.chaos.heartbeat_allowed():
                continue
            try:
                with obs.span("fabric.rpc.heartbeat", worker_id=self.worker_id):
                    self.client.heartbeat(self.worker_id)
            except Exception:  # noqa: BLE001 - liveness is best-effort;
                pass  # a lost beat at worst costs a reclaim + re-run

    def _loop(self) -> None:
        while True:
            with obs.span("fabric.rpc.lease", worker_id=self.worker_id):
                reply = self.client.lease(self.worker_id, self.max_lease_cells)
            if reply.get("unknown_worker"):
                # declared dead (frozen heartbeats, long pause) and
                # reaped; re-register and keep pulling -- our old cells
                # were reclaimed, any in-flight submit lands as stale
                self._stop_heartbeats()
                self._register()
                continue
            if reply.get("done"):
                return
            cells = reply.get("cells", [])
            if not cells:
                self._sleep(float(reply.get("retry_after_s", 0.05)))
                continue
            lease_id = reply["lease_id"]
            for payload in cells:
                self._execute(lease_id, payload)

    def _execute(self, lease_id: str, payload: dict) -> None:
        cell_id = payload["cell_id"]
        # one fresh trace per cell attempt: run + submit stitch together,
        # and the coordinator's accept span joins via the propagated
        # context (contextvars in-process, HTTP headers across the wire)
        with obs.root_span(
            "fabric.cell",
            cell_id=cell_id,
            worker_id=self.worker_id,
            lease_id=lease_id,
        ):
            try:
                record, timing = self._run_cell(payload)
            except ChaosKill:
                raise
            except Exception as exc:  # noqa: BLE001 - run_cell never raises;
                # anything here is harness-level (OOM-killed import, chaos)
                self._report_fail(
                    lease_id, cell_id, f"{type(exc).__name__}: {exc}"
                )
                return
            if self.chaos is not None:
                self.chaos.on_cell_computed()  # the configured death point
                plan = self.chaos.submit_plan()
                if plan.delay_s:
                    self._sleep(plan.delay_s)
                if plan.drop:
                    return  # shard lost on the wire; lease expiry re-runs it
                self._submit(lease_id, cell_id, record, timing)
                if plan.duplicate:
                    self._submit(lease_id, cell_id, record, timing)
            else:
                self._submit(lease_id, cell_id, record, timing)
            self.cells_done += 1

    def _submit(self, lease_id: str, cell_id: str, record, timing) -> None:
        try:
            with obs.span(
                "fabric.rpc.submit",
                cell_id=cell_id,
                worker_id=self.worker_id,
            ):
                self.client.submit(
                    self.worker_id, lease_id, cell_id, record, timing
                )
        except TransportError:
            # retry budget spent; the coordinator will reclaim the lease
            # and re-run the cell -- deterministic, so nothing is lost
            pass

    def _report_fail(self, lease_id: str, cell_id: str, detail: str) -> None:
        try:
            with obs.span(
                "fabric.rpc.fail", cell_id=cell_id, worker_id=self.worker_id
            ):
                self.client.fail(self.worker_id, lease_id, cell_id, detail)
        except TransportError:
            pass


def worker_main(
    url: str,
    campaign_id: str,
    *,
    name: str = "worker",
    max_lease_cells: int | None = None,
    chaos: dict | None = None,
) -> dict:
    """Process entry point: connect over HTTP and work until done."""
    from repro.campaign.fabric.transport import HttpFabricClient

    worker = FabricWorker(
        HttpFabricClient(url, campaign_id),
        name=name,
        max_lease_cells=max_lease_cells,
        chaos=ChaosConfig.from_dict(chaos) if chaos is not None else None,
    )
    return worker.run()


def run_local_fleet(
    coordinator,
    n_workers: int = 2,
    *,
    chaos: dict[int, ChaosConfig] | None = None,
    max_lease_cells: int | None = None,
) -> list[dict]:
    """Run an in-process thread fleet to completion (tests, smoke paths).

    ``chaos`` maps worker ordinals to fault plans; injected kills must use
    ``kill_mode="exception"`` since threads cannot be SIGKILLed.  Returns
    each worker's summary.
    """
    from repro.campaign.fabric.transport import LocalClient

    workers = [
        FabricWorker(
            LocalClient(coordinator),
            name=f"local{i}",
            max_lease_cells=max_lease_cells,
            chaos=(chaos or {}).get(i),
        )
        for i in range(n_workers)
    ]
    summaries: list[dict] = [None] * len(workers)  # type: ignore[list-item]

    def _run(i: int) -> None:
        summaries[i] = workers[i].run()

    threads = [
        threading.Thread(target=_run, args=(i,), daemon=True)
        for i in range(len(workers))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return summaries
