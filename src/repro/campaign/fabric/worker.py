"""Pull-based campaign fabric worker.

A worker registers with the coordinator, then loops: lease a batch of
cells, execute each through the unchanged
:func:`~repro.campaign.runner.run_cell` (deterministic records, per-cell
SIGALRM timeouts, error capture), and stream each finished cell straight
back -- one shard per cell, so a death loses at most the cell in flight.
A daemon heartbeat thread keeps the worker's leases alive while a long
cell computes.

Infrastructure failures around ``run_cell`` (the cell itself never
raises) are reported to the coordinator as *transient* via ``fail``, to
be retried with backoff.

Coordinator outages are survivable: when a lease or submit exhausts the
:class:`HttpClient` retry budget (:class:`~repro.errors.TransportError`),
the worker assumes the coordinator is restarting and reconnects with
capped exponential backoff + jitter, re-registering under the same name
with a fresh epoch.  A computed-but-undelivered record is *resubmitted*
after the reconnect rather than recomputed -- records are deterministic
and the accept path idempotent, so a submit under a lease that died with
the old coordinator lands as a stale-but-accepted shard while the cell
is open (and a counted duplicate once it is not).  ``max_offline_s``
bounds how long a worker waits for the coordinator to come back before
giving up.  4xx answers (:class:`~repro.errors.HttpStatusError` -- auth
mismatch, malformed request) always fail fast instead of retrying.

Result integrity (PR 10): every shard carries an ``integrity`` sidecar --
the canonical-JSON sha256 of the record plus the leased payload's
identity hash -- so the coordinator can reject wire corruption and
wrong-cell submissions before journaling them.  ``batch_cells > 1``
switches the worker from streaming one shard per cell to flushing
batches through ``submit_batch``; per-record idempotence on the
coordinator makes a redelivered batch a row of counted no-ops.  A worker
the coordinator has *quarantined* (failed validation or a re-execution
audit) learns it from the reply, stops pulling, and exits: its results
are no longer wanted.

Graceful drain: ``request_drain()`` (wired to SIGTERM/SIGINT in
:func:`worker_main`) lets the worker finish its in-flight cell, hand the
rest of its lease back (``fail`` with ``requeue=True`` -- no retry
budget burned), and deregister, so the coordinator requeues the cells
immediately instead of waiting out the lease TTL.

:func:`worker_main` is the process entry point used by ``repro campaign
work``, the fault-injection suite, and the fabric smokes: plain args, so
it survives ``multiprocessing`` spawn and SIGKILL harnesses.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

from repro.errors import HttpStatusError, TransportError
from repro.obs import trace as obs
from repro.campaign.fabric.chaos import Chaos, ChaosConfig, ChaosKill
from repro.campaign.runner import run_cell
from repro.campaign.spec import payload_identity_hash
from repro.campaign.store import record_checksum


class FabricWorker:
    """One pull-based worker bound to a coordinator transport."""

    def __init__(
        self,
        client,
        *,
        name: str = "worker",
        max_lease_cells: int | None = None,
        batch_cells: int = 1,
        chaos: ChaosConfig | None = None,
        reconnect_base_s: float = 0.2,
        reconnect_cap_s: float = 5.0,
        max_offline_s: float = 120.0,
        jitter_seed: int | None = None,
        sleep=time.sleep,
        clock=time.monotonic,
        run_cell_fn=run_cell,
    ) -> None:
        self.client = client
        self.name = name
        self.max_lease_cells = max_lease_cells
        self.batch_cells = max(1, int(batch_cells))
        self.chaos = Chaos(chaos) if chaos is not None else None
        self.reconnect_base_s = float(reconnect_base_s)
        self.reconnect_cap_s = float(reconnect_cap_s)
        self.max_offline_s = float(max_offline_s)
        self._rng = random.Random(jitter_seed)
        self._sleep = sleep
        self._clock = clock
        self._run_cell = run_cell_fn
        self.worker_id: str | None = None
        self.cells_done = 0
        self.reconnects = 0
        self.gave_up_offline = False
        self.quarantined = False
        self.rejected_submits = 0
        self._pending: list[dict] = []  # computed, not yet batch-flushed
        self._epoch = 0
        self._draining = threading.Event()
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Ask the worker to finish its in-flight cell and exit cleanly
        (SIGTERM/SIGINT handler; also callable from tests)."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def run(self) -> dict:
        """Work until the coordinator reports the campaign done.

        Returns a summary dict; ``died`` is True when an injected
        exception-mode kill ended the worker early (process workers in
        ``sigkill`` mode never return at all).
        """
        died = False
        try:
            self._register()
            self._loop()
        except ChaosKill:
            died = True
        finally:
            self._stop_heartbeats()
        if not died and not self.gave_up_offline:
            self._deregister()
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "cells_done": self.cells_done,
            "died": died,
            "drained": self._draining.is_set(),
            "reconnects": self.reconnects,
            "gave_up_offline": self.gave_up_offline,
            "quarantined": self.quarantined,
            "rejected_submits": self.rejected_submits,
        }

    # ------------------------------------------------------------------
    def _register(self) -> None:
        self._epoch += 1
        with obs.span("fabric.rpc.register", worker=self.name,
                      epoch=self._epoch):
            reply = self.client.register(
                {"name": self.name, "pid": os.getpid(),
                 "epoch": self._epoch}
            )
        self.worker_id = reply["worker_id"]
        interval = float(reply.get("heartbeat_interval_s", 2.0))
        # a fresh stop event per registration: a previous epoch's thread
        # that outlived its join timeout still sees its own (set) event
        self._hb_stop = threading.Event()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop,
            args=(interval, self._hb_stop),
            daemon=True,
        )
        self._hb_thread.start()

    def _stop_heartbeats(self) -> None:
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=2.0)
            self._hb_thread = None

    def _heartbeat_loop(self, interval: float, stop: threading.Event) -> None:
        while not stop.wait(interval):
            if self.chaos is not None and not self.chaos.heartbeat_allowed():
                continue
            try:
                with obs.span("fabric.rpc.heartbeat", worker_id=self.worker_id):
                    self.client.heartbeat(self.worker_id)
            except Exception:  # noqa: BLE001 - liveness is best-effort; a
                pass  # lost beat (or a restarting coordinator) at worst
                # costs a reclaim + re-run -- the pull loop reconnects

    def _ride_out_outage(self, why: str) -> bool:
        """The coordinator stopped answering: wait for it to come back.

        Capped exponential backoff + jitter, re-registering (same worker
        name, fresh epoch) on every attempt.  Returns False -- and marks
        the worker as having given up -- once ``max_offline_s`` of
        continuous outage is spent; a drain request also stops waiting.
        4xx answers re-raise: an auth mismatch or malformed request will
        not get better by retrying.
        """
        self._stop_heartbeats()
        obs.event(
            "fabric.worker_offline", worker_id=self.worker_id, why=why
        )
        deadline = self._clock() + self.max_offline_s
        attempt = 0
        while not self._draining.is_set():
            delay = min(
                self.reconnect_cap_s,
                self.reconnect_base_s * (2.0 ** attempt),
            ) * (1.0 + 0.5 * self._rng.random())
            if self._clock() + delay > deadline:
                break
            self._sleep(delay)
            attempt += 1
            try:
                self._register()
            except HttpStatusError as exc:
                if exc.status == 404:
                    continue  # port is back up but the campaign is not
                    # re-served yet; keep knocking until recovery finishes
                raise  # fast-fail: a 401 auth mismatch is not weather
            except TransportError:
                continue
            self.reconnects += 1
            obs.event(
                "fabric.worker_reconnected",
                worker_id=self.worker_id,
                attempts=attempt,
                why=why,
            )
            return True
        if not self._draining.is_set():
            self.gave_up_offline = True
            obs.event(
                "fabric.worker_gave_up",
                worker_id=self.worker_id,
                offline_budget_s=self.max_offline_s,
            )
        return False

    def _loop(self) -> None:
        while True:
            if self._draining.is_set():
                return
            try:
                with obs.span("fabric.rpc.lease", worker_id=self.worker_id):
                    reply = self.client.lease(
                        self.worker_id, self.max_lease_cells
                    )
            except HttpStatusError:
                raise
            except TransportError:
                if not self._ride_out_outage("lease"):
                    return
                continue
            if reply.get("unknown_worker"):
                # declared dead (frozen heartbeats, long pause) and
                # reaped; re-register and keep pulling -- our old cells
                # were reclaimed, any in-flight submit lands as stale
                self._stop_heartbeats()
                try:
                    self._register()
                except TransportError:
                    if not self._ride_out_outage("register"):
                        return
                continue
            if reply.get("done"):
                return
            if reply.get("quarantined"):
                # the coordinator no longer wants this worker's results;
                # pulling harder will not change the verdict
                self.quarantined = True
                obs.event(
                    "fabric.worker_quarantined", worker_id=self.worker_id
                )
                return
            cells = reply.get("cells", [])
            if not cells:
                self._sleep(float(reply.get("retry_after_s", 0.05)))
                continue
            lease_id = reply["lease_id"]
            for i, payload in enumerate(cells):
                if self._draining.is_set():
                    self._flush_batch(lease_id)
                    self._hand_back(lease_id, cells[i:])
                    return
                if not self._execute(lease_id, payload):
                    # outage mid-batch: the lease died with the old
                    # coordinator (or the worker gave up) -- abandon the
                    # rest of the batch and pull a fresh lease
                    break
            else:
                # lease exhausted cleanly: deliver whatever batching held
                self._flush_batch(lease_id)
            if self.gave_up_offline or self.quarantined:
                return

    def _execute(self, lease_id: str, payload: dict) -> bool:
        """Run + deliver one cell; False when the batch should be
        abandoned (the coordinator restarted, the worker gave up, or it
        was quarantined)."""
        cell_id = payload["cell_id"]
        if self.chaos is not None:
            self.chaos.maybe_die_on(cell_id)  # the poison-cell scenario
        # one fresh trace per cell attempt: run + submit stitch together,
        # and the coordinator's accept span joins via the propagated
        # context (contextvars in-process, HTTP headers across the wire)
        with obs.root_span(
            "fabric.cell",
            cell_id=cell_id,
            worker_id=self.worker_id,
            lease_id=lease_id,
        ):
            try:
                record, timing = self._run_cell(payload)
            except ChaosKill:
                raise
            except Exception as exc:  # noqa: BLE001 - run_cell never raises;
                # anything here is harness-level (OOM-killed import, chaos)
                self._report_fail(
                    lease_id, cell_id, f"{type(exc).__name__}: {exc}"
                )
                return True
            duplicate = False
            if self.chaos is not None:
                self.chaos.on_cell_computed()  # the configured death point
                if self.chaos.lying():
                    # pre-checksum falsification: the integrity sidecar
                    # will match, only an audit re-execution catches it
                    record = Chaos.lie(record)
            integrity = {
                "record_sha256": record_checksum(record),
                "cell_hash": payload_identity_hash(payload),
            }
            if self.chaos is not None:
                plan = self.chaos.submit_plan()
                if plan.delay_s:
                    self._sleep(plan.delay_s)
                if plan.drop:
                    return True  # shard lost on the wire; lease expiry re-runs it
                if plan.corrupt:
                    # post-checksum damage: the attached checksum no
                    # longer matches what arrives
                    record = Chaos.corrupt(record)
                duplicate = plan.duplicate
            entry = {
                "cell_id": cell_id,
                "record": record,
                "timing": timing,
                "integrity": integrity,
            }
            if self.batch_cells > 1:
                self._pending.append(entry)
                if duplicate:
                    self._pending.append(dict(entry))
                if len(self._pending) >= self.batch_cells:
                    return self._flush_batch(lease_id)
                return True
            outcome = self._submit(lease_id, entry)
            if duplicate and outcome == "ok":
                self._submit(lease_id, entry)
            if outcome in ("ok", "resubmitted"):
                self.cells_done += 1
            return outcome == "ok"

    def _submit(self, lease_id: str, entry: dict) -> str:
        """Deliver one shard: ``"ok"``, ``"resubmitted"`` (delivered
        after riding out an outage), ``"offline"`` (gave up), or
        ``"quarantined"`` / ``"rejected"`` (the coordinator refused it)."""
        outcome = "ok"
        cell_id = entry["cell_id"]
        while True:
            try:
                with obs.span(
                    "fabric.rpc.submit",
                    cell_id=cell_id,
                    worker_id=self.worker_id,
                ):
                    reply = self.client.submit(
                        self.worker_id,
                        lease_id,
                        cell_id,
                        entry["record"],
                        entry["timing"],
                        entry.get("integrity"),
                    )
                if reply.get("rejected"):
                    self.rejected_submits += 1
                if reply.get("quarantined"):
                    self.quarantined = True
                    obs.event(
                        "fabric.worker_quarantined",
                        worker_id=self.worker_id,
                        cell_id=cell_id,
                    )
                    return "quarantined"
                if reply.get("rejected"):
                    return "rejected"
                return outcome
            except HttpStatusError:
                raise
            except TransportError:
                # retry budget spent: the coordinator is down or
                # restarting.  The record is already computed, so ride
                # out the outage and deliver it again -- deterministic
                # records + idempotent accept make the redelivery safe
                # even under a lease that died with the old coordinator.
                if not self._ride_out_outage("submit"):
                    return "offline"
                outcome = "resubmitted"

    def _flush_batch(self, lease_id: str) -> bool:
        """Deliver the pending batch through ``submit_batch``.

        A redelivered batch (after riding out an outage) is safe: the
        coordinator folds each record idempotently, so already-accepted
        entries come back as counted duplicates.  False when the worker
        went offline for good or was quarantined mid-batch.
        """
        while self._pending:
            entries = list(self._pending)
            try:
                with obs.span(
                    "fabric.rpc.submit_batch",
                    worker_id=self.worker_id,
                    entries=len(entries),
                ):
                    reply = self.client.submit_batch(
                        self.worker_id, lease_id, entries
                    )
            except HttpStatusError:
                raise
            except TransportError:
                if not self._ride_out_outage("submit"):
                    return False
                continue
            self._pending.clear()
            for result in reply.get("results", []):
                if result.get("rejected"):
                    self.rejected_submits += 1
                if result.get("quarantined"):
                    self.quarantined = True
                if result.get("accepted") or result.get("duplicate"):
                    self.cells_done += 1
            if self.quarantined:
                obs.event(
                    "fabric.worker_quarantined", worker_id=self.worker_id
                )
                return False
        return True

    def _report_fail(self, lease_id: str, cell_id: str, detail: str) -> None:
        try:
            with obs.span(
                "fabric.rpc.fail", cell_id=cell_id, worker_id=self.worker_id
            ):
                self.client.fail(self.worker_id, lease_id, cell_id, detail)
        except TransportError:
            pass  # lease expiry (or recovery) requeues the cell anyway

    def _hand_back(self, lease_id: str, payloads) -> None:
        """Drain: return unstarted leased cells without burning retries."""
        for payload in payloads:
            try:
                with obs.span(
                    "fabric.rpc.fail",
                    cell_id=payload["cell_id"],
                    worker_id=self.worker_id,
                ):
                    self.client.fail(
                        self.worker_id,
                        lease_id,
                        payload["cell_id"],
                        "worker draining",
                        requeue=True,
                    )
            except TransportError:
                return  # the coordinator will reclaim via TTL instead

    def _deregister(self) -> None:
        """Best-effort goodbye so reclaim never waits on a clean exit."""
        if self.worker_id is None:
            return
        try:
            with obs.span(
                "fabric.rpc.deregister", worker_id=self.worker_id
            ):
                self.client.deregister(self.worker_id)
        except TransportError:
            pass


def worker_main(
    url: str,
    campaign_id: str,
    *,
    name: str = "worker",
    max_lease_cells: int | None = None,
    batch_cells: int = 1,
    chaos: dict | None = None,
    max_offline_s: float = 120.0,
    token: str | None = None,
) -> dict:
    """Process entry point: connect over HTTP and work until done.

    Installs SIGTERM/SIGINT handlers that drain gracefully -- finish the
    in-flight cell, hand the rest of the lease back, deregister -- when
    running as the process main thread (always true under
    ``multiprocessing`` spawn and the CLI).
    """
    from repro.campaign.fabric.transport import HttpFabricClient

    worker = FabricWorker(
        HttpFabricClient(url, campaign_id, token=token),
        name=name,
        max_lease_cells=max_lease_cells,
        batch_cells=batch_cells,
        max_offline_s=max_offline_s,
        chaos=ChaosConfig.from_dict(chaos) if chaos is not None else None,
    )
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: worker.request_drain())
    return worker.run()


def run_local_fleet(
    coordinator,
    n_workers: int = 2,
    *,
    chaos: dict[int, ChaosConfig] | None = None,
    max_lease_cells: int | None = None,
    batch_cells: int = 1,
    max_offline_s: float = 120.0,
) -> list[dict]:
    """Run an in-process thread fleet to completion (tests, smoke paths).

    ``chaos`` maps worker ordinals to fault plans; injected kills must use
    ``kill_mode="exception"`` since threads cannot be SIGKILLed.  Returns
    each worker's summary.
    """
    from repro.campaign.fabric.transport import LocalClient

    workers = [
        FabricWorker(
            LocalClient(coordinator),
            name=f"local{i}",
            max_lease_cells=max_lease_cells,
            batch_cells=batch_cells,
            max_offline_s=max_offline_s,
            chaos=(chaos or {}).get(i),
        )
        for i in range(n_workers)
    ]
    summaries: list[dict] = [None] * len(workers)  # type: ignore[list-item]

    def _run(i: int) -> None:
        summaries[i] = workers[i].run()

    threads = [
        threading.Thread(target=_run, args=(i,), daemon=True)
        for i in range(len(workers))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return summaries
