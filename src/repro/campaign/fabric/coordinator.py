"""The campaign fabric coordinator: cells in, leases out, shards folded.

The coordinator owns one campaign: it expands the spec, leases pending
cells to pull-based workers, tracks liveness through heartbeats, reclaims
the cells of dead or expired leases, retries transient failures with
bounded exponential backoff + jitter, escalates timed-out cells once with
a larger budget, and folds submitted shards through the unchanged
:class:`~repro.campaign.store.RunStore` path.

Determinism contract (the same one the pool runner honors): records are
seed-derived and written in canonical cell order regardless of which
worker produced them or in what order they arrived -- out-of-order shards
are buffered and flushed as the canonical prefix grows -- so an N-worker
fleet's ``results.jsonl`` is byte-identical to the 1-worker run, and both
match the single-host pool runner.

At-least-once semantics: every accept path is idempotent.  A duplicate
submission for a completed cell is a counted no-op; a submission under a
reclaimed (stale) lease is still accepted when the cell is incomplete --
the work is deterministic, so whichever copy arrives first wins and the
rest are no-ops.

Crash tolerance: every state transition -- lease grant, accept (including
out-of-order shards parked in the buffer), transient retry, escalation,
terminal failure -- is written to the run directory's write-ahead
:class:`~repro.campaign.fabric.journal.FabricJournal` *before* it is
acknowledged.  A restarted coordinator replays snapshot + journal:
buffered shards are re-admitted (completed work is never re-run), retry
and escalation budgets carry over, and every pre-crash lease is expired
so open cells re-lease cleanly.  A recovered run stays byte-identical to
an uncrashed one.

Result integrity (PR 10): the coordinator stops *trusting* well-formed
payloads.  Submissions carry a canonical-JSON sha256 over the record plus
the cell payload's identity hash, validated before anything is journaled;
a configurable ``audit_fraction`` of accepted cells is deterministically
sampled (seeded on the cell id) and held back until a *different* worker
re-executes them and the folds match byte-for-byte (any two matching
candidates win -- a lying auditor cannot outvote two honest runs).
Workers that fail validation or audits are *quarantined* by name: no new
leases, in-flight leases requeued, their unflushed unaudited accepts
retracted and re-run.  A cell whose worker dies while computing it is
charged a *kill*; ``poison_kill_threshold`` distinct dead workers mark
the cell poisoned and terminally recorded instead of looping through the
retry budget.  All of it -- rejects, candidates, quarantines, kills,
poisonings -- is journaled, so the verdicts survive coordinator crashes.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import CampaignError
from repro.obs import trace as obs
from repro.campaign.fabric.journal import FabricJournal
from repro.campaign.fabric.leases import LeaseTable
from repro.campaign.runner import _truncate
from repro.campaign.schedulers import resolve
from repro.campaign.spec import (
    Cell,
    CampaignSpec,
    derive_seed,
    payload_identity_hash,
)
from repro.campaign.store import RunStore, encode_record, record_checksum
from repro.metrics import global_collector

#: Fabric counter names (exposed via ``repro.metrics`` and ``status()``).
COUNTERS = (
    "leases_granted",
    "cells_leased",
    "reclaims",
    "retries",
    "escalations",
    "duplicate_submits",
    "stale_submits",
    "transient_failures",
    "deregisters",
    "journal_records",
    "journal_compactions",
    "batch_submits",
    "integrity_rejects",
    "audits_run",
    "audit_mismatches",
    "quarantines",
    "kills",
    "poisoned_cells",
    "recovered_buffered",
    "recovered_retries",
    "recovered_escalations",
    "recovered_leases_expired",
    "recovered_quarantines",
    "recovered_audit_candidates",
)


@dataclass
class _CellState:
    """Coordinator-side lifecycle of one cell."""

    cell: Cell
    payload: dict
    status: str = "pending"  # pending | leased | audit | audit_leased | done
    attempts: int = 0
    escalated: bool = False
    eligible_at: float = 0.0
    on_disk: bool = False  # completed by a previous run; already in results
    #: worker *name* whose record is buffered (None for coordinator-made
    #: terminal records); quarantining that name retracts the record
    accepted_by: str | None = None
    #: the buffered record was confirmed byte-for-byte by a second worker
    audited: bool = False
    #: distinct worker names that died while computing this cell
    killers: set[str] = field(default_factory=set)
    poisoned: bool = False


class Coordinator:
    """Lease/heartbeat/submit service for one campaign's worker fleet."""

    def __init__(
        self,
        spec: CampaignSpec,
        root: str = "campaign-runs",
        store: RunStore | None = None,
        *,
        lease_ttl_s: float = 10.0,
        lease_hard_ttl_factor: float = 8.0,
        heartbeat_interval_s: float = 2.0,
        heartbeat_timeout_s: float | None = None,
        lease_cells: int = 4,
        max_transient_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        escalation_factor: float = 4.0,
        journal_fsync: bool = True,
        journal_compact_every: int = 256,
        audit_fraction: float = 0.0,
        audit_seed: int = 0,
        poison_kill_threshold: int = 3,
        chaos=None,
        clock=time.monotonic,
        jitter_seed: int = 0,
    ) -> None:
        self.spec = spec
        self.store = store or RunStore(root, spec.campaign_id)
        self.lease_ttl_s = float(lease_ttl_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(
            heartbeat_timeout_s
            if heartbeat_timeout_s is not None
            else 3.0 * heartbeat_interval_s
        )
        self.lease_cells = max(1, int(lease_cells))
        self.max_transient_retries = int(max_transient_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        #: ``0`` disables timeout escalation entirely.
        self.escalation_factor = float(escalation_factor)
        #: Fraction of accepted cells held back for audit re-execution by
        #: a different worker (``0`` disables auditing; ``1`` audits all).
        self.audit_fraction = max(0.0, min(1.0, float(audit_fraction)))
        self.audit_seed = int(audit_seed)
        #: Distinct dead workers before a cell is declared poisoned.
        self.poison_kill_threshold = max(1, int(poison_kill_threshold))
        #: Optional :class:`~repro.campaign.fabric.chaos.CoordinatorChaos`
        #: (crash smoke / tests): fires right after an accept is
        #: journaled, the nastiest deterministic crash point.
        self.chaos = chaos
        self._clock = clock
        self._rng = random.Random(jitter_seed)
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {name: 0 for name in COUNTERS}

        cells = spec.expand()
        self.store.initialize(spec, n_cells=len(cells))
        completed = self.store.completed_ids()
        self._states = [
            _CellState(cell=cell, payload=cell.payload()) for cell in cells
        ]
        self._by_id = {cell.cell_id: i for i, cell in enumerate(cells)}
        for state in self._states:
            if state.cell.cell_id in completed:
                state.status = "done"
                state.on_disk = True
        # in-order folding relies on the resumed prefix being canonical
        # (both the pool runner and this coordinator only ever write
        # canonical prefixes, so anything else is a corrupted directory)
        done_prefix = 0
        for state in self._states:
            if not state.on_disk:
                break
            done_prefix += 1
        if done_prefix != len(completed):
            raise CampaignError(
                f"{self.store.directory} results are not a canonical prefix "
                f"({len(completed)} records, prefix {done_prefix}); the run "
                "directory is corrupt -- delete it to start over"
            )
        self._next_flush = done_prefix
        self._buffer: dict[int, tuple[dict, dict]] = {}
        #: Audit candidates per cell index: ``{"worker", "record",
        #: "timing", "encoded"}`` -- resolution needs byte comparison.
        self._audit: dict[int, list[dict]] = {}
        #: Quarantined worker *names* (ids are per-epoch; a re-registered
        #: bad worker must stay quarantined).
        self._quarantined: set[str] = set()
        self._started_at = self._clock()
        #: Per-worker telemetry.  Keyed by worker id and kept *forever*
        #: (the lease table forgets dead workers; the telemetry endpoint
        #: must not, or a SIGKILLed worker's tally vanishes mid-watch).
        self._wstats: dict[str, dict] = {}
        self._table = LeaseTable(
            self.lease_ttl_s,
            self.heartbeat_timeout_s,
            hard_ttl_factor=lease_hard_ttl_factor,
        )
        self._journal = FabricJournal(
            self.store.directory,
            fsync=journal_fsync,
            compact_every=journal_compact_every,
        )
        self._recover_locked()

    # ------------------------------------------------------------------
    # crash recovery (constructor-time; the lock is not yet contended)
    # ------------------------------------------------------------------
    def _recover_locked(self) -> None:
        """Replay snapshot + journal from a previous coordinator's life.

        Re-admits buffered out-of-order shards (journaled accepts that
        never made it into ``results.jsonl``), restores retry/escalation
        budgets, and expires every pre-crash lease.  Finishes with a
        compaction so the next incarnation replays from a snapshot.
        """
        snapshot, records = self._journal.load()
        if snapshot is None and not records:
            return  # first incarnation: nothing to recover
        with obs.span(
            "fabric.recover", campaign=self.spec.campaign_id
        ) as span:
            if snapshot:
                self._apply_snapshot_locked(snapshot)
            open_leases: dict[str, tuple[str, set[int]]] = {}
            for record in records:
                self._replay_locked(record, open_leases)
            # a crash can land between a journaled kill (reaching the
            # poison threshold) and the poison record itself, or between
            # a matching audit candidate and its accept -- settle both
            for index, state in enumerate(self._states):
                if (
                    state.status != "done"
                    and len(state.killers) >= self.poison_kill_threshold
                ):
                    self._poison_locked(index, 0.0)
            for index in list(self._audit):
                state = self._states[index]
                if state.status != "done":
                    self._resolve_audit_locked(index, state, 0.0)
            for lease_id, (worker_id, indices) in open_leases.items():
                if not any(
                    self._states[i].status != "done" for i in indices
                ):
                    continue  # fully settled before the crash
                self.counters["recovered_leases_expired"] += 1
                obs.event(
                    "fabric.lease_expired_on_recovery",
                    lease_id=lease_id,
                    worker_id=worker_id,
                )
            self._flush_locked()
            span.set_attrs(
                recovered_buffered=self.counters["recovered_buffered"],
                recovered_retries=self.counters["recovered_retries"],
                recovered_escalations=self.counters["recovered_escalations"],
                recovered_leases_expired=(
                    self.counters["recovered_leases_expired"]
                ),
                journal_records=len(records),
            )
            for name in (
                "recovered_buffered",
                "recovered_retries",
                "recovered_escalations",
                "recovered_leases_expired",
                "recovered_quarantines",
                "recovered_audit_candidates",
            ):
                if self.counters[name]:
                    global_collector().increment(
                        f"fabric.{name}", self.counters[name]
                    )
            obs.event(
                "fabric.recovered",
                campaign=self.spec.campaign_id,
                buffered=self.counters["recovered_buffered"],
                leases_expired=self.counters["recovered_leases_expired"],
            )
            # fold everything recovered into a fresh snapshot so the
            # journal starts this incarnation bounded and empty
            self._compact_locked()

    def _apply_snapshot_locked(self, snapshot: Mapping[str, Any]) -> None:
        for name in snapshot.get("quarantined", ()):
            if str(name) not in self._quarantined:
                self._quarantined.add(str(name))
                self.counters["recovered_quarantines"] += 1
        for key, entry in dict(snapshot.get("cells", {})).items():
            index = int(key)
            if not 0 <= index < len(self._states):
                continue
            state = self._states[index]
            if entry.get("attempts"):
                state.attempts = max(state.attempts, int(entry["attempts"]))
                self.counters["recovered_retries"] += 1
            if entry.get("escalated"):
                state.escalated = True
                if entry.get("timeout_s") is not None:
                    state.payload["timeout_s"] = float(entry["timeout_s"])
                if entry.get("scheduler_params"):
                    state.payload["scheduler_params"] = dict(
                        entry["scheduler_params"]
                    )
                self.counters["recovered_escalations"] += 1
            if entry.get("killers"):
                state.killers.update(str(k) for k in entry["killers"])
            if entry.get("poisoned"):
                state.poisoned = True
            if entry.get("audit") and not entry.get("done"):
                candidates = self._audit.setdefault(index, [])
                for candidate in entry["audit"]:
                    rec = dict(candidate["record"])
                    candidates.append({
                        "worker": str(candidate["worker"]),
                        "record": rec,
                        "timing": dict(candidate["timing"]),
                        "encoded": encode_record(rec),
                    })
                    self.counters["recovered_audit_candidates"] += 1
                if candidates and state.status != "done":
                    state.status = "audit"
            if entry.get("done") and not state.on_disk and (
                state.status != "done"
            ):
                self._buffer[index] = (
                    dict(entry["record"]), dict(entry["timing"])
                )
                state.status = "done"
                state.accepted_by = entry.get("accepted_by")
                state.audited = bool(entry.get("audited"))
                self.counters["recovered_buffered"] += 1
                # the accept's span may have died unwritten with the old
                # coordinator; this event is the durable trace of the
                # settlement (verify_lifecycles treats it as one)
                obs.event(
                    "fabric.recovered_cell",
                    cell_id=state.cell.cell_id,
                )

    def _replay_locked(
        self,
        record: Mapping[str, Any],
        open_leases: dict[str, tuple[str, set[int]]],
    ) -> None:
        kind = record.get("kind")
        if kind == "lease":
            # pre-crash grants: the lease itself is dead (the table is
            # rebuilt empty) -- remember which cells it held so the
            # recovery can report how many live leases it expired
            if record.get("lease_id"):
                open_leases[record["lease_id"]] = (
                    str(record.get("worker_id", "")),
                    {int(i) for i in record.get("cells", ())},
                )
            return
        if kind == "quarantine":
            name = str(record.get("worker", ""))
            if name and name not in self._quarantined:
                self._quarantined.add(name)
                self.counters["recovered_quarantines"] += 1
                # the pre-crash coordinator retracted this worker's
                # buffered accepts when it quarantined them; replaying
                # the same retraction keeps both histories identical
                self._retract_accepts_locked(name, 0.0)
            return
        index = record.get("index")
        if not isinstance(index, int) or not 0 <= index < len(self._states):
            return
        state = self._states[index]
        if kind in ("accept", "terminal", "poison"):
            lease_id = record.get("lease_id")
            if lease_id in open_leases:
                open_leases[lease_id][1].discard(index)
            if kind == "poison":
                state.poisoned = True
                state.killers.update(
                    str(k) for k in record.get("killers", ())
                )
            if state.on_disk or state.status == "done":
                return  # already flushed by a previous incarnation
            self._audit.pop(index, None)  # settled: candidates obsolete
            self._buffer[index] = (
                dict(record["record"]), dict(record["timing"])
            )
            state.status = "done"
            state.accepted_by = record.get("worker")
            state.audited = bool(record.get("audited"))
            self.counters["recovered_buffered"] += 1
            obs.event(
                "fabric.recovered_cell", cell_id=state.cell.cell_id
            )
        elif kind == "audit_candidate":
            if state.on_disk or state.status == "done":
                return
            name = str(record.get("worker", ""))
            if name in self._quarantined:
                return  # verdict already reached on this worker
            candidates = self._audit.setdefault(index, [])
            if any(c["worker"] == name for c in candidates):
                return
            rec = dict(record["record"])
            candidates.append({
                "worker": name,
                "record": rec,
                "timing": dict(record["timing"]),
                "encoded": encode_record(rec),
            })
            state.status = "audit"
            self.counters["recovered_audit_candidates"] += 1
        elif kind == "kill":
            if state.status != "done":
                state.killers.add(str(record.get("worker", "")))
        elif kind == "retry":
            if state.status != "done":
                state.attempts = max(
                    state.attempts, int(record.get("attempts", 0))
                )
                self.counters["recovered_retries"] += 1
        elif kind == "escalate":
            if state.status != "done":
                state.escalated = True
                if record.get("timeout_s") is not None:
                    state.payload["timeout_s"] = float(record["timeout_s"])
                if record.get("scheduler_params"):
                    state.payload["scheduler_params"] = dict(
                        record["scheduler_params"]
                    )
                self.counters["recovered_escalations"] += 1

    # ------------------------------------------------------------------
    # journaling (call with the lock held)
    # ------------------------------------------------------------------
    def _journal_locked(self, kind: str, **fields: Any) -> None:
        self._journal.append(kind, **fields)
        self._count("journal_records")

    def _snapshot_state_locked(self) -> dict:
        """The complete recoverable state, for compaction."""
        cells: dict[str, dict] = {}
        for index, state in enumerate(self._states):
            entry: dict[str, Any] = {}
            if state.attempts:
                entry["attempts"] = state.attempts
            if state.escalated:
                entry["escalated"] = True
                entry["timeout_s"] = state.payload.get("timeout_s")
                entry["scheduler_params"] = state.payload.get(
                    "scheduler_params"
                )
            if state.killers:
                entry["killers"] = sorted(state.killers)
            if state.poisoned:
                entry["poisoned"] = True
            candidates = self._audit.get(index)
            if candidates and state.status != "done":
                entry["audit"] = [
                    {
                        "worker": c["worker"],
                        "record": c["record"],
                        "timing": c["timing"],
                    }
                    for c in candidates
                ]
            if state.status == "done" and not state.on_disk:
                buffered = self._buffer.get(index)
                if buffered is not None:
                    entry["done"] = True
                    entry["record"], entry["timing"] = buffered
                    if state.accepted_by:
                        entry["accepted_by"] = state.accepted_by
                    if state.audited:
                        entry["audited"] = True
            if entry:
                cells[str(index)] = entry
        snapshot: dict[str, Any] = {"cells": cells}
        if self._quarantined:
            snapshot["quarantined"] = sorted(self._quarantined)
        return snapshot

    def _compact_locked(self) -> None:
        with obs.span(
            "fabric.journal.compact", campaign=self.spec.campaign_id
        ) as span:
            state = self._snapshot_state_locked()
            self._journal.compact(state)
            span.set_attrs(snapshot_cells=len(state["cells"]))
        self._count("journal_compactions")

    def _maybe_compact_locked(self) -> None:
        if self._journal.due_for_compaction:
            self._compact_locked()

    # ------------------------------------------------------------------
    # worker-facing protocol (every payload/return is JSON-compatible)
    # ------------------------------------------------------------------
    def register(self, body: Mapping[str, Any] | None = None) -> dict:
        body = dict(body or {})
        with self._lock:
            now = self._clock()
            state = self._table.register_worker(
                name=str(body.get("name", "worker")),
                meta={k: v for k, v in body.items() if k != "name"},
                now=now,
            )
            self._wstats[state.worker_id] = {
                "name": state.name,
                "registered_at": now,
                "cells_leased": 0,
                "cells_done": 0,
                "timeouts": 0,
                "escalations": 0,
                "transient_failures": 0,
                "stale_submits": 0,
                "duplicate_submits": 0,
                "integrity_rejects": 0,
            }
            obs.event(
                "fabric.register",
                worker_id=state.worker_id,
                worker=state.name,
            )
            return {
                "worker_id": state.worker_id,
                "lease_ttl_s": self.lease_ttl_s,
                "heartbeat_interval_s": self.heartbeat_interval_s,
                "lease_cells": self.lease_cells,
                "quarantined": state.name in self._quarantined,
            }

    def heartbeat(self, worker_id: str) -> dict:
        with self._lock:
            now = self._clock()
            known = self._table.touch(worker_id, now)
            self._reap(now)
            return {"ok": known, "unknown_worker": not known,
                    "done": self._finished_locked()}

    def lease(self, worker_id: str, max_cells: int | None = None) -> dict:
        """Grant up to ``max_cells`` eligible pending cells (canonical
        order).  ``done`` tells an idle worker the campaign is complete;
        ``retry_after_s`` tells it when to ask again."""
        limit = self.lease_cells if max_cells is None else max(1, int(max_cells))
        with self._lock:
            now = self._clock()
            if not self._table.touch(worker_id, now):
                return {"unknown_worker": True, "cells": [], "done": False}
            self._reap(now)
            if self._finished_locked():
                return {"cells": [], "done": True}
            name = self._worker_name(worker_id)
            if name in self._quarantined:
                return {
                    "cells": [],
                    "done": False,
                    "quarantined": True,
                    "retry_after_s": self.heartbeat_interval_s,
                }
            indices = []
            for i, state in enumerate(self._states):
                if len(indices) >= limit:
                    break
                if state.status == "pending" and state.eligible_at <= now:
                    indices.append(i)
                elif state.status == "audit" and not any(
                    c["worker"] == name for c in self._audit.get(i, ())
                ):
                    # audit re-execution must come from a worker that has
                    # not already answered for this cell
                    indices.append(i)
            if not indices:
                return {
                    "cells": [],
                    "done": False,
                    "retry_after_s": self._retry_after_locked(now),
                }
            lease = self._table.grant(worker_id, indices, now)
            # journaled before the grant is acknowledged: a recovered
            # coordinator expires it, so the cells re-lease cleanly
            self._journal_locked(
                "lease",
                lease_id=lease.lease_id,
                worker_id=worker_id,
                cells=list(indices),
            )
            for i in indices:
                state = self._states[i]
                state.status = (
                    "audit_leased" if state.status == "audit" else "leased"
                )
                obs.event(
                    "fabric.lease_cell",
                    cell_id=state.cell.cell_id,
                    worker_id=worker_id,
                    lease_id=lease.lease_id,
                )
            self._count("leases_granted")
            self._count("cells_leased", len(indices), worker_id)
            stats = self._wstats.get(worker_id)
            if stats is not None:
                stats["cells_leased"] += len(indices)
            self._maybe_compact_locked()
            return {
                "lease_id": lease.lease_id,
                "cells": [dict(self._states[i].payload) for i in indices],
                "done": False,
            }

    def submit(
        self,
        worker_id: str,
        lease_id: str,
        cell_id: str,
        record: Mapping[str, Any],
        timing: Mapping[str, Any],
        integrity: Mapping[str, Any] | None = None,
    ) -> dict:
        """Fold one finished cell; idempotent under at-least-once delivery.

        ``integrity`` (optional, attached by current workers) carries
        ``record_sha256`` -- the canonical-JSON checksum of the record --
        and ``cell_hash`` -- the leased payload's identity hash; a
        mismatch rejects the submission *before* journaling and
        quarantines the submitter.  Legacy submissions without it are
        folded unvalidated.
        """
        with self._lock:
            now = self._clock()
            self._table.touch(worker_id, now)
            reply = self._submit_one_locked(
                worker_id, lease_id, cell_id, record, timing, integrity, now
            )
            self._reap(now)
            self._maybe_compact_locked()
            reply["done"] = self._finished_locked()
            return reply

    def submit_batch(
        self,
        worker_id: str,
        lease_id: str,
        entries: list,
    ) -> dict:
        """Fold several finished cells in one round-trip.

        Each entry is ``{"cell_id", "record", "timing", "integrity"?}``
        and is validated, checked for duplication, and journaled exactly
        as an individual ``submit`` would -- idempotent per record, so a
        replayed batch (a worker resubmitting after an outage) is a batch
        of counted no-ops.  Returns per-entry ``results`` in order.
        """
        with self._lock:
            now = self._clock()
            self._table.touch(worker_id, now)
            results = []
            for entry in entries:
                results.append(self._submit_one_locked(
                    worker_id,
                    lease_id,
                    str(entry["cell_id"]),
                    entry["record"],
                    entry["timing"],
                    entry.get("integrity"),
                    now,
                ))
            self._count("batch_submits", worker_id=worker_id)
            self._reap(now)
            self._maybe_compact_locked()
            return {"results": results, "done": self._finished_locked()}

    def _submit_one_locked(
        self,
        worker_id: str,
        lease_id: str,
        cell_id: str,
        record: Mapping[str, Any],
        timing: Mapping[str, Any],
        integrity: Mapping[str, Any] | None,
        now: float,
    ) -> dict:
        with obs.span(
            "fabric.submit", cell_id=cell_id, worker_id=worker_id
        ) as submit_span:
            index = self._by_id.get(cell_id)
            if index is None:
                raise CampaignError(f"unknown cell {cell_id!r}")
            state = self._states[index]
            stats = self._wstats.get(worker_id)
            name = self._worker_name(worker_id)
            if name in self._quarantined:
                # a quarantined worker's results are suspect by verdict;
                # nothing it delivers is folded
                submit_span.set_attrs(outcome="quarantined")
                return {"accepted": False, "rejected": True,
                        "reason": "quarantined", "quarantined": True}
            if integrity is not None and not self._integrity_ok_locked(
                state, cell_id, record, integrity
            ):
                self._count("integrity_rejects", worker_id=worker_id)
                if stats is not None:
                    stats["integrity_rejects"] += 1
                submit_span.set_attrs(outcome="rejected")
                obs.event(
                    "fabric.integrity_reject",
                    cell_id=cell_id,
                    worker_id=worker_id,
                )
                self._quarantine_locked(
                    name, f"integrity reject on {cell_id}", now
                )
                return {"accepted": False, "rejected": True,
                        "reason": "integrity", "quarantined": True}
            fresh_lease = self._table.release_cell(lease_id, index)
            submit_span.set_attrs(stale=not fresh_lease)
            if not fresh_lease:
                self._count("stale_submits", worker_id=worker_id)
                if stats is not None:
                    stats["stale_submits"] += 1
            if state.status == "done":
                self._count("duplicate_submits", worker_id=worker_id)
                if stats is not None:
                    stats["duplicate_submits"] += 1
                submit_span.set_attrs(outcome="duplicate")
                return {"accepted": False, "duplicate": True}
            record = dict(record)
            if stats is not None and record.get("status") == "timeout":
                stats["timeouts"] += 1
            if state.status in ("audit", "audit_leased"):
                return self._audit_submit_locked(
                    submit_span, index, state, worker_id, name,
                    record, dict(timing), now,
                )
            if (
                record.get("status") == "timeout"
                and self.escalation_factor > 1.0
                and not state.escalated
                and state.payload.get("timeout_s")
            ):
                self._escalate_locked(state, now)
                if stats is not None:
                    stats["escalations"] += 1
                submit_span.set_attrs(outcome="escalated")
                return {"accepted": True, "escalated": True}
            if record.get("status") != "timeout" and self._audit_selected(
                cell_id
            ):
                # deterministically sampled for audit: the record becomes
                # the first candidate and the cell waits for a different
                # worker's byte-identical confirmation
                return self._audit_submit_locked(
                    submit_span, index, state, worker_id, name,
                    record, dict(timing), now,
                )
            # write-ahead: the accept is durable before the worker hears
            # "accepted", so a crash after this line can never re-run the
            # cell -- recovery re-admits the journaled record instead
            self._journal_locked(
                "accept",
                index=index,
                cell_id=cell_id,
                lease_id=lease_id,
                worker=name,
                record=record,
                timing=dict(timing),
            )
            if self.chaos is not None:
                self.chaos.on_accept()
            state.accepted_by = name
            self._complete_locked(index, record, dict(timing))
            if stats is not None:
                stats["cells_done"] += 1
            submit_span.set_attrs(outcome="accepted")
            global_collector().observe(
                "fabric.cell_wall_ms", float(timing.get("wall_ms") or 0.0)
            )
            return {"accepted": True, "duplicate": False}

    def fail(
        self,
        worker_id: str,
        lease_id: str,
        cell_id: str,
        detail: str = "",
        requeue: bool = False,
    ) -> dict:
        """A worker reports a *transient* (infrastructure-level) failure.

        Deterministic outcomes -- scheduler errors, infeasibility,
        timeouts -- are captured inside the cell record by ``run_cell``
        and submitted normally; this path is for the machinery around it
        failing.  Bounded retry with backoff, then a terminal error
        record so the campaign always completes.  ``requeue=True`` (a
        draining worker handing unstarted cells back) skips the attempt
        bump and the backoff: nothing failed, the cell just needs a new
        owner.
        """
        with self._lock:
            now = self._clock()
            self._table.touch(worker_id, now)
            index = self._by_id.get(cell_id)
            if index is None:
                raise CampaignError(f"unknown cell {cell_id!r}")
            self._table.release_cell(lease_id, index)
            obs.event(
                "fabric.fail_cell",
                cell_id=cell_id,
                worker_id=worker_id,
                requeue=bool(requeue),
                detail=_truncate(detail, 120),
            )
            if requeue:
                self._requeue_locked(index, now)
                self._maybe_compact_locked()
                return {"retried": True, "done": self._finished_locked()}
            self._count("transient_failures", worker_id=worker_id)
            stats = self._wstats.get(worker_id)
            if stats is not None:
                stats["transient_failures"] += 1
            retried = self._retry_locked(index, now, f"transient: {detail}")
            self._maybe_compact_locked()
            return {"retried": retried, "done": self._finished_locked()}

    def deregister(self, worker_id: str) -> dict:
        """A worker says goodbye (graceful drain / clean shutdown).

        Its leases are requeued immediately -- no attempt bump, no
        backoff, no waiting for the TTL to expire -- and the worker is
        forgotten by the lease table (its telemetry tallies remain).
        """
        with self._lock:
            now = self._clock()
            requeued = 0
            for lease in self._table.deregister_worker(worker_id):
                for index in lease.cell_indices:
                    state = self._states[index]
                    if state.status == "audit_leased":
                        state.status = "audit"
                        requeued += 1
                        continue
                    if state.status != "leased":
                        continue
                    self._requeue_locked(index, now)
                    requeued += 1
            self._count("deregisters")
            obs.event(
                "fabric.deregister",
                worker_id=worker_id,
                requeued=requeued,
            )
            return {"ok": True, "requeued": requeued,
                    "done": self._finished_locked()}

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    @property
    def campaign_id(self) -> str:
        return self.spec.campaign_id

    @property
    def finished(self) -> bool:
        with self._lock:
            self._reap(self._clock())
            return self._finished_locked()

    def wait(self, timeout_s: float | None = None, poll_s: float = 0.05) -> bool:
        """Block until the campaign completes; False on timeout."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while not self.finished:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)
        return True

    def close(self) -> None:
        self.store.close()
        self._journal.close()

    def status(self) -> dict:
        """Store progress counters plus the fabric's own."""
        with self._lock:
            now = self._clock()
            self._reap(now)
            data = self.store.status()
            buffered = len(self._buffer)
            data["done"] += buffered
            data["remaining"] = max(0, data["total"] - data["done"])
            for record, _ in self._buffer.values():
                data["by_status"][record["status"]] = (
                    data["by_status"].get(record["status"], 0) + 1
                )
                if record.get("verified") is False:
                    data["verification_failures"] += 1
            data["fabric"] = {
                **self.counters,
                "workers": len(self._table.workers()),
                "active_leases": len(self._table.leases()),
                "buffered": buffered,
                "pending": sum(
                    1 for s in self._states if s.status != "done"
                ),
                "audits_pending": len(self._audit),
                "quarantined_workers": sorted(self._quarantined),
            }
            return data

    def telemetry(self) -> dict:
        """Live per-worker view for ``campaign status --watch``.

        Workers that died (SIGKILL, reaped heartbeat) stay listed with
        ``alive: false`` -- their tallies are part of the campaign's
        story.  Rates use the coordinator's clock, so an injected test
        clock yields deterministic numbers.
        """
        with self._lock:
            now = self._clock()
            self._reap(now)
            alive = {w.worker_id: w for w in self._table.workers()}
            in_flight: dict[str, int] = {}
            lease_ages: dict[str, list[float]] = {}
            for lease in self._table.leases():
                in_flight[lease.worker_id] = (
                    in_flight.get(lease.worker_id, 0)
                    + len(lease.cell_indices)
                )
                lease_ages.setdefault(lease.worker_id, []).append(
                    round(now - lease.granted_at, 3)
                )
            workers = []
            for worker_id, stats in self._wstats.items():
                live = alive.get(worker_id)
                age_s = (
                    round(now - live.last_seen, 3)
                    if live is not None
                    else None
                )
                active_s = max(now - stats["registered_at"], 1e-9)
                workers.append({
                    "worker_id": worker_id,
                    "name": stats["name"],
                    "alive": live is not None,
                    "last_seen_age_s": age_s,
                    "cells_leased": stats["cells_leased"],
                    "cells_done": stats["cells_done"],
                    "cells_per_s": round(stats["cells_done"] / active_s, 3),
                    "in_flight": in_flight.get(worker_id, 0),
                    "lease_ages_s": sorted(lease_ages.get(worker_id, [])),
                    "timeouts": stats["timeouts"],
                    "escalations": stats["escalations"],
                    "transient_failures": stats["transient_failures"],
                    "stale_submits": stats["stale_submits"],
                    "duplicate_submits": stats["duplicate_submits"],
                    "integrity_rejects": stats.get("integrity_rejects", 0),
                    "quarantined": stats["name"] in self._quarantined,
                })
            workers.sort(key=lambda w: w["worker_id"])
            total = len(self._states)
            done = sum(1 for s in self._states if s.status == "done")
            return {
                "campaign": self.spec.campaign_id,
                "total": total,
                "done": done,
                "pending": total - done,
                "finished": self._finished_locked(),
                "uptime_s": round(now - self._started_at, 3),
                "counters": dict(self.counters),
                "audits_pending": len(self._audit),
                "quarantined_workers": sorted(self._quarantined),
                "workers": workers,
            }

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    def _finished_locked(self) -> bool:
        return self._next_flush == len(self._states) and not self._buffer

    def _count(
        self, name: str, by: int = 1, worker_id: str | None = None
    ) -> None:
        self.counters[name] += by
        global_collector().increment(
            f"fabric.{name}",
            by,
            labels={"worker": worker_id} if worker_id else None,
        )

    def _backoff_locked(self, attempts: int) -> float:
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** max(0, attempts - 1)),
        )
        return base * (1.0 + 0.5 * self._rng.random())

    def _retry_after_locked(self, now: float) -> float:
        waits = [
            state.eligible_at - now
            for state in self._states
            if state.status == "pending"
        ]
        if not waits:
            return self.heartbeat_interval_s
        return min(max(min(waits), 0.01), self.heartbeat_interval_s)

    def _requeue_locked(self, index: int, now: float) -> None:
        """Hand a cell straight back to the pending pool (clean drain)."""
        state = self._states[index]
        if state.status == "done":
            return
        state.status = "pending"
        state.eligible_at = now

    def _retry_locked(self, index: int, now: float, detail: str) -> bool:
        """Requeue a transiently-failed/reclaimed cell, or give up on it."""
        state = self._states[index]
        if state.status == "done":
            return False
        state.attempts += 1
        if state.attempts > self.max_transient_retries:
            record = self._terminal_error_record(state, detail)
            timing = {"id": state.cell.cell_id, "wall_ms": 0.0}
            self._journal_locked(
                "terminal",
                index=index,
                cell_id=state.cell.cell_id,
                record=record,
                timing=timing,
            )
            self._complete_locked(index, record, timing)
            obs.event(
                "fabric.terminal_error",
                cell_id=state.cell.cell_id,
                attempts=state.attempts,
            )
            return False
        state.status = "pending"
        state.eligible_at = now + self._backoff_locked(state.attempts)
        self._journal_locked(
            "retry", index=index, attempts=state.attempts
        )
        self._count("retries")
        obs.event(
            "fabric.retry_cell",
            cell_id=state.cell.cell_id,
            attempts=state.attempts,
        )
        return True

    def _terminal_error_record(self, state: _CellState, detail: str) -> dict:
        cell = state.cell
        return {
            "cell": cell.index,
            "id": cell.cell_id,
            "family": cell.family,
            "size": cell.size,
            "repeat": cell.repeat,
            "seed": cell.seed,
            "scheduler": cell.scheduler,
            "status": "error",
            "rounds": None,
            "touches": None,
            "verified": None,
            "detail": _truncate(
                f"{detail} (gave up after {state.attempts} attempts)"
            ),
        }

    def _escalate_locked(self, state: _CellState, now: float) -> None:
        """Re-lease a timed-out cell once, with a larger budget.

        The wall-clock limit grows by ``escalation_factor``; when the
        scheduler accepts explicit search budgets (the exact engines'
        ``node_budget`` / ``time_limit_s``), those grow with it.
        """
        state.escalated = True
        payload = state.payload
        old_timeout = float(payload["timeout_s"])
        payload["timeout_s"] = old_timeout * self.escalation_factor
        scheduler = resolve(payload["scheduler"])
        extra: dict[str, Any] = {}
        if "time_limit_s" in scheduler.accepts:
            bound = scheduler.params.get("time_limit_s")
            if bound is not None:
                extra["time_limit_s"] = float(bound) * self.escalation_factor
        if "node_budget" in scheduler.accepts:
            budget = scheduler.params.get("node_budget")
            if budget is not None:
                extra["node_budget"] = int(budget * self.escalation_factor)
        if extra:
            payload["scheduler_params"] = extra
        index = self._by_id[state.cell.cell_id]
        self._journal_locked(
            "escalate",
            index=index,
            timeout_s=payload["timeout_s"],
            scheduler_params=extra or None,
        )
        state.status = "pending"
        state.eligible_at = now
        self._count("escalations")
        obs.event(
            "fabric.escalate_cell",
            cell_id=state.cell.cell_id,
            timeout_s=payload["timeout_s"],
        )

    def _complete_locked(self, index: int, record: dict, timing: dict) -> None:
        state = self._states[index]
        state.status = "done"
        self._buffer[index] = (record, timing)
        self._flush_locked()

    def _flush_locked(self) -> None:
        """Write the grown canonical prefix through the store."""
        while self._next_flush < len(self._states):
            index = self._next_flush
            if self._states[index].on_disk:
                self._next_flush += 1
                continue
            buffered = self._buffer.pop(index, None)
            if buffered is None:
                break
            record, timing = buffered
            self.store.append(record, timing)
            self._states[index].on_disk = True
            self._next_flush += 1

    def _reap(self, now: float) -> None:
        """Reclaim expired leases and the leases of dead workers.

        A worker-dead reclaim also charges a *kill* to the suspect cell
        (the first one still leased, in canonical order -- workers run
        their lease in that order, so it is the cell the worker was most
        plausibly computing when it died).  The first death of each
        distinct worker name requeues the cell without burning retry
        budget -- the poison counter is its bound; repeat deaths of the
        same name fall through to the retry path so a respawning worker
        looping on one cell stays bounded either way.
        """
        for lease, reason in self._table.reap(now):
            suspect = None
            charged = False
            if reason == "worker-dead":
                suspect = next(
                    (
                        i for i in lease.cell_indices
                        if self._states[i].status in ("leased", "audit_leased")
                    ),
                    None,
                )
                if suspect is not None:
                    charged = self._record_kill_locked(
                        suspect, self._worker_name(lease.worker_id), now
                    )
            for index in lease.cell_indices:
                state = self._states[index]
                if state.status == "audit_leased":
                    # the re-execution never arrived; the cell goes back
                    # to waiting for a different worker (no retry charge)
                    state.status = "audit"
                    self._count("reclaims", worker_id=lease.worker_id)
                    obs.event(
                        "fabric.reclaim_cell",
                        cell_id=state.cell.cell_id,
                        worker_id=lease.worker_id,
                        reason=reason,
                    )
                    continue
                if state.status != "leased":
                    continue
                self._count("reclaims", worker_id=lease.worker_id)
                obs.event(
                    "fabric.reclaim_cell",
                    cell_id=state.cell.cell_id,
                    worker_id=lease.worker_id,
                    reason=reason,
                )
                if charged and index == suspect:
                    self._requeue_locked(index, now)
                    continue
                self._retry_locked(
                    index, now, f"lease {lease.lease_id} reclaimed ({reason})"
                )

    # ------------------------------------------------------------------
    # integrity, audit, quarantine, poison (call with the lock held)
    # ------------------------------------------------------------------
    def _worker_name(self, worker_id: str) -> str:
        """The stable name behind a per-epoch worker id (``w{n}-{name}``)."""
        stats = self._wstats.get(worker_id)
        if stats is not None:
            return stats["name"]
        return worker_id.split("-", 1)[1] if "-" in worker_id else worker_id

    def _integrity_ok_locked(
        self,
        state: _CellState,
        cell_id: str,
        record: Mapping[str, Any],
        integrity: Mapping[str, Any],
    ) -> bool:
        """Validate a submission's checksum + cell identity claims."""
        try:
            claimed = str(integrity.get("record_sha256", ""))
            cell_hash = str(integrity.get("cell_hash", ""))
        except AttributeError:
            return False
        if claimed != record_checksum(record):
            return False
        return cell_hash == payload_identity_hash(state.payload)

    def _audit_selected(self, cell_id: str) -> bool:
        """Deterministic audit sampling: seeded on the cell id, so the
        same cells are audited however many times the campaign restarts."""
        if self.audit_fraction <= 0.0:
            return False
        if self.audit_fraction >= 1.0:
            return True
        draw = derive_seed("fabric-audit", self.audit_seed, cell_id)
        return (draw % 1_000_000) < self.audit_fraction * 1_000_000

    def _credit_locked(self, name: str) -> None:
        """Bump ``cells_done`` for the newest worker epoch of ``name``."""
        for stats in reversed(list(self._wstats.values())):
            if stats["name"] == name:
                stats["cells_done"] += 1
                return

    def _audit_submit_locked(
        self,
        span,
        index: int,
        state: _CellState,
        worker_id: str,
        name: str,
        record: dict,
        timing: dict,
        now: float,
    ) -> dict:
        """Fold one submission into the cell's audit candidate set."""
        cell_id = state.cell.cell_id
        if record.get("status") == "timeout":
            # a timed-out (re-)execution is no evidence either way; the
            # cell keeps waiting for a conclusive run
            if state.status in ("leased", "audit_leased"):
                state.status = "audit" if index in self._audit else "pending"
            span.set_attrs(outcome="audit_inconclusive")
            return {"accepted": True, "audit_pending": True}
        candidates = self._audit.setdefault(index, [])
        encoded = encode_record(record)
        mine = next((c for c in candidates if c["worker"] == name), None)
        if mine is not None:
            if mine["encoded"] == encoded:
                # duplicate delivery of an already-held candidate
                self._count("duplicate_submits", worker_id=worker_id)
                span.set_attrs(outcome="duplicate")
                return {"accepted": False, "duplicate": True,
                        "audit_pending": True}
            # the worker contradicted its own earlier answer: whichever
            # copy is right, the worker is not trustworthy
            self._count("audit_mismatches", worker_id=worker_id)
            self._quarantine_locked(
                name, f"self-contradictory candidates on {cell_id}", now
            )
            span.set_attrs(outcome="quarantined")
            return {"accepted": False, "rejected": True,
                    "reason": "audit", "quarantined": True}
        # journaled before the candidate counts: a restarted coordinator
        # re-derives the same verdict from the same candidate set
        self._journal_locked(
            "audit_candidate",
            index=index,
            cell_id=cell_id,
            worker=name,
            record=record,
            timing=timing,
        )
        candidates.append({
            "worker": name,
            "record": record,
            "timing": timing,
            "encoded": encoded,
        })
        state.status = "audit"
        obs.event(
            "fabric.audit_candidate",
            cell_id=cell_id,
            worker=name,
            candidates=len(candidates),
        )
        verdict = self._resolve_audit_locked(index, state, now)
        if verdict is None:
            span.set_attrs(outcome="audit_pending")
            return {"accepted": True, "audit_pending": True}
        if name in verdict["losers"]:
            span.set_attrs(outcome="quarantined")
            return {"accepted": False, "rejected": True,
                    "reason": "audit", "quarantined": True}
        span.set_attrs(outcome="accepted")
        return {"accepted": True, "audited": True}

    def _resolve_audit_locked(
        self, index: int, state: _CellState, now: float
    ) -> dict | None:
        """Settle a cell's audit once the candidate set is conclusive.

        Any two byte-identical candidates win -- a lying worker cannot
        outvote two honest runs of deterministic work -- and every
        non-matching candidate's worker is quarantined.  Three mutually
        distinct candidates mean nothing is corroborated: all three
        claimants are quarantined and the cell recomputes from scratch.
        Returns ``None`` while the set is still inconclusive.
        """
        if state.status == "done":
            self._audit.pop(index, None)
            return None
        candidates = self._audit.get(index) or []
        cell_id = state.cell.cell_id
        winner = None
        for i, first in enumerate(candidates):
            if any(
                other["encoded"] == first["encoded"]
                for other in candidates[i + 1:]
            ):
                winner = first
                break
        if winner is not None:
            losers = [
                c["worker"] for c in candidates
                if c["encoded"] != winner["encoded"]
            ]
            self._count("audits_run")
            self._journal_locked(
                "accept",
                index=index,
                cell_id=cell_id,
                lease_id=None,
                worker=winner["worker"],
                audited=True,
                record=winner["record"],
                timing=winner["timing"],
            )
            if self.chaos is not None:
                self.chaos.on_accept()
            state.accepted_by = winner["worker"]
            state.audited = True
            self._audit.pop(index, None)
            for candidate in candidates:
                if candidate["encoded"] == winner["encoded"]:
                    self._credit_locked(candidate["worker"])
            self._complete_locked(
                index, dict(winner["record"]), dict(winner["timing"])
            )
            global_collector().observe(
                "fabric.cell_wall_ms",
                float(winner["timing"].get("wall_ms") or 0.0),
            )
            obs.event(
                "fabric.audit_confirmed",
                cell_id=cell_id,
                mismatches=len(losers),
            )
            for loser in losers:
                self._count("audit_mismatches")
                self._quarantine_locked(
                    loser, f"audit mismatch on {cell_id}", now
                )
            return {"winner": winner["worker"], "losers": losers}
        if len(candidates) >= 3:
            losers = [c["worker"] for c in candidates]
            self._count("audits_run")
            self._audit.pop(index, None)
            state.status = "pending"
            state.eligible_at = now
            obs.event("fabric.audit_deadlock", cell_id=cell_id)
            for loser in losers:
                self._count("audit_mismatches")
                self._quarantine_locked(
                    loser, f"three-way audit disagreement on {cell_id}", now
                )
            return {"winner": None, "losers": losers}
        return None

    def _quarantine_locked(self, name: str, reason: str, now: float) -> None:
        """Stop trusting a worker *name*: journal the verdict, requeue
        its in-flight leases, drop its audit candidates, and retract its
        buffered unaudited accepts so the cells re-run elsewhere."""
        if name in self._quarantined:
            return
        self._quarantined.add(name)
        self._count("quarantines")
        self._journal_locked("quarantine", worker=name, reason=reason)
        obs.event(
            "fabric.quarantine",
            worker=name,
            reason=_truncate(reason, 120),
        )
        for worker in list(self._table.workers()):
            if worker.name != name:
                continue
            for lease in self._table.release_worker_leases(worker.worker_id):
                for index in lease.cell_indices:
                    state = self._states[index]
                    if state.status == "audit_leased":
                        state.status = "audit"
                    elif state.status == "leased":
                        self._requeue_locked(index, now)
        self._retract_accepts_locked(name, now)

    def _retract_accepts_locked(self, name: str, now: float) -> None:
        """Withdraw a quarantined worker's unconfirmed contributions.

        Audit candidates it holds are dropped (a cell left with none
        goes back to pending), and its buffered unaudited accepts are
        pulled out of the flush buffer and re-run.  Audited accepts and
        anything already flushed to ``results.jsonl`` stay: those were
        byte-confirmed by an independent worker or are immutably on disk.
        """
        for index in list(self._audit):
            state = self._states[index]
            kept = [
                c for c in self._audit[index] if c["worker"] != name
            ]
            if len(kept) == len(self._audit[index]):
                continue
            if kept:
                self._audit[index] = kept
            else:
                del self._audit[index]
                if state.status == "audit":
                    state.status = "pending"
                    state.eligible_at = now
        for index, state in enumerate(self._states):
            if (
                state.status == "done"
                and not state.on_disk
                and not state.audited
                and state.accepted_by == name
                and index in self._buffer
            ):
                del self._buffer[index]
                state.status = "pending"
                state.eligible_at = now
                state.accepted_by = None
                obs.event(
                    "fabric.retract_cell",
                    cell_id=state.cell.cell_id,
                    worker=name,
                )

    def _record_kill_locked(self, index: int, name: str, now: float) -> bool:
        """Charge a worker death against the cell it was computing.

        True when ``name`` is a *new* distinct killer for this cell (the
        caller then requeues without a retry charge); reaching
        ``poison_kill_threshold`` distinct killers poisons the cell.
        """
        state = self._states[index]
        if state.status == "done" or name in state.killers:
            return False
        state.killers.add(name)
        self._journal_locked("kill", index=index, worker=name)
        self._count("kills")
        obs.event(
            "fabric.kill",
            cell_id=state.cell.cell_id,
            worker=name,
            distinct_killers=len(state.killers),
        )
        if len(state.killers) >= self.poison_kill_threshold:
            self._poison_locked(index, now)
        return True

    def _poison_locked(self, index: int, now: float) -> None:
        """Terminally record a cell that keeps killing fresh workers."""
        state = self._states[index]
        if state.status == "done":
            return
        state.poisoned = True
        cell = state.cell
        killers = sorted(state.killers)
        record = {
            "cell": cell.index,
            "id": cell.cell_id,
            "family": cell.family,
            "size": cell.size,
            "repeat": cell.repeat,
            "seed": cell.seed,
            "scheduler": cell.scheduler,
            "status": "error",
            "rounds": None,
            "touches": None,
            "verified": None,
            "detail": _truncate(
                f"poisoned: killed {len(killers)} distinct workers "
                f"({', '.join(killers)})"
            ),
        }
        timing = {"id": cell.cell_id, "wall_ms": 0.0}
        self._journal_locked(
            "poison",
            index=index,
            cell_id=cell.cell_id,
            killers=killers,
            record=record,
            timing=timing,
        )
        self._audit.pop(index, None)
        self._complete_locked(index, record, timing)
        self._count("poisoned_cells")
        obs.event(
            "fabric.poison_cell",
            cell_id=cell.cell_id,
            killers=len(killers),
        )
