"""Write-ahead journal for the campaign fabric coordinator.

The coordinator's in-memory state -- the out-of-order shard buffer,
retry/backoff counters, escalation flags, and lease grants -- dies with
its process.  This module makes every one of those transitions durable
*before* it is acknowledged to a worker, so a SIGKILLed coordinator can
be restarted over the same run directory and pick up exactly where it
died: completed-but-unflushed cells are re-admitted (never re-run),
retry and escalation budgets carry over, and pre-crash leases are
expired so cells re-lease cleanly.

Layout inside ``campaign-runs/<id>/``::

    fabric-journal.jsonl  -- one fsync'd record per state transition,
                             appended *before* the transition is acked
    fabric-snapshot.json  -- periodic compaction target (atomic rename),
                             carrying the sequence number it covers

Each journal record is ``{"seq": n, "kind": ..., ...}`` with a strictly
increasing ``seq``.  Compaction writes the whole recoverable state as a
snapshot stamped with the latest ``seq`` and then truncates the journal,
so the journal stays bounded by the compaction interval.  A crash
*between* snapshot write and journal truncation is safe: replay skips
every record whose ``seq`` the snapshot already covers.

Crash conventions mirror :mod:`repro.campaign.store`: appends are one
full line + flush + fsync, snapshots go through
:func:`~repro.campaign.store.atomic_write_text`, and a torn trailing
line (the writer died mid-record) is truncated away on open -- the torn
transition was never acknowledged, so dropping it merely re-opens the
cell for leasing.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Iterator, Mapping

from repro.campaign.store import atomic_write_text
from repro.campaign.spec import canonical_json

JOURNAL = "fabric-journal.jsonl"
SNAPSHOT = "fabric-snapshot.json"

#: Journal record kinds (every coordinator state transition).
KINDS = (
    "lease",
    "accept",
    "terminal",
    "retry",
    "escalate",
    "audit_candidate",
    "quarantine",
    "kill",
    "poison",
)


class FabricJournal:
    """Fsync'd append log + snapshot pair inside one run directory."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: bool = True,
        compact_every: int = 256,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.journal_path = self.directory / JOURNAL
        self.snapshot_path = self.directory / SNAPSHOT
        self.fsync = fsync
        self.compact_every = max(1, int(compact_every))
        self._handle = None
        self._seq = 0
        self._pending = 0  # records appended since the last compaction

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, kind: str, **fields: Any) -> int:
        """Durably journal one transition; returns its sequence number.

        The record is on disk (flushed, and fsynced unless disabled)
        before this returns -- callers ack the transition only after.
        """
        self._seq += 1
        record = {"seq": self._seq, "kind": kind, **fields}
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.journal_path, "a", encoding="utf-8")
        self._handle.write(canonical_json(record) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._pending += 1
        return self._seq

    @property
    def due_for_compaction(self) -> bool:
        return self._pending >= self.compact_every

    def compact(self, state: Mapping[str, Any]) -> None:
        """Fold the journal into a snapshot and truncate it.

        ``state`` must be the complete recoverable state as of the last
        appended record; the snapshot is stamped with that ``seq`` so a
        crash before the truncation lands replays nothing twice.
        """
        atomic_write_text(
            self.snapshot_path,
            json.dumps(
                {"seq": self._seq, "state": dict(state)},
                indent=2,
                sort_keys=True,
            ) + "\n",
        )
        if self._handle is not None:
            self._handle.close()
        self._handle = open(self.journal_path, "w", encoding="utf-8")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._pending = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def load(self) -> tuple[dict | None, list[dict]]:
        """Read ``(snapshot_state, replay_records)`` for recovery.

        Repairs a torn journal tail first (a record the dying writer
        never finished was also never acknowledged -- dropping it is the
        correct outcome: that cell simply re-leases).  Records the
        snapshot already covers (``seq <= snapshot seq``) are skipped.
        Leaves the journal positioned to keep appending (``seq``
        continues past everything seen).
        """
        self._repair_tail()
        snapshot_state: dict | None = None
        snapshot_seq = 0
        if self.snapshot_path.is_file():
            try:
                snapshot = json.loads(
                    self.snapshot_path.read_text(encoding="utf-8")
                )
                snapshot_seq = int(snapshot.get("seq", 0))
                snapshot_state = snapshot.get("state")
            except (json.JSONDecodeError, ValueError, TypeError):
                # atomic_write_text makes this unreachable in practice;
                # fall back to pure journal replay rather than dying
                snapshot_state = None
                snapshot_seq = 0
        records = [
            record
            for record in self._iter_journal()
            if int(record.get("seq", 0)) > snapshot_seq
        ]
        self._seq = max(
            snapshot_seq,
            max((int(r.get("seq", 0)) for r in records), default=0),
        )
        self._pending = len(records)
        return snapshot_state, records

    def _iter_journal(self) -> Iterator[dict]:
        if not self.journal_path.is_file():
            return
        with open(self.journal_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    return  # torn tail already truncated; belt and braces

    def _repair_tail(self) -> None:
        """Truncate a trailing partial record (killed mid-append)."""
        if not self.journal_path.is_file():
            return
        data = self.journal_path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with open(self.journal_path, "r+b") as handle:
            handle.truncate(keep)
