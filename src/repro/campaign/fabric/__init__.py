"""Fault-tolerant campaign fabric: coordinator + pull-based worker fleet.

Splits the campaign engine's execution across a coordinator service
(:mod:`~repro.campaign.fabric.coordinator`) and any number of pull-based
workers (:mod:`~repro.campaign.fabric.worker`), connected in-process or
over the REST surface (:mod:`~repro.campaign.fabric.transport`):

* workers lease cell batches with TTLs, heartbeat while computing, and
  stream one JSONL shard per finished cell back;
* the coordinator reclaims the cells of dead workers and expired leases,
  retries transient failures with bounded exponential backoff + jitter,
  re-leases a timed-out cell once with a larger budget before recording
  ``timeout``, and folds shards through the unchanged store path so the
  fleet's ``results.jsonl`` stays byte-identical to a 1-worker run;
* the coordinator itself is crash-tolerant: every state transition is
  write-ahead journaled (:mod:`~repro.campaign.fabric.journal`) before it
  is acknowledged, a restarted ``repro campaign serve`` recovers by
  replaying snapshot + journal, and workers ride out the outage by
  reconnecting with capped exponential backoff;
* :mod:`~repro.campaign.fabric.chaos` injects worker deaths, frozen
  heartbeats, dropped / duplicated / delayed submissions, and coordinator
  kills at journaled-but-unacked accepts to prove it.
"""

from repro.campaign.fabric.chaos import (
    Chaos,
    ChaosConfig,
    ChaosKill,
    CoordinatorChaos,
    CoordinatorChaosConfig,
    CoordinatorKillSchedule,
)
from repro.campaign.fabric.coordinator import Coordinator
from repro.campaign.fabric.journal import FabricJournal
from repro.campaign.fabric.leases import Lease, LeaseTable, WorkerState
from repro.campaign.fabric.transport import HttpFabricClient, LocalClient
from repro.campaign.fabric.worker import (
    FabricWorker,
    run_local_fleet,
    worker_main,
)

__all__ = [
    "Chaos",
    "ChaosConfig",
    "ChaosKill",
    "Coordinator",
    "CoordinatorChaos",
    "CoordinatorChaosConfig",
    "CoordinatorKillSchedule",
    "FabricJournal",
    "FabricWorker",
    "HttpFabricClient",
    "Lease",
    "LeaseTable",
    "LocalClient",
    "WorkerState",
    "run_local_fleet",
    "worker_main",
]
