"""Fault injection for the campaign fabric.

A :class:`ChaosConfig` declares, deterministically, the faults one worker
will suffer: dying mid-cell (SIGKILL for process workers, a raised
:class:`ChaosKill` for in-thread test workers), freezing its heartbeats,
and dropping / duplicating / delaying shard submissions.  The
:class:`Chaos` runtime object counts events and answers "what happens to
the Nth submission?" -- faults are keyed on ordinals, never wall clock or
randomness, so a fault scenario replays identically every run.

The fabric's robustness claims are exactly the ones this module attacks:

* a killed or frozen worker's leases expire and its cells are reclaimed;
* a dropped submission is indistinguishable from a death between compute
  and submit -- the cell is re-leased and re-run;
* a duplicated or delayed (possibly post-reclaim) submission is absorbed
  by the coordinator's idempotent at-least-once accept path.

PR 10 adds the *integrity* adversaries: ``corrupt_submits`` damages a
record after its checksum is computed (wire corruption -- the
coordinator's checksum validation must reject it), ``lie_after_cells``
falsifies records *before* checksumming (a plausible lie only audit
re-execution can catch), and ``die_on_cells`` kills the worker whenever
it draws a named cell (the poison-cell scenario: every fresh worker that
leases the cell dies the same way).

PR 8 extends the attack to the *coordinator* tier:
:class:`CoordinatorChaosConfig` kills the serving process right after the
Nth accept is journaled but before it is acknowledged or flushed -- the
worst spot for the write-ahead journal: the worker never saw the ack, the
results file never saw the record.  Recovery must replay the journal,
re-admit the shard, and never re-run the cell.
:class:`CoordinatorKillSchedule` strings several such deaths (plus
restart delays) into the deterministic script the crash smoke drives.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from typing import Mapping


class ChaosKill(Exception):
    """An injected worker death (exception mode, for in-thread workers)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault plan for one worker.

    ``kill_after_cells=k`` kills the worker mid-cell -- after it computed
    its ``k``-th record but before submitting it, the worst spot: work
    done, coordinator unaware.  ``kill_mode`` picks SIGKILL (process
    workers) or :class:`ChaosKill` (thread workers, which cannot be
    SIGKILLed individually).  ``freeze_heartbeats_after=n`` silences the
    heartbeat loop after ``n`` beats (``0`` freezes it from the start).
    ``drop_submits`` / ``duplicate_submits`` are 0-based submission
    ordinals to lose or send twice; ``delay_submits`` maps ordinals to a
    delay in seconds applied before the submission goes out.
    """

    kill_after_cells: int | None = None
    kill_mode: str = "sigkill"  # "sigkill" | "exception"
    freeze_heartbeats_after: int | None = None
    drop_submits: tuple[int, ...] = ()
    duplicate_submits: tuple[int, ...] = ()
    delay_submits: Mapping[int, float] = field(default_factory=dict)
    #: 0-based submission ordinals whose record is bit-flipped *after*
    #: the integrity checksum is computed -- wire corruption, caught by
    #: the coordinator's checksum validation.
    corrupt_submits: tuple[int, ...] = ()
    #: After this many honest cells the worker *lies*: it mutates the
    #: record plausibly before checksumming, so the checksum matches and
    #: only audit re-execution can catch it.  ``0`` lies from the start.
    lie_after_cells: int | None = None
    #: Cell ids the worker dies on (before computing them) -- the
    #: poison-cell scenario: same cell, fresh worker, same death.
    die_on_cells: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Plain-JSON form (process workers receive their plan as args)."""
        return {
            "kill_after_cells": self.kill_after_cells,
            "kill_mode": self.kill_mode,
            "freeze_heartbeats_after": self.freeze_heartbeats_after,
            "drop_submits": list(self.drop_submits),
            "duplicate_submits": list(self.duplicate_submits),
            "delay_submits": {str(k): v for k, v in self.delay_submits.items()},
            "corrupt_submits": list(self.corrupt_submits),
            "lie_after_cells": self.lie_after_cells,
            "die_on_cells": list(self.die_on_cells),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChaosConfig":
        return cls(
            kill_after_cells=data.get("kill_after_cells"),
            kill_mode=data.get("kill_mode", "sigkill"),
            freeze_heartbeats_after=data.get("freeze_heartbeats_after"),
            drop_submits=tuple(data.get("drop_submits", ())),
            duplicate_submits=tuple(data.get("duplicate_submits", ())),
            delay_submits={
                int(k): float(v)
                for k, v in dict(data.get("delay_submits", {})).items()
            },
            corrupt_submits=tuple(data.get("corrupt_submits", ())),
            lie_after_cells=data.get("lie_after_cells"),
            die_on_cells=tuple(data.get("die_on_cells", ())),
        )


@dataclass
class SubmitPlan:
    """What chaos decided for one submission."""

    drop: bool = False
    duplicate: bool = False
    delay_s: float = 0.0
    corrupt: bool = False


class Chaos:
    """Per-worker fault runtime: counts events, applies the config."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.cells_computed = 0
        self.submits_attempted = 0
        self.heartbeats_sent = 0

    def on_cell_computed(self) -> None:
        """Called between computing a record and submitting it; the
        configured death point."""
        self.cells_computed += 1
        if self.config.kill_after_cells is None:
            return
        if self.cells_computed >= self.config.kill_after_cells:
            if self.config.kill_mode == "sigkill":
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosKill(
                f"worker killed mid-cell #{self.cells_computed}"
            )

    def submit_plan(self) -> SubmitPlan:
        ordinal = self.submits_attempted
        self.submits_attempted += 1
        return SubmitPlan(
            drop=ordinal in self.config.drop_submits,
            duplicate=ordinal in self.config.duplicate_submits,
            delay_s=float(self.config.delay_submits.get(ordinal, 0.0)),
            corrupt=ordinal in self.config.corrupt_submits,
        )

    def maybe_die_on(self, cell_id: str) -> None:
        """Die before computing a configured poison cell."""
        if cell_id not in self.config.die_on_cells:
            return
        if self.config.kill_mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise ChaosKill(f"worker killed on poison cell {cell_id}")

    def lying(self) -> bool:
        """Whether the *current* cell's record should be falsified.

        Keyed on cells computed so far (``on_cell_computed`` has already
        counted the current cell when this is consulted), so
        ``lie_after_cells=k`` means the first ``k`` records are honest.
        """
        lie_after = self.config.lie_after_cells
        return lie_after is not None and self.cells_computed > lie_after

    @staticmethod
    def lie(record: Mapping) -> dict:
        """A *plausible* falsification: well-formed, correctly
        checksummed, only byte-comparison against an honest re-run can
        expose it."""
        lied = dict(record)
        if isinstance(lied.get("rounds"), int):
            lied["rounds"] = lied["rounds"] + 1
        else:
            lied["detail"] = f"{lied.get('detail') or ''}~"
        return lied

    @staticmethod
    def corrupt(record: Mapping) -> dict:
        """Post-checksum bit damage (wire corruption): the checksum the
        worker attached no longer matches what arrives."""
        damaged = dict(record)
        damaged["seed"] = int(damaged.get("seed") or 0) ^ 1
        return damaged

    def heartbeat_allowed(self) -> bool:
        frozen_after = self.config.freeze_heartbeats_after
        if frozen_after is not None and self.heartbeats_sent >= frozen_after:
            return False
        self.heartbeats_sent += 1
        return True


@dataclass(frozen=True)
class CoordinatorChaosConfig:
    """Deterministic fault plan for one coordinator incarnation.

    ``kill_after_accepts=n`` kills the coordinator immediately after its
    ``n``-th accept is *journaled* but before it is acknowledged to the
    worker or flushed to ``results.jsonl`` -- the exact window the
    write-ahead journal exists to cover.  ``kill_mode`` is ``"sigkill"``
    (process coordinators, the crash smoke) or ``"exception"`` (raise
    :class:`ChaosKill`, for in-process tests that cannot lose the
    interpreter).  Ordinal-keyed, so a schedule replays identically.
    """

    kill_after_accepts: int | None = None
    kill_mode: str = "sigkill"  # "sigkill" | "exception"

    def to_dict(self) -> dict:
        """Plain-JSON form (rides the ``serve`` body into the process)."""
        return {
            "kill_after_accepts": self.kill_after_accepts,
            "kill_mode": self.kill_mode,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CoordinatorChaosConfig":
        return cls(
            kill_after_accepts=data.get("kill_after_accepts"),
            kill_mode=data.get("kill_mode", "sigkill"),
        )


class CoordinatorChaos:
    """Coordinator-side fault runtime; ``on_accept`` is called by the
    coordinator right after journaling an accept, before acking it."""

    def __init__(self, config: CoordinatorChaosConfig) -> None:
        self.config = config
        self.accepts = 0

    def on_accept(self) -> None:
        self.accepts += 1
        if self.config.kill_after_accepts is None:
            return
        if self.accepts >= self.config.kill_after_accepts:
            if self.config.kill_mode == "sigkill":
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosKill(
                f"coordinator killed after accept #{self.accepts}"
            )


@dataclass(frozen=True)
class CoordinatorKillSchedule:
    """One scripted coordinator death in a crash scenario: SIGKILL after
    ``kill_after_accepts`` journaled accepts, then restart the serving
    process ``restart_delay_s`` later.  A scenario is a list of these;
    the final incarnation runs with no kill and finishes the campaign.
    """

    kill_after_accepts: int
    restart_delay_s: float = 1.0

    def to_dict(self) -> dict:
        return {
            "kill_after_accepts": self.kill_after_accepts,
            "restart_delay_s": self.restart_delay_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CoordinatorKillSchedule":
        return cls(
            kill_after_accepts=int(data["kill_after_accepts"]),
            restart_delay_s=float(data.get("restart_delay_s", 1.0)),
        )
