"""Worker-side transports to a campaign coordinator.

Workers speak a seven-verb protocol -- register, heartbeat, lease,
submit, submit_batch, fail, deregister -- with JSON-compatible payloads
on both transports:

* :class:`LocalClient` calls an in-process :class:`Coordinator` directly
  (tests, single-host fleets, the thread-based smoke paths);
* :class:`HttpFabricClient` speaks the same verbs over the REST surface
  (``POST /campaigns/<id>/fabric/<verb>``) through the retrying
  :class:`~repro.rest.http_binding.HttpClient`, which gives connection
  errors and 5xx responses bounded exponential backoff and fails 4xx
  fast.  Retries make delivery at-least-once; the coordinator's
  idempotent accept paths make that safe.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.campaign.fabric.coordinator import Coordinator


class LocalClient:
    """Direct in-process transport to a :class:`Coordinator`."""

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator

    def register(self, info: Mapping[str, Any] | None = None) -> dict:
        return self.coordinator.register(info)

    def heartbeat(self, worker_id: str) -> dict:
        return self.coordinator.heartbeat(worker_id)

    def lease(self, worker_id: str, max_cells: int | None = None) -> dict:
        return self.coordinator.lease(worker_id, max_cells)

    def submit(
        self,
        worker_id: str,
        lease_id: str,
        cell_id: str,
        record: Mapping[str, Any],
        timing: Mapping[str, Any],
        integrity: Mapping[str, Any] | None = None,
    ) -> dict:
        return self.coordinator.submit(
            worker_id, lease_id, cell_id, record, timing, integrity
        )

    def submit_batch(
        self,
        worker_id: str,
        lease_id: str,
        entries: list,
    ) -> dict:
        return self.coordinator.submit_batch(worker_id, lease_id, entries)

    def fail(
        self,
        worker_id: str,
        lease_id: str,
        cell_id: str,
        detail: str = "",
        requeue: bool = False,
    ) -> dict:
        return self.coordinator.fail(
            worker_id, lease_id, cell_id, detail, requeue=requeue
        )

    def deregister(self, worker_id: str) -> dict:
        return self.coordinator.deregister(worker_id)


class HttpFabricClient:
    """The same seven verbs over ``POST /campaigns/<id>/fabric/<verb>``."""

    def __init__(
        self,
        base_url: str,
        campaign_id: str,
        http=None,
        *,
        token: str | None = None,
    ) -> None:
        if http is None:
            from repro.rest.http_binding import HttpClient

            http = HttpClient(base_url, token=token)
        self.http = http
        self.campaign_id = campaign_id

    def _post(self, verb: str, body: Mapping[str, Any]) -> dict:
        return self.http.post(
            f"/campaigns/{self.campaign_id}/fabric/{verb}", dict(body)
        )

    def register(self, info: Mapping[str, Any] | None = None) -> dict:
        return self._post("register", dict(info or {}))

    def heartbeat(self, worker_id: str) -> dict:
        return self._post("heartbeat", {"worker_id": worker_id})

    def lease(self, worker_id: str, max_cells: int | None = None) -> dict:
        body: dict[str, Any] = {"worker_id": worker_id}
        if max_cells is not None:
            body["max_cells"] = max_cells
        return self._post("lease", body)

    def submit(
        self,
        worker_id: str,
        lease_id: str,
        cell_id: str,
        record: Mapping[str, Any],
        timing: Mapping[str, Any],
        integrity: Mapping[str, Any] | None = None,
    ) -> dict:
        body = {
            "worker_id": worker_id,
            "lease_id": lease_id,
            "cell_id": cell_id,
            "record": dict(record),
            "timing": dict(timing),
        }
        if integrity is not None:
            body["integrity"] = dict(integrity)
        return self._post("submit", body)

    def submit_batch(
        self,
        worker_id: str,
        lease_id: str,
        entries: list,
    ) -> dict:
        return self._post("submit", {
            "worker_id": worker_id,
            "lease_id": lease_id,
            "records": [dict(entry) for entry in entries],
        })

    def fail(
        self,
        worker_id: str,
        lease_id: str,
        cell_id: str,
        detail: str = "",
        requeue: bool = False,
    ) -> dict:
        return self._post("fail", {
            "worker_id": worker_id,
            "lease_id": lease_id,
            "cell_id": cell_id,
            "detail": detail,
            "requeue": bool(requeue),
        })

    def deregister(self, worker_id: str) -> dict:
        return self._post("deregister", {"worker_id": worker_id})
