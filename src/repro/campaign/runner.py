"""The campaign execution engine.

:class:`CampaignRunner` expands a :class:`~repro.campaign.spec.CampaignSpec`
into cells, skips cells already present in the run directory (resume),
shards the remainder over a :mod:`multiprocessing` pool, and streams
results into the :class:`~repro.campaign.store.RunStore`.

Determinism contract: cell *records* contain only seed-derived fields
(instance shape, schedule rounds/touches, verification verdict, error
class) -- never wall-clock -- and are written in canonical cell order even
when workers finish out of order (``Pool.imap`` preserves input order), so
``results.jsonl`` is bit-identical across worker counts.  Wall-clock goes
to the ``timings.jsonl`` sidecar.

Every cell is fault-isolated: scheduler bugs, infeasible property
combinations, and per-cell timeouts (SIGALRM-based, worker-local) become
``status`` values in the record instead of killing the campaign.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import sys
import threading
import time
from typing import Any, Callable, Mapping

try:  # POSIX-only; Windows runs cells unguarded
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None

from repro.errors import (
    InfeasibleUpdateError,
    ReproError,
    ScheduleTimeoutError,
)
from repro.obs import trace as obs
from repro.campaign.families import build_unit
from repro.campaign.schedulers import parse_properties, resolve
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RunStore
from repro.core.api import ScheduleRequest, execute_request, time_limit


#: Per-worker cache of built work units, keyed by the seed-derived cell
#: identity.  A campaign sweeps the same instance across several
#: schedulers (one cell each); sharing the problem *object* between those
#: cells keeps every per-problem cache warm -- the canonical node↔bit
#: index, the kind/next-hop tables, and the SafetyOracles (with their
#: Pearce-Kelly state and verdict memos) that
#: :func:`repro.core.oracle.oracle_for` hangs off the problem.  Bounded
#: FIFO so long campaigns do not accumulate oracle memos without limit.
#: Thread-local because the cached oracles are mutable and unsynchronized
#: (the REST service can run inline campaigns from concurrent handler
#: threads); pool workers are separate processes and unaffected.
_UNIT_CACHE_LIMIT = 32
_UNIT_CACHE_LOCAL = threading.local()


def _unit_cache() -> dict:
    cache = getattr(_UNIT_CACHE_LOCAL, "units", None)
    if cache is None:
        cache = _UNIT_CACHE_LOCAL.units = {}
    return cache


def _cached_unit(family: str, size: int, params, seed: int):
    cache = _unit_cache()
    key = (family, size, json.dumps(params, sort_keys=True, default=str), seed)
    unit = cache.get(key)
    if unit is None:
        with obs.span("campaign.build_unit", family=family, size=size):
            unit = build_unit(family, size, params, seed)
        while len(cache) >= _UNIT_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = unit
    return unit


def _truncate(text: str, limit: int = 300) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _vm_size_bytes() -> int | None:
    """Current virtual-memory size of this process (linux procfs)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def peak_rss_kb() -> int | None:
    """Process-lifetime peak resident set size in KiB (None off-POSIX)."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on linux
        peak //= 1024
    return int(peak)


@contextlib.contextmanager
def resource_guard(
    mem_limit_mb: float | None = None, cpu_limit_s: float | None = None
):
    """Cap one cell's address-space growth and CPU time via ``setrlimit``.

    The memory cap is *relative*: current VM size + ``mem_limit_mb``, so
    an oversized allocation raises a catchable, deterministic
    ``MemoryError`` inside the cell instead of inviting the host OOM
    killer -- the same failure whether the cell runs in the pool baseline
    or on any fabric worker.  The CPU cap arms ``SIGXCPU`` to raise
    :class:`~repro.errors.ScheduleTimeoutError` (main thread only; signal
    handlers cannot be installed elsewhere).  Both limits are restored on
    exit, and each guard degrades to a no-op where the platform refuses
    it (no procfs, no ``resource`` module, non-main thread).
    """
    restores: list[tuple[int, tuple[int, int]]] = []
    old_handler = None
    if _resource is not None and mem_limit_mb:
        current = _vm_size_bytes()
        if current is not None:
            soft, hard = _resource.getrlimit(_resource.RLIMIT_AS)
            budget = current + int(float(mem_limit_mb) * (1 << 20))
            if hard != _resource.RLIM_INFINITY:
                budget = min(budget, hard)
            try:
                _resource.setrlimit(_resource.RLIMIT_AS, (budget, hard))
                restores.append((_resource.RLIMIT_AS, (soft, hard)))
            except (ValueError, OSError):
                pass
    if (
        _resource is not None
        and cpu_limit_s
        and hasattr(signal, "SIGXCPU")
        and threading.current_thread() is threading.main_thread()
    ):
        soft, hard = _resource.getrlimit(_resource.RLIMIT_CPU)
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        budget = int(usage.ru_utime + usage.ru_stime + float(cpu_limit_s)) + 1
        if hard != _resource.RLIM_INFINITY:
            budget = min(budget, hard)

        def _on_xcpu(signum, frame):
            raise ScheduleTimeoutError(f"cpu limit exceeded ({cpu_limit_s}s)")

        try:
            _resource.setrlimit(_resource.RLIMIT_CPU, (budget, hard))
            restores.append((_resource.RLIMIT_CPU, (soft, hard)))
            old_handler = signal.signal(signal.SIGXCPU, _on_xcpu)
        except (ValueError, OSError):
            pass
    try:
        yield
    finally:
        if old_handler is not None:
            signal.signal(signal.SIGXCPU, old_handler)
        for which, limits in restores:
            try:
                _resource.setrlimit(which, limits)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass


def _run_churn_cell(record, unit, scheduler, payload) -> None:
    """Drive a churn-trace unit through the online controller.

    The scheduler column selects the mode: a guarantee-free baseline
    (oneshot) runs unscheduled, everything else runs oracle-scheduled.
    ``rounds`` / ``touches`` map onto rounds issued / rule flips, and
    ``verified`` is the dataplane audit -- quiescent with zero transient
    violations (``None`` for the baseline, which promises nothing).
    """
    from repro.churn.controller import policy_for_scheduler, run_churn

    metrics = run_churn(unit.trace, policy_for_scheduler(scheduler))
    record["rounds"] = metrics.rounds_issued
    record["touches"] = metrics.flips
    if payload["verify"] and scheduler.guarantee:
        record["verified"] = (
            metrics.quiescent and metrics.transient_violations == 0
        )
    record["detail"] = _truncate(
        f"arrivals={metrics.arrivals} restorations={metrics.restorations} "
        f"replans={metrics.replans} violations={metrics.transient_violations} "
        f"peak_in_flight={metrics.peak_in_flight}"
    )


def run_cell(payload: Mapping[str, Any]) -> tuple[dict, dict]:
    """Execute one cell; returns ``(record, timing)``, never raises.

    Top-level so pool workers can unpickle it regardless of start method.
    """
    record = {
        "cell": payload["index"],
        "id": payload["cell_id"],
        "family": payload["family"],
        "size": payload["size"],
        "repeat": payload["repeat"],
        "seed": payload["seed"],
        "scheduler": payload["scheduler"],
        "status": "ok",
        "rounds": None,
        "touches": None,
        "verified": None,
        "detail": None,
    }
    started = time.perf_counter()
    api_wall_ms = 0.0
    oracle_totals: dict[str, int] = {}
    cell_span = obs.span(
        "campaign.cell",
        cell_id=payload["cell_id"],
        family=payload["family"],
        scheduler=payload["scheduler"],
    )
    cell_span.__enter__()
    try:
        scheduler = resolve(payload["scheduler"])
        with time_limit(payload.get("timeout_s")), resource_guard(
            payload.get("mem_limit_mb"), payload.get("cpu_limit_s")
        ):
            unit = _cached_unit(
                payload["family"],
                payload["size"],
                payload["params"],
                payload["seed"],
            )
            active = [p for p in unit.problems if p.required_updates]
            if unit.trace is not None:
                _run_churn_cell(record, unit, scheduler, payload)
            elif scheduler.requires_waypoint and any(
                p.waypoint is None for p in active
            ):
                record["status"] = "unsupported"
                record["detail"] = f"{scheduler.name} requires a waypoint"
            elif not active:
                record["status"] = "noop"
                record["rounds"] = 0
                record["touches"] = 0
            else:
                rounds = 0
                touches = 0
                details: list[str] = []
                verified: bool | None = None
                # explicit spec properties win; otherwise the envelope
                # checks the scheduler against what it promises (a
                # guarantee-free baseline like oneshot verifies nothing)
                explicit = (
                    parse_properties("+".join(payload["properties"]))
                    if payload["properties"]
                    else None
                )
                for problem in active:
                    result = execute_request(ScheduleRequest(
                        problem=problem,
                        scheduler=scheduler.name,
                        include_cleanup=payload["cleanup"],
                        verify=payload["verify"],
                        properties=explicit,
                        # extra engine params (the fabric coordinator's
                        # timeout escalation injects a larger node_budget /
                        # time_limit_s on a re-leased cell)
                        params=payload.get("scheduler_params") or {},
                    ))
                    api_wall_ms += result.wall_ms
                    for key, value in result.oracle_stats.items():
                        oracle_totals[key] = oracle_totals.get(key, 0) + value
                    # isolated-batch merge semantics: rounds = max, touches = sum
                    rounds = max(rounds, result.schedule.n_rounds)
                    touches += result.schedule.total_updates()
                    if result.detail:
                        details.append(result.detail)
                    if result.verified is not None:
                        verified = (
                            result.verified
                            if verified is None
                            else verified and result.verified
                        )
                record["rounds"] = rounds
                record["touches"] = touches
                record["verified"] = verified
                if details:
                    record["detail"] = _truncate("; ".join(details))
    except ScheduleTimeoutError as exc:
        record["status"] = "timeout"
        # str(exc) distinguishes the wall-clock alarm from the CPU rlimit
        # (both deterministic given the same limits)
        record["detail"] = _truncate(
            str(exc) or f"exceeded {payload.get('timeout_s')}s"
        )
        record["rounds"] = record["touches"] = record["verified"] = None
        # the alarm can interrupt an oracle mid-delta; drop the cached
        # problems so no later cell sees a half-morphed union graph, and
        # wipe every learned-nogood table -- extraction interrupted
        # mid-witness must not leak a poisoned pattern into later cells
        # that still hold a reference to a shared oracle
        _unit_cache().clear()
        from repro.core.oracle import clear_nogoods

        clear_nogoods()
    except InfeasibleUpdateError as exc:
        record["status"] = "infeasible"
        record["detail"] = _truncate(str(exc))
    except ReproError as exc:
        record["status"] = "error"
        record["detail"] = _truncate(f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 - cell isolation is the point
        record["status"] = "error"
        record["detail"] = _truncate(f"{type(exc).__name__}: {exc}")
    cell_span.set_attrs(status=record["status"])
    cell_span.__exit__(None, None, None)
    timing = {
        "id": payload["cell_id"],
        "wall_ms": round((time.perf_counter() - started) * 1000.0, 3),
        # the envelope's own numbers, so pool timing sidecars and fabric
        # telemetry report identical per-cell figures
        "api_wall_ms": round(api_wall_ms, 3),
        # process-lifetime high-water mark at cell end; wall-clock-free
        # but machine-dependent, so it stays in the sidecar
        "peak_rss_kb": peak_rss_kb(),
        "oracle": oracle_totals,
    }
    return record, timing


class CampaignRunner:
    """Expand, shard, execute, and persist one campaign."""

    def __init__(
        self,
        spec: CampaignSpec,
        root: str = "campaign-runs",
        workers: int = 1,
        store: RunStore | None = None,
    ) -> None:
        self.spec = spec
        self.workers = max(1, int(workers))
        self.store = store or RunStore(root, spec.campaign_id)

    def run(
        self, progress: Callable[[dict, int, int], None] | None = None
    ) -> dict:
        """Execute all pending cells; returns the final status dict.

        ``progress(record, done, total)`` is invoked after every persisted
        cell.  Already-completed cells (from a previous, possibly
        interrupted, run of the same spec) are skipped.
        """
        cells = self.spec.expand()
        self.store.initialize(self.spec, n_cells=len(cells))
        done_ids = self.store.completed_ids()
        pending = [cell for cell in cells if cell.cell_id not in done_ids]
        payloads = [cell.payload() for cell in pending]
        total = len(cells)
        done = total - len(pending)
        # a timed spec must run in pool workers even at workers=1: only a
        # process main thread can arm SIGALRM, and e.g. REST runs us from
        # a handler thread where the inline path would drop the limit
        inline = self.workers == 1 and (
            self.spec.timeout_s is None
            or (
                hasattr(signal, "SIGALRM")
                and threading.current_thread() is threading.main_thread()
            )
        )
        try:
            if inline or not payloads:
                results = map(run_cell, payloads)
                self._drain(results, progress, done, total)
            else:
                chunksize = max(1, len(payloads) // (self.workers * 8))
                with multiprocessing.Pool(self.workers) as pool:
                    results = pool.imap(run_cell, payloads, chunksize=chunksize)
                    self._drain(results, progress, done, total)
        finally:
            self.store.close()
        return self.store.status()

    def _drain(self, results, progress, done: int, total: int) -> None:
        for record, timing in results:
            self.store.append(record, timing)
            done += 1
            if progress is not None:
                progress(record, done, total)
