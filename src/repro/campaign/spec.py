"""Declarative campaign specifications.

A *campaign* is a grid sweep over instance families, sizes, parameters,
seeds, and schedulers.  The spec is plain JSON so it can live in a file,
travel over REST, and be hashed into a stable campaign id:

.. code-block:: json

    {
      "name": "smoke",
      "seed": 42,
      "families": [
        {"family": "reversal", "sizes": [6, 10, 20]},
        {"family": "sawtooth", "sizes": [26], "grid": {"block": [2, 8]}},
        {"family": "random-update", "sizes": [10], "repeats": 3}
      ],
      "schedulers": ["peacock", "greedy-slf", "oneshot"],
      "verify": true
    }

Expansion is fully deterministic: cells are enumerated family-entry by
family-entry, grid-variant by grid-variant, size by size, repeat by
repeat, scheduler by scheduler, and every cell's instance seed is derived
by hashing ``(campaign seed, family, params, size, repeat)`` -- notably
*not* the scheduler, so all schedulers of a cell group see the identical
instance, and the same spec+seed reproduces bit-identical results no
matter how many workers execute it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import CampaignSpecError

#: Bumped when the cell expansion or result record layout changes shape.
SPEC_VERSION = 1


def canonical_json(data: Any) -> str:
    """The canonical (sorted, compact) JSON encoding used for ids and hashes."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def derive_seed(*parts: Any) -> int:
    """Deterministic 64-bit seed from arbitrary labelled parts (sha256)."""
    text = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: Payload fields the coordinator may legitimately rewrite while a cell is
#: open (timeout escalation bumps ``timeout_s`` and injects search-budget
#: ``scheduler_params``); everything else pins the cell's identity.
_MUTABLE_PAYLOAD_KEYS = frozenset({"timeout_s", "scheduler_params"})


def payload_identity_hash(payload: Mapping[str, Any]) -> str:
    """Stable sha256 identity of one cell payload.

    Workers echo this hash with every submission so the coordinator can
    reject a record computed against the wrong cell (or a stale payload).
    Mutable execution knobs are excluded: an escalated re-lease must still
    hash to the same identity.
    """
    identity = {
        key: value
        for key, value in dict(payload).items()
        if key not in _MUTABLE_PAYLOAD_KEYS
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignSpecError(message)


@dataclass(frozen=True)
class Cell:
    """One fully-resolved work unit of a campaign."""

    index: int
    cell_id: str
    family: str
    size: int
    params: Mapping[str, Any]
    repeat: int
    seed: int
    scheduler: str
    properties: tuple[str, ...]
    verify: bool
    cleanup: bool
    timeout_s: float | None
    mem_limit_mb: float | None = None
    cpu_limit_s: float | None = None

    def payload(self) -> dict:
        """Self-contained picklable dict handed to pool workers."""
        return {
            "index": self.index,
            "cell_id": self.cell_id,
            "family": self.family,
            "size": self.size,
            "params": dict(self.params),
            "repeat": self.repeat,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "properties": list(self.properties),
            "verify": self.verify,
            "cleanup": self.cleanup,
            "timeout_s": self.timeout_s,
            "mem_limit_mb": self.mem_limit_mb,
            "cpu_limit_s": self.cpu_limit_s,
        }


@dataclass(frozen=True)
class FamilyEntry:
    """One family line of a spec: sizes x grid-variants x repeats."""

    family: str
    sizes: tuple[int, ...] = (0,)
    repeats: int = 1
    params: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    schedulers: tuple[str, ...] | None = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FamilyEntry":
        _require(isinstance(data, Mapping), "family entry must be an object")
        unknown = set(data) - {
            "family", "sizes", "repeats", "params", "grid", "schedulers"
        }
        _require(not unknown, f"unknown family entry keys: {sorted(unknown)}")
        family = data.get("family")
        _require(
            isinstance(family, str) and bool(family),
            "family entry needs a 'family' name",
        )
        sizes = data.get("sizes", [0])
        _require(
            isinstance(sizes, Sequence)
            and not isinstance(sizes, str)
            and len(sizes) > 0
            and all(isinstance(s, int) and s >= 0 for s in sizes),
            f"family {family!r}: 'sizes' must be a non-empty list of ints >= 0",
        )
        repeats = data.get("repeats", 1)
        _require(
            isinstance(repeats, int) and repeats >= 1,
            f"family {family!r}: 'repeats' must be an int >= 1",
        )
        params = data.get("params", {})
        _require(
            isinstance(params, Mapping),
            f"family {family!r}: 'params' must be an object",
        )
        grid = data.get("grid", {})
        _require(
            isinstance(grid, Mapping)
            and all(
                isinstance(values, Sequence)
                and not isinstance(values, str)
                and len(values) > 0
                for values in grid.values()
            ),
            f"family {family!r}: 'grid' values must be non-empty lists",
        )
        schedulers = data.get("schedulers")
        if schedulers is not None:
            _require(
                isinstance(schedulers, Sequence)
                and not isinstance(schedulers, str)
                and len(schedulers) > 0
                and all(isinstance(s, str) for s in schedulers),
                f"family {family!r}: 'schedulers' must be a list of names",
            )
            schedulers = tuple(schedulers)
        return cls(
            family=family,
            sizes=tuple(sizes),
            repeats=repeats,
            params=dict(params),
            grid={key: list(values) for key, values in grid.items()},
            schedulers=schedulers,
        )

    def to_dict(self) -> dict:
        data: dict = {"family": self.family, "sizes": list(self.sizes)}
        if self.repeats != 1:
            data["repeats"] = self.repeats
        if self.params:
            data["params"] = dict(self.params)
        if self.grid:
            data["grid"] = {key: list(values) for key, values in self.grid.items()}
        if self.schedulers is not None:
            data["schedulers"] = list(self.schedulers)
        return data

    def variants(self) -> list[dict]:
        """Cross product of the grid axes (sorted keys, listed value order)."""
        if not self.grid:
            return [{}]
        keys = sorted(self.grid)
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.grid[key] for key in keys))
        ]


class CampaignSpec:
    """A validated campaign description; the unit the engine executes."""

    def __init__(
        self,
        name: str,
        families: Sequence[FamilyEntry],
        schedulers: Sequence[str],
        seed: int = 0,
        properties: Sequence[str] = (),
        verify: bool = False,
        cleanup: bool = False,
        timeout_s: float | None = None,
        mem_limit_mb: float | None = None,
        cpu_limit_s: float | None = None,
    ) -> None:
        _require(isinstance(name, str) and bool(name), "spec needs a 'name'")
        _require(len(families) > 0, "spec needs at least one family entry")
        _require(len(schedulers) > 0, "spec needs at least one scheduler")
        self.name = name
        self.families = tuple(families)
        self.schedulers = tuple(schedulers)
        self.seed = seed
        self.properties = tuple(properties)
        self.verify = verify
        self.cleanup = cleanup
        self.timeout_s = timeout_s
        self.mem_limit_mb = mem_limit_mb
        self.cpu_limit_s = cpu_limit_s
        self._validate_names()

    def _validate_names(self) -> None:
        from repro.campaign.families import known_families, validate_family
        from repro.campaign.schedulers import resolve

        names = known_families()
        for entry in self.families:
            _require(
                entry.family in names,
                f"unknown family {entry.family!r}; known: {sorted(names)}",
            )
            validate_family(entry.family, entry.sizes, entry.params, entry.grid)
            for scheduler in entry.schedulers or ():
                resolve(scheduler)
        for scheduler in self.schedulers:
            resolve(scheduler)
        from repro.core.verify import Property  # noqa: F401  (import check)
        from repro.campaign.schedulers import parse_properties

        if self.properties:
            parse_properties("+".join(self.properties))

    # ------------------------------------------------------------------
    # (de)serialization and identity
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        _require(isinstance(data, Mapping), "campaign spec must be a JSON object")
        unknown = set(data) - {
            "name", "seed", "families", "schedulers", "properties",
            "verify", "cleanup", "timeout_s", "mem_limit_mb",
            "cpu_limit_s", "version",
        }
        _require(not unknown, f"unknown spec keys: {sorted(unknown)}")
        version = data.get("version", SPEC_VERSION)
        _require(
            version == SPEC_VERSION,
            f"unsupported spec version {version!r} (engine speaks {SPEC_VERSION})",
        )
        families_data = data.get("families")
        _require(
            isinstance(families_data, Sequence) and not isinstance(families_data, str),
            "'families' must be a list",
        )
        schedulers = data.get("schedulers")
        _require(
            isinstance(schedulers, Sequence)
            and not isinstance(schedulers, str)
            and all(isinstance(s, str) for s in schedulers),
            "'schedulers' must be a list of names",
        )
        seed = data.get("seed", 0)
        _require(isinstance(seed, int), "'seed' must be an int")
        properties = data.get("properties", [])
        _require(
            isinstance(properties, Sequence)
            and not isinstance(properties, str)
            and all(isinstance(p, str) for p in properties),
            "'properties' must be a list of property names",
        )
        timeout_s = data.get("timeout_s")
        _require(
            timeout_s is None or (isinstance(timeout_s, (int, float)) and timeout_s > 0),
            "'timeout_s' must be a positive number",
        )
        mem_limit_mb = data.get("mem_limit_mb")
        _require(
            mem_limit_mb is None
            or (isinstance(mem_limit_mb, (int, float)) and mem_limit_mb > 0),
            "'mem_limit_mb' must be a positive number",
        )
        cpu_limit_s = data.get("cpu_limit_s")
        _require(
            cpu_limit_s is None
            or (isinstance(cpu_limit_s, (int, float)) and cpu_limit_s > 0),
            "'cpu_limit_s' must be a positive number",
        )
        return cls(
            name=data.get("name", ""),
            families=[FamilyEntry.from_dict(entry) for entry in families_data],
            schedulers=list(schedulers),
            seed=seed,
            properties=list(properties),
            verify=bool(data.get("verify", False)),
            cleanup=bool(data.get("cleanup", False)),
            timeout_s=float(timeout_s) if timeout_s is not None else None,
            mem_limit_mb=(
                float(mem_limit_mb) if mem_limit_mb is not None else None
            ),
            cpu_limit_s=(
                float(cpu_limit_s) if cpu_limit_s is not None else None
            ),
        )

    def to_dict(self) -> dict:
        data: dict = {
            "version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "families": [entry.to_dict() for entry in self.families],
            "schedulers": list(self.schedulers),
        }
        if self.properties:
            data["properties"] = list(self.properties)
        if self.verify:
            data["verify"] = True
        if self.cleanup:
            data["cleanup"] = True
        if self.timeout_s is not None:
            data["timeout_s"] = self.timeout_s
        if self.mem_limit_mb is not None:
            data["mem_limit_mb"] = self.mem_limit_mb
        if self.cpu_limit_s is not None:
            data["cpu_limit_s"] = self.cpu_limit_s
        return data

    @property
    def spec_hash(self) -> str:
        return hashlib.sha256(canonical_json(self.to_dict()).encode()).hexdigest()

    @property
    def campaign_id(self) -> str:
        """Stable id: rerunning an identical spec resumes the same directory."""
        return f"{self.name}-{self.spec_hash[:10]}"

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[Cell]:
        """Enumerate every cell of the campaign in canonical order."""
        cells: list[Cell] = []
        for entry in self.families:
            schedulers = entry.schedulers or self.schedulers
            for variant in entry.variants():
                params = {**entry.params, **variant}
                # all params (entry-level and grid) go into the id, so two
                # entries of one family differing only in params expand to
                # distinct cells instead of a duplicate-id error
                variant_key = "".join(
                    f"-{key}{params[key]}" for key in sorted(params)
                )
                for size in entry.sizes:
                    for repeat in range(entry.repeats):
                        seed = derive_seed(
                            self.seed,
                            entry.family,
                            canonical_json(params),
                            size,
                            repeat,
                        )
                        for scheduler in schedulers:
                            cell_id = (
                                f"{entry.family}{variant_key}-n{size}"
                                f"-r{repeat}@{scheduler}"
                            )
                            cells.append(
                                Cell(
                                    index=len(cells),
                                    cell_id=cell_id,
                                    family=entry.family,
                                    size=size,
                                    params=params,
                                    repeat=repeat,
                                    seed=seed,
                                    scheduler=scheduler,
                                    properties=self.properties,
                                    verify=self.verify,
                                    cleanup=self.cleanup,
                                    timeout_s=self.timeout_s,
                                    mem_limit_mb=self.mem_limit_mb,
                                    cpu_limit_s=self.cpu_limit_s,
                                )
                            )
        seen: set[str] = set()
        for cell in cells:
            _require(
                cell.cell_id not in seen,
                f"duplicate cell id {cell.cell_id!r}: family entries collide",
            )
            seen.add(cell.cell_id)
        return cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CampaignSpec({self.name!r}, {len(self.families)} families, "
            f"{len(self.schedulers)} schedulers, seed={self.seed})"
        )
