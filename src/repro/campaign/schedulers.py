"""Scheduler registry: names a campaign spec can put in ``schedulers``.

Plain names select the :class:`SafetyOracle`-backed schedulers of
:mod:`repro.core`; two parameterized forms exist:

* ``combined:<p1+p2+...>`` -- :func:`combined_greedy_schedule` for the
  given property set (e.g. ``combined:wpe+rlf+blackhole``); infeasible
  combinations surface as the cell status ``infeasible``.
* ``optimal:<p1+p2+...>`` -- the exact minimum-round search on the
  bitmask engine's iterative-deepening mode (exponential worst case, but
  greedy-bounded deepening ground-truths instances up to ~18 updates;
  set a cell timeout for adversarial property combinations).

``strongest`` runs :func:`strongest_feasible_schedule` and records the
realized property ladder rung in the cell's ``detail`` field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import CampaignSpecError
from repro.core.combined import combined_greedy_schedule, strongest_feasible_schedule
from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.oneshot import oneshot_schedule
from repro.core.optimal import minimal_round_schedule
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule, sequential_schedule
from repro.core.verify import Property
from repro.core.wayup import wayup_schedule

PROPERTY_BY_NAME = {
    "wpe": Property.WPE,
    "slf": Property.SLF,
    "rlf": Property.RLF,
    "blackhole": Property.BLACKHOLE,
}


def parse_properties(text: str) -> tuple[Property, ...]:
    """Parse ``"wpe+rlf+blackhole"`` into a Property tuple."""
    names = [name for name in text.split("+") if name]
    if not names:
        raise CampaignSpecError("empty property list")
    unknown = [name for name in names if name not in PROPERTY_BY_NAME]
    if unknown:
        raise CampaignSpecError(
            f"unknown properties {unknown}; known: {sorted(PROPERTY_BY_NAME)}"
        )
    return tuple(PROPERTY_BY_NAME[name] for name in names)


@dataclass(frozen=True)
class SchedulerDef:
    """A resolved scheduler.

    ``run`` returns ``(schedule, detail-or-None, guarantee)``, where
    ``guarantee`` is the property tuple the scheduler *promises* -- the
    default verification target when the spec does not pin explicit
    properties (an empty guarantee, e.g. the one-shot baseline, means
    there is nothing to verify against).
    """

    name: str
    run: Callable[
        [UpdateProblem, bool],
        tuple[UpdateSchedule, str | None, tuple[Property, ...]],
    ]
    requires_waypoint: bool = False


def _plain(factory, guarantee: tuple[Property, ...]) -> Callable:
    def run(problem: UpdateProblem, cleanup: bool):
        return factory(problem, include_cleanup=cleanup), None, guarantee

    return run


def _sequential(problem: UpdateProblem, cleanup: bool):
    order = [
        node
        for node in sorted(problem.all_updates, key=repr)
        if cleanup or node in problem.required_updates
    ]
    return sequential_schedule(problem, order=order), None, ()


def _strongest(problem: UpdateProblem, cleanup: bool):
    schedule, properties = strongest_feasible_schedule(
        problem, include_cleanup=cleanup
    )
    kept = "+".join(
        name for name, prop in PROPERTY_BY_NAME.items() if prop in properties
    )
    return schedule, f"kept={kept}", tuple(properties)


_STATIC: dict[str, SchedulerDef] = {
    "peacock": SchedulerDef(
        "peacock",
        _plain(peacock_schedule, (Property.RLF, Property.BLACKHOLE)),
    ),
    "greedy-slf": SchedulerDef(
        "greedy-slf",
        _plain(greedy_slf_schedule, (Property.SLF, Property.BLACKHOLE)),
    ),
    "oneshot": SchedulerDef("oneshot", _plain(oneshot_schedule, ())),
    "sequential": SchedulerDef("sequential", _sequential),
    "wayup": SchedulerDef(
        "wayup",
        _plain(wayup_schedule, (Property.WPE, Property.BLACKHOLE)),
        requires_waypoint=True,
    ),
    "strongest": SchedulerDef("strongest", _strongest),
}


def resolve(name: str) -> SchedulerDef:
    """Look up (or construct, for parameterized forms) a scheduler by name."""
    if name in _STATIC:
        return _STATIC[name]
    if ":" in name:
        prefix, _, spec = name.partition(":")
        if prefix == "combined":
            properties = parse_properties(spec)

            def run_combined(problem: UpdateProblem, cleanup: bool):
                schedule = combined_greedy_schedule(
                    problem, properties, include_cleanup=cleanup
                )
                return schedule, None, properties

            return SchedulerDef(
                name, run_combined, requires_waypoint=Property.WPE in properties
            )
        if prefix == "optimal":
            properties = parse_properties(spec)

            def run_optimal(problem: UpdateProblem, cleanup: bool):
                # iterative deepening on the mask engine: bounded by the
                # greedy witness, it ground-truths cells well past the
                # old n=12 cap within a campaign cell timeout
                schedule = minimal_round_schedule(
                    problem, properties, search="iddfs"
                )
                if cleanup:
                    schedule = schedule.with_cleanup()
                return schedule, None, properties

            return SchedulerDef(
                name, run_optimal, requires_waypoint=Property.WPE in properties
            )
    raise CampaignSpecError(
        f"unknown scheduler {name!r}; known: {sorted(_STATIC)} "
        "plus 'combined:<props>' and 'optimal:<props>'"
    )
