"""Campaign-facing bridge to the process-wide scheduler registry.

A campaign spec's ``schedulers`` list holds registry spec strings
(:mod:`repro.core.registry` grammar): plain names (``peacock``,
``greedy-slf``, ``two-phase``, ``strongest``, ...), any registered alias
(``greedy_slf``), and the parameterized forms ``combined:<p1+p2+...>`` /
``optimal:<p1+p2+...>[?search=...]``.  This module no longer keeps its
own name→callable map -- it translates registry errors into
:class:`~repro.errors.CampaignSpecError` so spec validation keeps its
error taxonomy, and re-exports the property-list parser the spec layer
shares.
"""

from __future__ import annotations

from repro.errors import CampaignSpecError, SchedulerSpecError
from repro.core.registry import (
    PROPERTY_BY_NAME,
    Scheduler,
    resolve_scheduler,
    scheduler_names,
)
from repro.core.registry import parse_properties as _parse_properties
from repro.core.verify import Property

__all__ = [
    "PROPERTY_BY_NAME",
    "Scheduler",
    "parse_properties",
    "resolve",
    "scheduler_names",
]


def parse_properties(text: str) -> tuple[Property, ...]:
    """Parse ``"wpe+rlf+blackhole"`` into a Property tuple (campaign errors)."""
    try:
        return _parse_properties(text)
    except SchedulerSpecError as exc:
        raise CampaignSpecError(str(exc)) from None


def resolve(name: str) -> Scheduler:
    """Resolve a spec string against the registry (campaign errors)."""
    try:
        return resolve_scheduler(name)
    except SchedulerSpecError as exc:
        raise CampaignSpecError(str(exc)) from None
