"""Campaign engine: declarative scenario corpus + sharded experiment runner.

The subsystem turns a JSON spec (:mod:`repro.campaign.spec`) into a grid of
scenario cells over instance families (:mod:`repro.campaign.families`) and
schedulers (:mod:`repro.campaign.schedulers`), executes them across a
process pool with per-cell timeouts and error capture
(:mod:`repro.campaign.runner`), streams deterministic JSONL results into a
resumable run directory (:mod:`repro.campaign.store`), and aggregates them
into report tables (:mod:`repro.campaign.aggregate`).  For multi-worker
fleets, :mod:`repro.campaign.fabric` runs the same cells through a
fault-tolerant coordinator + pull-worker decomposition with leases,
heartbeats, reclaim, and crash-safe resume.
"""

from repro.campaign.aggregate import (
    AGGREGATE_HEADERS,
    aggregate_records,
    aggregate_rows,
    render_report,
)
from repro.campaign.families import build_unit, known_families, single_problem
from repro.campaign.runner import CampaignRunner, run_cell
from repro.campaign.fabric import (
    ChaosConfig,
    Coordinator,
    FabricWorker,
    HttpFabricClient,
    LocalClient,
    run_local_fleet,
    worker_main,
)
from repro.campaign.schedulers import parse_properties, resolve
from repro.campaign.spec import (
    CampaignSpec,
    Cell,
    FamilyEntry,
    canonical_json,
    derive_seed,
)
from repro.campaign.store import RunStore

__all__ = [
    "AGGREGATE_HEADERS",
    "CampaignRunner",
    "CampaignSpec",
    "Cell",
    "ChaosConfig",
    "Coordinator",
    "FabricWorker",
    "FamilyEntry",
    "HttpFabricClient",
    "LocalClient",
    "RunStore",
    "aggregate_records",
    "aggregate_rows",
    "build_unit",
    "canonical_json",
    "derive_seed",
    "known_families",
    "parse_properties",
    "render_report",
    "resolve",
    "run_cell",
    "run_local_fleet",
    "single_problem",
    "worker_main",
]
