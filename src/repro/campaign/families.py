"""Instance-family registry: scenario generators the campaign engine sweeps.

Each family turns ``(size, params, seed)`` into a :class:`WorkUnit` -- one
update problem, or a batch of isolated per-flow policies that a scheduler
solves independently and the engine merges round-wise
(:func:`repro.core.multipolicy.merge_isolated_schedules` semantics: joint
rounds = max over policies, touches = sum).

Families
========

``reversal`` / ``sawtooth`` / ``slalom`` / ``crossing`` /
``double-diamond`` / ``figure1``
    The deterministic adversarial instances of :mod:`repro.core.hardness`
    and the paper's demo problem; ``seed`` is ignored.
``random-update``
    :func:`repro.topology.random_graphs.random_update_instance` -- the
    permuted-interior family, optionally waypointed (``params.waypoint``).
``fat-tree``
    A new family: sample a random simple path pair between two switches of
    a k-ary fat-tree (``size`` = k, even), the data-center shape whose
    pod/core structure produces realistic partial-overlap updates.
``multipolicy``
    A new family: a mixed batch of ``params.policies`` isolated per-flow
    policies (node ids shifted so flows never share rules), every
    ``params.waypoint_every``-th policy waypointed -- the DSN'16
    multi-policy regime at campaign scale.
``memhog``
    A resource-guard probe: allocates ``size`` MiB before scheduling a
    trivial instance, so a campaign ``mem_limit_mb`` below ``size`` turns
    the cell into a deterministic ``MemoryError`` record.
``churn-fat-tree`` / ``churn-wan``
    Online families: the unit carries a seeded
    :class:`~repro.churn.traces.ChurnTrace` (arrivals, cancellations,
    link failures over simulated time) instead of problems; the runner
    drives it through the online churn controller, with the scheduler
    column selecting scheduled-vs-unscheduled mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import CampaignSpecError
from repro.campaign.spec import derive_seed
from repro.core.hardness import (
    crossing_instance,
    double_diamond_instance,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.problem import UpdateProblem
from repro.topology import builders
from repro.topology.random_graphs import (
    random_path_pair_in,
    random_update_instance,
)

#: Node-id stride between policies of a multipolicy batch; keeps the
#: per-flow rule spaces disjoint (isolated flows never interact).
_POLICY_STRIDE = 100_000


@dataclass(frozen=True)
class WorkUnit:
    """What one cell schedules: problems, an isolated batch, or a trace.

    A churn unit has ``problems == ()`` and carries the trace instead;
    the runner dispatches on ``trace`` before looking at the problems.
    """

    problems: tuple[UpdateProblem, ...]
    batch: bool = False
    trace: Any = None


def _reversal(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    return WorkUnit((reversal_instance(size),))


def _sawtooth(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    block = int(params.get("block", max(2, size // 4)))
    return WorkUnit((sawtooth_instance(size, block=block),))


def _slalom(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    return WorkUnit((waypoint_slalom_instance(size),))


def _crossing(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    return WorkUnit((crossing_instance(),))


def _double_diamond(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    return WorkUnit((double_diamond_instance(),))


def _figure1(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    from repro.netlab.figure1 import figure1_problem

    return WorkUnit((figure1_problem(),))


def _random_update(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    overlap = float(params.get("overlap", 0.5))
    with_waypoint = bool(params.get("waypoint", False))
    old_path, new_path, waypoint = random_update_instance(
        size, seed=seed, overlap=overlap, with_waypoint=with_waypoint
    )
    suffix = "wp" if with_waypoint else "plain"
    problem = UpdateProblem(
        old_path, new_path, waypoint=waypoint, name=f"random-{suffix}-{size}"
    )
    return WorkUnit((problem,))


def _fat_tree(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    topo = builders.fat_tree(size)
    rng = random.Random(seed)
    old_path, new_path = random_path_pair_in(topo, seed=rng)
    problem = UpdateProblem(old_path, new_path, name=f"fat-tree-{size}")
    return WorkUnit((problem,))


def _multipolicy(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    policies = int(params.get("policies", 3))
    overlap = float(params.get("overlap", 0.5))
    waypoint_every = int(params.get("waypoint_every", 2))
    problems: list[UpdateProblem] = []
    for index in range(policies):
        with_waypoint = waypoint_every > 0 and index % waypoint_every == 0
        old_path, new_path, waypoint = random_update_instance(
            size,
            seed=derive_seed(seed, "policy", index),
            overlap=overlap,
            with_waypoint=with_waypoint,
        )
        shift = index * _POLICY_STRIDE
        problems.append(
            UpdateProblem(
                [node + shift for node in old_path.nodes],
                [node + shift for node in new_path.nodes],
                waypoint=waypoint + shift if waypoint is not None else None,
                name=f"mp-{size}-p{index}",
            )
        )
    return WorkUnit(tuple(problems), batch=True)


#: Trace-generator knobs accepted by the churn families.
_CHURN_PARAMS = frozenset(
    {
        "rate_per_s",
        "duration_ms",
        "flows",
        "cancel_prob",
        "link_failures",
        "waypoint_prob",
    }
)


def _churn_unit(kind: str, size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    from repro.churn.traces import generate_trace, trace_params

    trace = generate_trace(kind, size, seed, **trace_params(params))
    return WorkUnit((), trace=trace)


def _memhog(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    """Allocate ``size`` MiB up front, then solve a trivial instance.

    Exists to exercise the per-cell resource guards: under a campaign
    ``mem_limit_mb`` below ``size`` the allocation raises ``MemoryError``
    deterministically (the guard caps the address space, so the failure
    is identical in a 1-worker pool baseline and any fabric fleet);
    without a limit the memory is allocated, touched page-wise, and
    released before scheduling.
    """
    hog = bytearray(size << 20)
    hog[:: 1 << 12] = b"\x01" * len(hog[:: 1 << 12])
    del hog
    return WorkUnit((reversal_instance(4),))


def _churn_fat_tree(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    return _churn_unit("fat-tree", size, params, seed)


def _churn_wan(size: int, params: Mapping[str, Any], seed: int) -> WorkUnit:
    return _churn_unit("wan", size, params, seed)


@dataclass(frozen=True)
class FamilyDef:
    name: str
    build: Any
    min_size: int
    allowed_params: frozenset
    sized: bool = True  # False: fixed instance, 'size' is ignored


_FAMILIES: dict[str, FamilyDef] = {
    definition.name: definition
    for definition in (
        FamilyDef("reversal", _reversal, 4, frozenset()),
        FamilyDef("sawtooth", _sawtooth, 4, frozenset({"block"})),
        FamilyDef("slalom", _slalom, 1, frozenset()),
        FamilyDef("crossing", _crossing, 0, frozenset(), sized=False),
        FamilyDef("double-diamond", _double_diamond, 0, frozenset(), sized=False),
        FamilyDef("figure1", _figure1, 0, frozenset(), sized=False),
        FamilyDef(
            "random-update", _random_update, 3, frozenset({"overlap", "waypoint"})
        ),
        FamilyDef("fat-tree", _fat_tree, 2, frozenset()),
        FamilyDef(
            "multipolicy",
            _multipolicy,
            3,
            frozenset({"policies", "overlap", "waypoint_every"}),
        ),
        FamilyDef("memhog", _memhog, 1, frozenset()),
        FamilyDef("churn-fat-tree", _churn_fat_tree, 2, _CHURN_PARAMS),
        FamilyDef("churn-wan", _churn_wan, 8, _CHURN_PARAMS),
    )
}


def known_families() -> frozenset:
    return frozenset(_FAMILIES)


def validate_family(
    family: str,
    sizes: Sequence[int],
    params: Mapping[str, Any],
    grid: Mapping[str, Sequence[Any]],
) -> None:
    """Spec-time validation so bad sweeps fail before any worker starts."""
    definition = _FAMILIES.get(family)
    if definition is None:
        raise CampaignSpecError(
            f"unknown family {family!r}; known: {sorted(_FAMILIES)}"
        )
    unknown = (set(params) | set(grid)) - set(definition.allowed_params)
    if unknown:
        raise CampaignSpecError(
            f"family {family!r} does not take params {sorted(unknown)}; "
            f"allowed: {sorted(definition.allowed_params)}"
        )
    if definition.sized:
        bad = [size for size in sizes if size < definition.min_size]
        if bad:
            raise CampaignSpecError(
                f"family {family!r} needs sizes >= {definition.min_size}, got {bad}"
            )
    if family in ("fat-tree", "churn-fat-tree"):
        odd = [size for size in sizes if size % 2]
        if odd:
            raise CampaignSpecError(f"fat-tree arity must be even, got {odd}")


def build_unit(
    family: str, size: int, params: Mapping[str, Any], seed: int
) -> WorkUnit:
    """Materialize the instance(s) of one cell, deterministically."""
    definition = _FAMILIES.get(family)
    if definition is None:
        raise CampaignSpecError(
            f"unknown family {family!r}; known: {sorted(_FAMILIES)}"
        )
    return definition.build(size, params, seed)


def single_problem(
    family: str, size: int, params: Mapping[str, Any], seed: int
) -> UpdateProblem:
    """The one problem of a non-batch family (CLI convenience)."""
    unit = build_unit(family, size, params, seed)
    if unit.batch or unit.trace is not None:
        raise CampaignSpecError(
            f"family {family!r} does not produce a single problem"
        )
    return unit.problems[0]
