"""Aggregation helpers: campaign records -> report tables.

Groups cell records by ``(family, scheduler)`` and computes percentile
summaries of rounds, touches, and (when the timing sidecar is joined)
wall-clock per cell, feeding :mod:`repro.metrics.report` renderers.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.metrics.collector import percentile
from repro.metrics.report import ascii_table, to_csv, to_json

AGGREGATE_HEADERS = (
    "family",
    "scheduler",
    "cells",
    "ok",
    "failed",
    "rounds p50",
    "rounds p90",
    "rounds max",
    "touches p50",
    "touches max",
    "wall ms p50",
    "wall ms p90",
)

#: Statuses that represent successfully-executed scheduling work.
_OK_STATUSES = {"ok", "noop"}
#: Statuses that are expected sweep outcomes rather than failures.
_BENIGN_STATUSES = _OK_STATUSES | {"unsupported", "infeasible"}


def _pct(values: Sequence[float], q: float) -> float | str:
    if not values:
        return "-"
    return percentile(sorted(values), q)


def aggregate_rows(
    records: Iterable[Mapping[str, Any]],
    timings: Iterable[Mapping[str, Any]] = (),
) -> list[list[Any]]:
    """One row per (family, scheduler), sorted, for :func:`ascii_table`."""
    wall_by_id = {timing["id"]: timing["wall_ms"] for timing in timings}
    groups: dict[tuple[str, str], list[Mapping[str, Any]]] = {}
    for record in records:
        groups.setdefault((record["family"], record["scheduler"]), []).append(record)
    rows: list[list[Any]] = []
    for (family, scheduler) in sorted(groups):
        cells = groups[(family, scheduler)]
        executed = [
            r for r in cells
            if r["status"] in _OK_STATUSES and r.get("verified") is not False
        ]
        failed = [
            r for r in cells
            if r["status"] not in _BENIGN_STATUSES
            or r.get("verified") is False
        ]
        rounds = [r["rounds"] for r in executed if r["rounds"] is not None]
        touches = [r["touches"] for r in executed if r["touches"] is not None]
        walls = [
            wall_by_id[r["id"]]
            for r in cells
            if r["id"] in wall_by_id and r["status"] in _OK_STATUSES
        ]
        rows.append(
            [
                family,
                scheduler,
                len(cells),
                len(executed),
                len(failed),
                _pct(rounds, 50),
                _pct(rounds, 90),
                max(rounds) if rounds else "-",
                _pct(touches, 50),
                max(touches) if touches else "-",
                _pct(walls, 50),
                _pct(walls, 90),
            ]
        )
    return rows


def aggregate_records(
    records: Iterable[Mapping[str, Any]],
    timings: Iterable[Mapping[str, Any]] = (),
) -> list[dict]:
    """The same aggregation as JSON-ready objects (REST report endpoint)."""
    return [
        dict(zip(AGGREGATE_HEADERS, row))
        for row in aggregate_rows(records, timings)
    ]


def render_report(
    records: Iterable[Mapping[str, Any]],
    timings: Iterable[Mapping[str, Any]] = (),
    fmt: str = "ascii",
    title: str | None = None,
) -> str:
    """Render the aggregate table as ascii/csv/json text."""
    rows = aggregate_rows(records, timings)
    if fmt == "ascii":
        return ascii_table(AGGREGATE_HEADERS, rows, title=title)
    if fmt == "csv":
        return to_csv(AGGREGATE_HEADERS, rows)
    if fmt == "json":
        return to_json(AGGREGATE_HEADERS, rows)
    raise ValueError(f"unknown report format {fmt!r}")
