"""Append-only campaign run directories.

Layout of ``<root>/<campaign_id>/``::

    manifest.json   -- the spec plus engine version (written once; a rerun
                       with a different spec under the same id is refused)
    results.jsonl   -- one deterministic record per completed cell, in
                       canonical cell order (workers may finish out of
                       order; the runner writes in order), so the file is
                       bit-identical across 1-worker and N-worker runs
    timings.jsonl   -- wall-clock sidecar ({id, wall_ms}); kept out of
                       results.jsonl precisely so the latter stays
                       reproducible

Resumability: completed cell ids are read back from ``results.jsonl`` and
skipped on the next run; a trailing partially-written line (killed run) is
truncated away first, so an interrupted campaign always restarts from a
clean prefix.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Mapping

from repro.errors import CampaignError
from repro.campaign.spec import CampaignSpec, canonical_json

MANIFEST = "manifest.json"
RESULTS = "results.jsonl"
TIMINGS = "timings.jsonl"

#: Terminal cell statuses a record may carry.
STATUSES = ("ok", "noop", "unsupported", "infeasible", "timeout", "error")


def encode_record(record: Mapping[str, Any]) -> str:
    """The one true line encoding (sorted keys, compact separators)."""
    return canonical_json(dict(record)) + "\n"


def record_checksum(record: Mapping[str, Any]) -> str:
    """sha256 over the canonical encoding of one record.

    This is the submission-integrity primitive: a worker computes it over
    the record it is about to submit, and the coordinator recomputes it
    over the record it received -- any bit-flip on the wire (or a worker
    checksumming one record and sending another) mismatches.
    """
    return hashlib.sha256(
        canonical_json(dict(record)).encode("utf-8")
    ).hexdigest()


def _fsync_directory(directory: pathlib.Path) -> None:
    """Flush a directory entry (a just-landed rename) to stable storage."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return  # platform refuses directory opens; nothing more we can do
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems reject directory fsync; best effort
    finally:
        os.close(fd)


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Crash-atomic whole-file write: temp file + fsync + atomic rename.

    A SIGKILL at any point leaves either the old file or the new one --
    never a half-written mix.  The temp file lives in the target's
    directory so the final ``os.replace`` stays on one filesystem, and the
    parent directory is fsynced after the rename so the rename itself
    survives power loss (file data alone is not enough: the directory
    entry pointing at it must also reach the disk).
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


class RunStore:
    """One campaign's on-disk run directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        campaign_id: str,
        fsync: bool = True,
    ) -> None:
        self.campaign_id = campaign_id
        self.directory = pathlib.Path(root) / campaign_id
        self.fsync = fsync
        self._results_handle = None
        self._timings_handle = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open_dir(cls, directory: str | os.PathLike) -> "RunStore":
        """Open an existing run directory (its name is the campaign id)."""
        path = pathlib.Path(directory)
        store = cls(path.parent, path.name)
        if not store.exists():
            raise CampaignError(f"{path} is not a campaign run directory")
        return store

    def exists(self) -> bool:
        return (self.directory / MANIFEST).is_file()

    def initialize(self, spec: CampaignSpec, n_cells: int) -> None:
        """Create the directory and manifest, or check the manifest matches."""
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / MANIFEST
        manifest = {
            "campaign_id": self.campaign_id,
            "name": spec.name,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash,
            "n_cells": n_cells,
        }
        if manifest_path.is_file():
            existing = json.loads(manifest_path.read_text(encoding="utf-8"))
            if existing.get("spec_hash") != spec.spec_hash:
                raise CampaignError(
                    f"run directory {self.directory} belongs to a different "
                    "spec (hash mismatch); delete it or change the spec name"
                )
            self._repair()
            return
        atomic_write_text(
            manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )

    def _repair(self) -> None:
        """Drop trailing partial lines left behind by a killed writer."""
        for filename in (RESULTS, TIMINGS):
            path = self.directory / filename
            if not path.is_file():
                continue
            data = path.read_bytes()
            if not data or data.endswith(b"\n"):
                continue
            keep = data.rfind(b"\n") + 1
            with open(path, "r+b") as handle:
                handle.truncate(keep)

    def manifest(self) -> dict:
        path = self.directory / MANIFEST
        if not path.is_file():
            raise CampaignError(f"no manifest in {self.directory}")
        return json.loads(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping[str, Any], timing: Mapping[str, Any]) -> None:
        """Persist one finished cell (record flushed -- and by default
        fsynced -- to disk before returning, so a SIGKILL right after
        ``append`` can never lose the record; a SIGKILL *during* it leaves
        at most one partial trailing line, which ``_repair`` truncates on
        the next run)."""
        if self._results_handle is None:
            self._results_handle = open(
                self.directory / RESULTS, "a", encoding="utf-8"
            )
            self._timings_handle = open(
                self.directory / TIMINGS, "a", encoding="utf-8"
            )
        self._results_handle.write(encode_record(record))
        self._flush(self._results_handle)
        self._timings_handle.write(encode_record(timing))
        self._flush(self._timings_handle)

    def _flush(self, handle) -> None:
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        for handle in (self._results_handle, self._timings_handle):
            if handle is not None:
                handle.close()
        self._results_handle = None
        self._timings_handle = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _read_jsonl(self, filename: str) -> list[dict]:
        path = self.directory / filename
        if not path.is_file():
            return []
        records: list[dict] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # trailing partial line of a killed run
        return records

    def records(self) -> list[dict]:
        return self._read_jsonl(RESULTS)

    def timings(self) -> list[dict]:
        return self._read_jsonl(TIMINGS)

    def completed_ids(self) -> set:
        return {record["id"] for record in self.records()}

    def results_bytes(self) -> bytes:
        path = self.directory / RESULTS
        return path.read_bytes() if path.is_file() else b""

    def status(self) -> dict:
        """Progress counters for ``repro campaign status`` and REST."""
        manifest = self.manifest()
        records = self.records()
        by_status = {status: 0 for status in STATUSES}
        for record in records:
            by_status[record["status"]] = by_status.get(record["status"], 0) + 1
        total = manifest.get("n_cells", len(records))
        return {
            "campaign_id": self.campaign_id,
            "name": manifest.get("name"),
            "total": total,
            "done": len(records),
            "remaining": max(0, total - len(records)),
            "by_status": by_status,
            "verification_failures": sum(
                1 for record in records if record.get("verified") is False
            ),
        }
