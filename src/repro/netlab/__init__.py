"""Network lab: the Mininet-substitute scenario runner."""

from repro.netlab.figure1 import (
    H1,
    H2,
    build_figure1_scenario,
    figure1_problem,
    run_figure1,
)
from repro.netlab.network import Host, Network
from repro.netlab.scenario import (
    ScenarioResult,
    UpdateScenario,
    final_path_of,
    run_update_scenario,
)

__all__ = [
    "H1",
    "H2",
    "Host",
    "Network",
    "ScenarioResult",
    "UpdateScenario",
    "build_figure1_scenario",
    "figure1_problem",
    "final_path_of",
    "run_figure1",
    "run_update_scenario",
]
