"""The network lab: topology + switches + channels + controller + hosts.

This is the Mininet stand-in: it instantiates one simulated switch per
topology node, a dedicated asynchronous control channel per switch, a
controller, and host attachments -- all on one deterministic event loop.
Packets can be injected from hosts and traced hop-by-hop while the
controller is mid-update, which is the measurement the demo performs.

Two packet-transit modes:

* ``"instant"`` (default) -- a packet crosses the whole network at one
  simulated instant, matching the model assumption of the scheduling
  papers (forwarding is fast relative to control-plane rounds);
* ``"perhop"`` -- each link hop takes its topology latency, so a packet in
  flight can observe *different* configurations at different switches (the
  E8 ablation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ScenarioError
from repro.channel.base import ControlChannel
from repro.channel.latency_models import LatencyModel, from_spec
from repro.controller.core import Controller
from repro.controller.datapath_handle import Datapath
from repro.dataplane.packets import Packet
from repro.dataplane.violations import PacketFate, TraceRecord
from repro.openflow.flowmod import FlowMod
from repro.sim.random_source import RandomStreams
from repro.sim.simulator import Simulator
from repro.switch.datapath import SwitchSim
from repro.switch.latency import OVS_PROFILE, SwitchTimingProfile
from repro.topology.graph import NodeId, Topology


@dataclass(frozen=True)
class Host:
    """A host attached to one switch port."""

    name: str
    switch_dpid: NodeId
    switch_port: int  # port on the switch that faces this host
    ip: str
    mac: str


class Network:
    """A runnable network lab over a shared simulator."""

    def __init__(
        self,
        topo: Topology,
        seed: int = 0,
        timing: SwitchTimingProfile | Mapping[NodeId, SwitchTimingProfile] = OVS_PROFILE,
        channel_latency: LatencyModel | float | str = 1.0,
        fifo: bool = True,
        drop_prob: float = 0.0,
        packet_mode: str = "instant",
        miss_behavior: str = "drop",
        max_hops: int | None = None,
    ) -> None:
        if packet_mode not in ("instant", "perhop"):
            raise ScenarioError(f"unknown packet mode {packet_mode!r}")
        self.topo = topo
        self.packet_mode = packet_mode
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.controller = Controller(self.sim)
        self.switches: dict[NodeId, SwitchSim] = {}
        self.channels: dict[NodeId, ControlChannel] = {}
        self.hosts: dict[str, Host] = {}
        self.max_hops = max_hops
        self._packet_ids = itertools.count(1)
        self._started = False

        latency_model = from_spec(channel_latency)
        for dpid in topo.switches():
            profile = (
                timing.get(dpid, OVS_PROFILE) if isinstance(timing, Mapping) else timing
            )
            channel = ControlChannel(
                self.sim,
                latency=latency_model,
                rng=self.streams.stream(f"chan-{dpid}"),
                name=f"chan-{dpid}",
                fifo=fifo,
                drop_prob=drop_prob,
            )
            switch = SwitchSim(
                self.sim,
                dpid=dpid if isinstance(dpid, int) else abs(hash(dpid)) % 2**32,
                channel=channel,
                timing=profile,
                rng=self.streams.stream(f"switch-{dpid}"),
                miss_behavior=miss_behavior,
            )
            self.channels[dpid] = channel
            self.switches[dpid] = switch
        self._attach_hosts()

    def _attach_hosts(self) -> None:
        host_counter = 0
        for name in self.topo.hosts():
            neighbors = self.topo.neighbors(name)
            if len(neighbors) != 1:
                raise ScenarioError(
                    f"host {name!r} must attach to exactly one switch, "
                    f"got {neighbors!r}"
                )
            switch_dpid = neighbors[0]
            if switch_dpid not in self.switches:
                raise ScenarioError(f"host {name!r} attaches to non-switch")
            host_counter += 1
            self.hosts[str(name)] = Host(
                name=str(name),
                switch_dpid=switch_dpid,
                switch_port=self.topo.port_between(switch_dpid, name),
                ip=f"10.0.0.{host_counter}",
                mac=f"00:00:00:00:00:{host_counter:02x}",
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run the OpenFlow handshakes; afterwards all switches are usable."""
        if self._started:
            return
        for dpid in sorted(self.channels, key=repr):
            self.controller.connect_switch(self.channels[dpid])
        self.sim.run()
        missing = [
            dpid
            for dpid, switch in self.switches.items()
            if switch.dpid not in self.controller.datapaths
        ]
        if missing:
            raise ScenarioError(f"handshake incomplete for switches {missing!r}")
        self._started = True

    def datapath(self, dpid: NodeId) -> Datapath:
        return self.controller.datapath(self.switches[dpid].dpid)

    def switch(self, dpid: NodeId) -> SwitchSim:
        try:
            return self.switches[dpid]
        except KeyError:
            raise ScenarioError(f"no switch {dpid!r} in this network") from None

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise ScenarioError(f"no host {name!r} in this network") from None

    # ------------------------------------------------------------------
    # rule management
    # ------------------------------------------------------------------
    def send_flow_mods(self, mods_by_dpid: Mapping[NodeId, list[FlowMod]]) -> None:
        """Ship FlowMods (asynchronously); call :meth:`flush` to settle."""
        for dpid in sorted(mods_by_dpid, key=repr):
            datapath = self.datapath(dpid)
            for mod in mods_by_dpid[dpid]:
                datapath.send_msg(mod.with_xid(0))

    def flush(self, until: float | None = None) -> None:
        """Drain the event loop (all in-flight control traffic settles)."""
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # packet injection and tracing
    # ------------------------------------------------------------------
    def default_packet(self, source_host: str, destination_host: str) -> Packet:
        src, dst = self.host(source_host), self.host(destination_host)
        return Packet(
            eth_src=src.mac, eth_dst=dst.mac, ipv4_src=src.ip, ipv4_dst=dst.ip
        )

    def inject_from_host(
        self,
        source_host: str,
        packet: Packet,
        waypoint: NodeId | None = None,
        destination_host: str | None = None,
    ) -> TraceRecord:
        """Inject ``packet`` at the source host's switch and trace its fate.

        In instant mode the trace resolves before this returns; in per-hop
        mode it resolves as the simulator advances (fate stays IN_FLIGHT
        until then).
        """
        host = self.host(source_host)
        destination = (
            self.host(destination_host) if destination_host is not None else None
        )
        trace = TraceRecord(
            packet_id=next(self._packet_ids), injected_ms=self.sim.now
        )
        hop_budget = self.max_hops if self.max_hops is not None else 4 * max(len(self.switches), 1)
        if self.packet_mode == "instant":
            self._walk_instant(
                trace, packet, host.switch_dpid, host.switch_port, waypoint,
                destination, hop_budget,
            )
        else:
            self._hop_scheduled(
                trace, packet, host.switch_dpid, host.switch_port, waypoint,
                destination, hop_budget,
            )
        return trace

    # -- instant mode ----------------------------------------------------
    def _walk_instant(
        self,
        trace: TraceRecord,
        packet: Packet,
        dpid: NodeId,
        in_port: int,
        waypoint: NodeId | None,
        destination: Host | None,
        hop_budget: int,
    ) -> None:
        visited: set[tuple[NodeId, int]] = set()
        current, port = dpid, in_port
        for _ in range(hop_budget):
            if (current, port) in visited:
                self._finish(trace, PacketFate.LOOPED)
                return
            visited.add((current, port))
            trace.path.append(current)
            step = self._process_at(current, packet, port)
            if step is None:
                self._finish(trace, PacketFate.DROPPED)
                return
            packet, out_port = step
            peer, peer_port = self._peer_of(current, out_port)
            if peer is None:
                self._finish(trace, PacketFate.DROPPED)
                return
            if peer in self.hosts:
                self._finish_at_host(trace, str(peer), waypoint, destination)
                return
            current, port = peer, peer_port
        self._finish(trace, PacketFate.LOOPED)

    # -- per-hop mode ------------------------------------------------------
    def _hop_scheduled(
        self,
        trace: TraceRecord,
        packet: Packet,
        dpid: NodeId,
        in_port: int,
        waypoint: NodeId | None,
        destination: Host | None,
        hop_budget: int,
    ) -> None:
        if hop_budget <= 0:
            self._finish(trace, PacketFate.LOOPED)
            return
        trace.path.append(dpid)
        step = self._process_at(dpid, packet, in_port)
        if step is None:
            self._finish(trace, PacketFate.DROPPED)
            return
        next_packet, out_port = step
        peer, peer_port = self._peer_of(dpid, out_port)
        if peer is None:
            self._finish(trace, PacketFate.DROPPED)
            return
        link = self.topo.link_between(dpid, peer)
        if peer in self.hosts:
            self.sim.schedule(
                link.latency_ms,
                self._finish_at_host,
                trace,
                str(peer),
                waypoint,
                destination,
            )
            return
        self.sim.schedule(
            link.latency_ms,
            self._hop_scheduled,
            trace,
            next_packet,
            peer,
            peer_port,
            waypoint,
            destination,
            hop_budget - 1,
        )

    # -- shared helpers ----------------------------------------------------
    def _process_at(
        self, dpid: NodeId, packet: Packet, in_port: int
    ) -> tuple[Packet, int] | None:
        result = self.switch(dpid).receive_packet(packet, in_port)
        if not result.forwarded:
            return None
        return result.packet, result.out_ports[0]

    def _peer_of(self, dpid: NodeId, out_port: int) -> tuple[NodeId | None, int]:
        try:
            return self.topo.peer(dpid, out_port)
        except Exception:
            return None, 0

    def _finish_at_host(
        self,
        trace: TraceRecord,
        host_name: str,
        waypoint: NodeId | None,
        destination: Host | None,
    ) -> None:
        if destination is not None and host_name != destination.name:
            self._finish(trace, PacketFate.DROPPED)
            return
        if waypoint is not None and waypoint not in trace.path:
            self._finish(trace, PacketFate.BYPASSED_WAYPOINT)
            return
        self._finish(trace, PacketFate.DELIVERED)

    def _finish(self, trace: TraceRecord, fate: PacketFate) -> None:
        trace.fate = fate
        trace.completed_ms = self.sim.now

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def channel_stats(self) -> dict[NodeId, Any]:
        return {dpid: channel.stats for dpid, channel in self.channels.items()}

    def total_flow_mods_applied(self) -> int:
        return sum(switch.log.flow_mods_applied for switch in self.switches.values())
