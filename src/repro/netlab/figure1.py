"""The paper's Figure 1 demo scenario, prebuilt.

Twelve OpenFlow switches; ``h1`` attached to switch 1, ``h2`` to switch 12;
switch 3 is the waypoint (firewall/IDS); the solid old route is replaced by
the dashed new route while ``h1 -> h2`` traffic keeps flowing.  See
``repro.topology.builders.figure1`` for the reconstruction notes.
"""

from __future__ import annotations

from typing import Any

from repro.core.problem import UpdateProblem
from repro.netlab.scenario import ScenarioResult, UpdateScenario
from repro.topology.builders import figure1, figure1_paths

#: Hosts of the demo topology.
H1, H2 = "h1", "h2"


def figure1_problem() -> UpdateProblem:
    """The Figure 1 policy change as an abstract update problem."""
    old_path, new_path, waypoint = figure1_paths()
    return UpdateProblem(old_path, new_path, waypoint=waypoint, name="figure1")


def build_figure1_scenario(
    algorithm: str = "wayup", seed: int = 0, **kwargs: Any
) -> UpdateScenario:
    """The demo setup, ready to :meth:`~repro.netlab.scenario.UpdateScenario.run`.

    Keyword arguments are forwarded to :class:`UpdateScenario` (channel
    latency, switch timing profile, packet mode, ...).
    """
    return UpdateScenario(
        topo=figure1(with_hosts=True),
        problem=figure1_problem(),
        source_host=H1,
        destination_host=H2,
        algorithm=algorithm,
        seed=seed,
        **kwargs,
    )


def run_figure1(algorithm: str = "wayup", seed: int = 0, **kwargs: Any) -> ScenarioResult:
    """Run the demo end to end; returns the scenario result."""
    return build_figure1_scenario(algorithm=algorithm, seed=seed, **kwargs).run()
