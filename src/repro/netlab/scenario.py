"""End-to-end update scenarios: the paper's demo as a callable.

An :class:`UpdateScenario` wires everything together: it boots a
:class:`~repro.netlab.network.Network`, installs the old route, starts
probe traffic, submits the policy change through the paper's REST-style
update app, lets the round FSM run it with barriers over the asynchronous
channels, and reports update time, per-round timings and any transient
violations observed in the dataplane.

This is the workhorse behind examples and benchmarks E1/E2/E4/E5/E6/E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ScenarioError
from repro.channel.latency_models import LatencyModel
from repro.controller.ofctl_rest import OfctlRestApp
from repro.controller.ofctl_rest_own import TransientUpdateApp
from repro.controller.rules import compile_initial_rules
from repro.controller.update_queue import UpdateExecution, UpdateQueueApp
from repro.core.problem import UpdateProblem
from repro.dataplane.injector import FlowSpec, InjectionResult, PeriodicInjector
from repro.netlab.network import Network
from repro.openflow.match import Match
from repro.switch.latency import OVS_PROFILE, SwitchTimingProfile
from repro.topology.graph import NodeId, Topology


@dataclass
class ScenarioResult:
    """Everything a scenario run produces."""

    algorithm: str
    update_id: str
    rounds: int
    update_duration_ms: float
    round_durations_ms: list[float]
    verified: Any
    traffic: InjectionResult
    flow_mods: int
    summary: dict[str, Any] = field(default_factory=dict)

    @property
    def violations(self) -> int:
        return self.traffic.counters.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "update_id": self.update_id,
            "rounds": self.rounds,
            "update_duration_ms": round(self.update_duration_ms, 3),
            "round_durations_ms": [round(d, 3) for d in self.round_durations_ms],
            "verified": self.verified,
            "flow_mods": self.flow_mods,
            **self.traffic.counters.as_dict(),
        }


class UpdateScenario:
    """One policy change executed over a freshly booted network."""

    def __init__(
        self,
        topo: Topology,
        problem: UpdateProblem,
        source_host: str,
        destination_host: str,
        match: Match | None = None,
        algorithm: str = "wayup",
        seed: int = 0,
        timing: SwitchTimingProfile | Mapping[NodeId, SwitchTimingProfile] = OVS_PROFILE,
        channel_latency: LatencyModel | float | str = 1.0,
        fifo: bool = True,
        drop_prob: float = 0.0,
        packet_mode: str = "instant",
        probe_interval_ms: float = 0.25,
        interval_ms: float = 0.0,
        verify: bool = True,
        warmup_probes: int = 5,
        use_barriers: bool = True,
    ) -> None:
        self.topo = topo
        self.problem = problem
        self.source_host = source_host
        self.destination_host = destination_host
        self.algorithm = algorithm
        self.probe_interval_ms = probe_interval_ms
        self.interval_ms = interval_ms
        self.warmup_probes = warmup_probes
        self.use_barriers = use_barriers

        self.network = Network(
            topo,
            seed=seed,
            timing=timing,
            channel_latency=channel_latency,
            fifo=fifo,
            drop_prob=drop_prob,
            packet_mode=packet_mode,
        )
        destination = self.network.host(destination_host)
        self.match = (
            match
            if match is not None
            else Match(eth_type=0x0800, ipv4_dst=destination.ip)
        )
        self.update_queue = UpdateQueueApp()
        self.update_app = TransientUpdateApp(
            topo, self.update_queue, default_match=self.match, verify=verify
        )
        self.ofctl_app = OfctlRestApp()
        self.network.controller.register_app(self.update_queue)
        self.network.controller.register_app(self.update_app)
        self.network.controller.register_app(self.ofctl_app)

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Boot the network and install the old route."""
        self.network.start()
        destination = self.network.host(self.destination_host)
        egress_port = destination.switch_port
        initial = compile_initial_rules(
            self.topo, self.problem, self.match, egress_port=egress_port
        )
        self.network.send_flow_mods(initial)
        self.network.flush()
        self._check_initial_path()

    def _check_initial_path(self) -> None:
        probe = self.network.default_packet(self.source_host, self.destination_host)
        trace = self.network.inject_from_host(
            self.source_host,
            probe,
            waypoint=self.problem.waypoint,
            destination_host=self.destination_host,
        )
        if self.network.packet_mode == "perhop":
            self.network.flush()
        if trace.fate.value != "delivered":
            raise ScenarioError(
                f"old route broken before the update: {trace.fate.value} "
                f"via {trace.path!r}"
            )

    def run(self) -> ScenarioResult:
        """Execute the update under continuous probing; returns the result."""
        self.prepare()
        flow = FlowSpec(
            source_host=self.source_host,
            destination_host=self.destination_host,
            waypoint=self.problem.waypoint,
        )
        injector = PeriodicInjector(
            self.network, flow, interval_ms=self.probe_interval_ms
        )
        injector.stop_when_update_completes(
            self.update_queue, extra_probes=self.warmup_probes
        )
        injector.start()

        request: dict[str, Any] = {
            "oldpath": list(self.problem.old_path.nodes),
            "newpath": list(self.problem.new_path.nodes),
            "interval": self.interval_ms,
            "algorithm": self.algorithm,
            "barriers": self.use_barriers,
        }
        if self.problem.waypoint is not None:
            request["wp"] = self.problem.waypoint
        summary = self.update_app.submit_update(request)
        self.network.flush()

        execution = self.update_queue.find_completed(summary["update_id"])
        injector.result.finalize()
        return ScenarioResult(
            algorithm=self.algorithm,
            update_id=execution.update_id,
            rounds=execution.n_rounds,
            update_duration_ms=execution.duration_ms,
            round_durations_ms=[t.duration_ms for t in execution.round_timings],
            verified=summary.get("verified"),
            traffic=injector.result,
            flow_mods=summary.get("flow_mods", 0),
            summary=summary,
        )


def run_update_scenario(**kwargs: Any) -> ScenarioResult:
    """One-call convenience wrapper around :class:`UpdateScenario`."""
    return UpdateScenario(**kwargs).run()


def final_path_of(network: Network, source_host: str, destination_host: str) -> list:
    """Trace the settled path after an update (sanity checks in tests)."""
    probe = network.default_packet(source_host, destination_host)
    trace = network.inject_from_host(
        source_host, probe, destination_host=destination_host
    )
    if network.packet_mode == "perhop":
        network.flush()
    return list(trace.path)


def execution_record(scenario: UpdateScenario, update_id: str) -> UpdateExecution:
    """Fetch the raw execution record (round timings etc.) for an update."""
    return scenario.update_queue.find_completed(update_id)
