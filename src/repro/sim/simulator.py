"""A small deterministic discrete-event simulator.

All substrate components (switches, channels, the controller, traffic
injectors) schedule callbacks on one shared :class:`Simulator`; simulated
time is in **milliseconds**.  The simulator is single-threaded and fully
deterministic: identical seeds and schedules produce identical runs, which
is what makes the asynchrony experiments reproducible.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import EventQueue, ScheduledEvent


class Simulator:
    """Deterministic event loop with millisecond time.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired, sim.now
    (['b', 'a'], 5.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self._queue.push(time, callback, *args)

    def cancel(self, event: ScheduledEvent) -> bool:
        """Retract a scheduled event; True iff this call retracted it."""
        return event.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue went backwards in time")
        self.now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Drain the queue (optionally only up to time ``until``).

        ``max_events`` guards against runaway feedback loops in scenarios;
        exceeding it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            processed = 0
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                if not self.step():  # pragma: no cover - peek said otherwise
                    break
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway scenario?"
                    )
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending_events})"
