"""Named, reproducible random streams.

Every stochastic component (each channel, each switch's install latency,
the traffic injector) draws from its *own* stream derived from a master
seed and a stable name.  Changing one component's consumption pattern then
never perturbs the randomness any other component sees -- runs stay
comparable across experiments.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed derived from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of named :class:`random.Random` streams.

    >>> streams = RandomStreams(7)
    >>> a1 = streams.stream("chan-1").random()
    >>> a2 = RandomStreams(7).stream("chan-1").random()
    >>> a1 == a2
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, cached after)."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        return RandomStreams(derive_seed(self.master_seed, f"fork:{name}"))
