"""Event queue primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a point in simulated time.

    Ordering is ``(time, seq)`` so simultaneous events fire in scheduling
    order -- determinism matters more than fairness here.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`ScheduledEvent`."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> ScheduledEvent:
        event = ScheduledEvent(time=time, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent | None:
        """Pop the earliest non-cancelled event, or None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Earliest pending event time (skipping cancelled), or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
