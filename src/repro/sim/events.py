"""Event queue primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a point in simulated time.

    Ordering is ``(time, seq)`` so simultaneous events fire in scheduling
    order -- determinism matters more than fairness here.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)
    _queue: "EventQueue | None" = field(compare=False, default=None, repr=False)

    def cancel(self) -> bool:
        """Retract the event (heap-lazy: the entry stays until popped).

        Returns ``True`` when this call retracted a still-pending event,
        ``False`` when the event already fired or was already cancelled --
        so callers retracting obsolete re-plan callbacks (the churn
        controller) can account exactly once per retraction.
        """
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
        return True

    @property
    def pending(self) -> bool:
        return not (self.fired or self.cancelled)


class EventQueue:
    """A deterministic min-heap of :class:`ScheduledEvent`.

    Cancellation is *lazy*: a cancelled event keeps its heap slot and is
    skipped (and physically dropped) when it surfaces in :meth:`pop` /
    :meth:`peek_time`.  A live-entry counter keeps ``len()`` O(1) even
    with many retracted entries still buried in the heap.
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> ScheduledEvent:
        event = ScheduledEvent(
            time=time, seq=next(self._counter), callback=callback, args=args,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        self._live -= 1

    def pop(self) -> ScheduledEvent | None:
        """Pop the earliest non-cancelled event, or None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event.fired = True
                self._live -= 1
                return event
        return None

    def peek_time(self) -> float | None:
        """Earliest pending event time (skipping cancelled), or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None
