"""Deterministic discrete-event simulation substrate."""

from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.random_source import RandomStreams, derive_seed
from repro.sim.simulator import Simulator

__all__ = [
    "EventQueue",
    "RandomStreams",
    "ScheduledEvent",
    "Simulator",
    "derive_seed",
]
