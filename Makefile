PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test api-surface bench-smoke bench-oracle bench-exact bench campaign-smoke fabric-smoke crash-smoke churn-smoke integrity-smoke help

help:
	@echo "test           - tier-1 test suite (pytest -x -q)"
	@echo "api-surface    - public-API snapshot check (tests/test_api_surface.py)"
	@echo "bench-smoke    - ~40s perf subset; writes benchmarks/results/BENCH_oracle.json + BENCH_exact.json"
	@echo "bench-oracle   - full oracle perf run (includes the minutes-long seed path at n=500)"
	@echo "bench-exact    - full exact-search perf run (mask engine vs the PR 1 frozenset BFS)"
	@echo "bench          - full pytest-benchmark experiment suite (E1-E10 tables)"
	@echo "campaign-smoke - ~20s tiny campaign (260 cells, 7 family entries, 5 schedulers)"
	@echo "fabric-smoke   - ~15s faulty 3-worker fleet (one SIGKILLed, one frozen) vs 1-worker baseline"
	@echo "crash-smoke    - ~30s coordinator SIGKILLed twice mid-campaign; journal recovery vs 1-worker baseline"
	@echo "churn-smoke    - ~5s online-churn grid: quiescence, zero violations, same-seed determinism"
	@echo "integrity-smoke - ~30s hostile fleet (liar + corruptor + OOM cell + poison cell) vs 1-worker baseline"

test:
	$(PYTHON) -m pytest -x -q

api-surface:
	$(PYTHON) -m pytest tests/test_api_surface.py -q

bench-smoke:
	$(PYTHON) benchmarks/run_smoke.py

bench-oracle:
	$(PYTHON) benchmarks/bench_perf_oracle.py

bench-exact:
	$(PYTHON) benchmarks/bench_perf_exact.py

bench:
	$(PYTHON) -m pytest benchmarks -q -o python_files="bench_*.py" -o python_functions="test_*"

campaign-smoke:
	$(PYTHON) -m repro campaign run examples/specs/smoke.json -j 4

fabric-smoke:
	$(PYTHON) benchmarks/run_fabric_smoke.py

crash-smoke:
	$(PYTHON) benchmarks/run_crash_smoke.py

churn-smoke:
	$(PYTHON) benchmarks/run_churn_smoke.py

integrity-smoke:
	$(PYTHON) benchmarks/run_integrity_smoke.py
