"""E8 -- ablation of the model assumption: in-flight packets.

The scheduling papers (and our verifiers) assume packet transit is
instantaneous relative to round pacing.  The per-hop packet mode relaxes
that: a packet can observe different configurations at different
switches.  With realistic link latencies (1 ms) and barrier-paced rounds
the guarantee empirically survives; cranking link latency up to round
duration re-opens a small window -- quantifying exactly how much the
model assumption carries.
"""

import pytest

from repro.netlab.figure1 import run_figure1

SEEDS = range(4)


def _bypass_count(packet_mode: str, link_scale_note: str = "") -> tuple[int, int]:
    bypass = injected = 0
    for seed in SEEDS:
        result = run_figure1(
            algorithm="wayup",
            seed=seed,
            packet_mode=packet_mode,
            channel_latency="uniform:0.5:4",
        )
        bypass += result.traffic.counters.bypassed_waypoint
        injected += result.traffic.counters.injected
    return bypass, injected


@pytest.mark.benchmark(group="e8-slow-packets")
def test_e8_instant_vs_perhop(benchmark, emit):
    rows = []
    for mode in ("instant", "perhop"):
        bypass, injected = _bypass_count(mode)
        rows.append([mode, injected, bypass])
    emit(
        "E8 / WayUp under the transit-time ablation (4 seeds)",
        ["packet mode", "probes", "fw bypasses"],
        rows,
    )
    # the verified guarantee holds in the model (instant) and, with
    # millisecond links vs multi-ms rounds, empirically per-hop too
    assert rows[0][2] == 0
    assert rows[1][2] == 0

    benchmark.pedantic(
        lambda: run_figure1(
            algorithm="wayup", seed=0, packet_mode="perhop",
            channel_latency="uniform:0.5:4",
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="e8-slow-packets")
def test_e8_oneshot_perhop_still_violates(benchmark, emit):
    """Sanity: the ablation does not mask the baseline's violations."""
    bypass = drops = loops = 0
    for seed in SEEDS:
        result = run_figure1(
            algorithm="oneshot", seed=seed, packet_mode="perhop",
            channel_latency="uniform:0.5:6",
        )
        counters = result.traffic.counters
        bypass += counters.bypassed_waypoint
        drops += counters.dropped
        loops += counters.looped
    emit(
        "E8b / one-shot in per-hop mode (4 seeds)",
        ["fw bypasses", "drops", "loops"],
        [[bypass, drops, loops]],
    )
    assert bypass + drops + loops > 0

    benchmark.pedantic(
        lambda: run_figure1(
            algorithm="oneshot", seed=0, packet_mode="perhop",
            channel_latency="uniform:0.5:6",
        ),
        rounds=3,
        iterations=1,
    )
