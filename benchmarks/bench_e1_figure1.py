"""E1 -- the paper's Figure 1 demo scenario.

Regenerates the demo's artifact: the 12-switch topology update from the
solid to the dashed route across waypoint s3, executed with WayUp through
the round FSM with barriers, under continuous h1->h2 probe traffic.

Paper claim: the update is transiently secure -- no probe ever reaches h2
without traversing s3.  The table reports all algorithms side by side;
the timed benchmark is the full WayUp scenario execution.
"""

import pytest

from repro.netlab.figure1 import run_figure1

ALGORITHMS = ["wayup", "peacock", "greedy-slf", "oneshot", "two-phase"]


@pytest.mark.benchmark(group="e1-figure1")
def test_e1_figure1_wayup_scenario(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_figure1(algorithm="wayup", seed=1),
        rounds=3,
        iterations=1,
    )
    assert result.violations == 0

    rows = []
    for algorithm in ALGORITHMS:
        outcome = run_figure1(
            algorithm=algorithm, seed=1, channel_latency="uniform:0.5:3"
        )
        counters = outcome.traffic.counters
        rows.append([
            algorithm,
            outcome.rounds,
            outcome.update_duration_ms,
            counters.injected,
            counters.bypassed_waypoint,
            counters.looped,
            counters.dropped,
            str(outcome.verified),
        ])
    emit(
        "E1 / Figure 1: update h1->h2 across waypoint s3 (jittery channel)",
        ["algorithm", "rounds", "update ms", "probes", "bypass", "loop",
         "drop", "verified"],
        rows,
    )
    wayup_row = rows[0]
    assert wayup_row[4] == 0 and wayup_row[6] == 0  # no bypass, no drop


@pytest.mark.benchmark(group="e1-figure1")
def test_e1_oneshot_scenario(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure1(
            algorithm="oneshot", seed=1, channel_latency="uniform:0.5:3"
        ),
        rounds=3,
        iterations=1,
    )
    # the baseline really does violate transiently
    assert result.verified is False
