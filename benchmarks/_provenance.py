"""Run provenance for the benchmark JSON artifacts.

Perf numbers are only comparable against their environment: every
``BENCH_*.json`` embeds the machine, python build and git revision that
produced it, so regressions can be told apart from hardware changes.
"""

from __future__ import annotations

import pathlib
import platform
import socket
import subprocess


def provenance() -> dict:
    """Machine / python / git-sha record for a benchmark payload."""
    record = {
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "git_sha": None,
        "git_dirty": None,
    }
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    try:
        record["git_sha"] = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_root, capture_output=True, text=True, timeout=10,
            check=True,
        ).stdout
        record["git_dirty"] = bool(status.strip())
    except (OSError, subprocess.SubprocessError):
        pass  # not a git checkout (e.g. a source tarball): sha stays None
    return record
