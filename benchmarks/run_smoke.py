"""Benchmark smoke runner: a ~30-second perf subset with a JSON artifact.

Runs the quick mode of :mod:`benchmarks.bench_perf_oracle` (incremental
oracle vs from-scratch verification) and writes
``benchmarks/results/BENCH_oracle.json``.  Wired as ``make bench-smoke``;
exit status is non-zero when a perf target regresses, so it can gate CI.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import bench_perf_oracle  # noqa: E402  (sibling import by path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=pathlib.Path, default=bench_perf_oracle.DEFAULT_OUT
    )
    args = parser.parse_args(argv)
    return bench_perf_oracle.main(["--quick", "--out", str(args.out)])


if __name__ == "__main__":
    sys.exit(main())
