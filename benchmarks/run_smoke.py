"""Benchmark smoke runner: a ~40-second perf subset with JSON artifacts.

Runs the quick modes of :mod:`benchmarks.bench_perf_oracle` (incremental
oracle vs from-scratch verification, ``BENCH_oracle.json``) and
:mod:`benchmarks.bench_perf_exact` (bitmask exact-search engine vs the
PR 1 path, ``BENCH_exact.json``).  Wired as ``make bench-smoke``; exit
status is non-zero when any perf target regresses, so it can gate CI.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py [--oracle-out PATH] [--exact-out PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import bench_perf_exact  # noqa: E402  (sibling import by path)
import bench_perf_oracle  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--oracle-out", type=pathlib.Path, default=bench_perf_oracle.DEFAULT_OUT
    )
    parser.add_argument(
        "--exact-out", type=pathlib.Path, default=bench_perf_exact.DEFAULT_OUT
    )
    args = parser.parse_args(argv)
    oracle_rc = bench_perf_oracle.main(["--quick", "--out", str(args.oracle_out)])
    exact_rc = bench_perf_exact.main(["--quick", "--out", str(args.exact_out)])
    return oracle_rc or exact_rc


if __name__ == "__main__":
    sys.exit(main())
