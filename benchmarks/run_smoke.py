"""Benchmark smoke runner: a ~40-second perf subset with JSON artifacts.

Runs the quick modes of :mod:`benchmarks.bench_perf_oracle` (incremental
oracle vs from-scratch verification, ``BENCH_oracle.json``) and
:mod:`benchmarks.bench_perf_exact` (bitmask exact-search engine vs the
PR 1 path, plus the branch-and-bound engine vs IDDFS,
``BENCH_exact.json``).  Wired as ``make bench-smoke``; exit status is
non-zero when any perf target regresses, so it can gate CI.

After both benchmarks the runner prints a before/after speedup table
(the seed-era path vs the current engines) and rewrites the
marker-delimited smoke section of ``benchmarks/results/tables.txt``, so
the checked-in tables never go stale.

The run is also a tracing-overhead guard: the core is instrumented with
:mod:`repro.obs` spans, and the perf gates in ``BENCH_oracle.json`` /
``BENCH_exact.json`` only stay meaningful if the *disabled* tracer is
effectively free.  The runner refuses to benchmark with tracing armed,
and fails if the no-op ``obs.span()`` path costs more than
``MAX_NOOP_SPAN_US`` per call.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py [--oracle-out PATH] [--exact-out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import bench_perf_exact  # noqa: E402  (sibling import by path)
import bench_perf_oracle  # noqa: E402

TABLES_PATH = pathlib.Path(__file__).parent / "results" / "tables.txt"
SMOKE_BEGIN = "=== PERF smoke: before/after speedups (auto-generated) ==="
SMOKE_END = "=== end PERF smoke ==="

#: Ceiling on the per-call cost of a *disabled* ``obs.span()``.  The
#: instrumented hot paths (oracle nogoods, bnb milestones) guard on
#: ``tracing_enabled()`` so this is the worst case they ever pay; the
#: real figure is well under a microsecond, the ceiling leaves room for
#: slow CI machines without letting a regression slide into the gates.
MAX_NOOP_SPAN_US = 25.0
NOOP_SPAN_CALLS = 20_000


def tracing_overhead_guard() -> list[str]:
    """Perf-gate preconditions for the instrumented core.

    Returns a list of failure strings (empty when the guard passes):
    tracing must be disarmed so the benchmark numbers measure the
    schedulers and not the sink, and the no-op span path the hot loops
    still traverse must be cheap enough to be invisible in the gates.
    """
    from repro.obs import span, tracing_enabled

    failures = []
    if tracing_enabled():
        failures.append(
            "tracing is enabled (REPRO_TRACE_DIR?) -- benchmark numbers "
            "would include sink overhead; disarm tracing before bench-smoke"
        )
        return failures
    # warm the no-op path, then time it
    for _ in range(1000):
        with span("bench.noop"):
            pass
    start = time.perf_counter()
    for _ in range(NOOP_SPAN_CALLS):
        with span("bench.noop", k=1):
            pass
    per_call_us = (time.perf_counter() - start) / NOOP_SPAN_CALLS * 1e6
    print(f"[run_smoke] disabled obs.span(): {per_call_us:.2f}us/call "
          f"(ceiling {MAX_NOOP_SPAN_US}us)")
    if per_call_us > MAX_NOOP_SPAN_US:
        failures.append(
            f"disabled obs.span() costs {per_call_us:.2f}us/call "
            f"(> {MAX_NOOP_SPAN_US}us) -- the no-op tracer would skew "
            "the perf gates"
        )
    return failures


def _fmt_ms(value) -> str:
    return "-" if value is None else f"{value:.2f}"


def speedup_table(oracle_payload: dict, exact_payload: dict) -> str:
    """Before/after wall-clock per headline benchmark, seed path vs now."""
    from repro.metrics.report import ascii_table

    rows = []
    greedy = oracle_payload["results"]["greedy_slf_reversal"]
    for row in greedy["rows"]:
        if row.get("legacy_s") is not None:
            rows.append([
                f"greedy_slf(reversal-{row['n']})",
                _fmt_ms(row["legacy_s"] * 1000),
                _fmt_ms(row["oracle_s"] * 1000),
                f"{row['speedup']}x",
            ])
    optimal = oracle_payload["results"]["minimal_rounds_rlf_n10"]
    rows.append([
        "minimal_rounds(reversal-10, rlf)",
        _fmt_ms(optimal["legacy_ms"]),
        _fmt_ms(optimal["oracle_ms"]),
        f"{optimal['speedup']}x",
    ])
    for row in exact_payload["results"]["mask_vs_pr1"]["rows"]:
        rows.append([
            f"exact(reversal-{row['n']}, rlf) iddfs",
            _fmt_ms(row["pr1_sets_ms"]),
            _fmt_ms(row["mask_iddfs_ms"]),
            f"{row['iddfs_speedup']}x",
        ])
    bnb = exact_payload["results"]["bnb"]
    rows.append([
        "infeasible clash-16 (wpe+slf) bnb",
        _fmt_ms(bnb["clash16_iddfs_ms"]),
        _fmt_ms(bnb["clash16_bnb_ms"]),
        f"{bnb['infeasible_speedup_at_16']}x",
    ])
    for row in bnb["rows"]:
        rows.append([
            f"bnb {row['instance']}",
            "-",
            _fmt_ms(row["seconds"] * 1000),
            "within budget" if row["within_budget"] else "OVER BUDGET",
        ])
    sha = (exact_payload.get("provenance") or {}).get("git_sha") or "unknown"
    return ascii_table(
        ["benchmark", "before ms", "after ms", "speedup"],
        rows,
        title=f"bench-smoke speedups @ {sha[:12]}",
    )


def rewrite_smoke_section(table: str) -> None:
    """Replace (or append) the smoke section of ``tables.txt``."""
    TABLES_PATH.parent.mkdir(parents=True, exist_ok=True)
    section = f"{SMOKE_BEGIN}\n{table}\n{SMOKE_END}\n"
    text = TABLES_PATH.read_text(encoding="utf-8") if TABLES_PATH.is_file() else ""
    if SMOKE_BEGIN in text and SMOKE_END in text:
        head, _, rest = text.partition(SMOKE_BEGIN)
        _, _, tail = rest.partition(SMOKE_END)
        text = head + section + tail.lstrip("\n")
    else:
        if text and not text.endswith("\n\n"):
            text += "\n"
        text += section
    TABLES_PATH.write_text(text, encoding="utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--oracle-out", type=pathlib.Path, default=bench_perf_oracle.DEFAULT_OUT
    )
    parser.add_argument(
        "--exact-out", type=pathlib.Path, default=bench_perf_exact.DEFAULT_OUT
    )
    args = parser.parse_args(argv)
    guard_failures = tracing_overhead_guard()
    if guard_failures:
        for failure in guard_failures:
            print(f"FAIL: {failure}")
        return 1
    oracle_rc = bench_perf_oracle.main(["--quick", "--out", str(args.oracle_out)])
    exact_rc = bench_perf_exact.main(["--quick", "--out", str(args.exact_out)])
    try:
        oracle_payload = json.loads(args.oracle_out.read_text(encoding="utf-8"))
        exact_payload = json.loads(args.exact_out.read_text(encoding="utf-8"))
        table = speedup_table(oracle_payload, exact_payload)
    except (OSError, KeyError, ValueError) as exc:
        print(f"[run_smoke] could not build the speedup table: {exc}")
    else:
        print(table)
        rewrite_smoke_section(table)
        print(f"[run_smoke] refreshed smoke section of {TABLES_PATH}")
    return oracle_rc or exact_rc


if __name__ == "__main__":
    sys.exit(main())
