"""E9 -- verifier cost: polynomial union-graph checks vs exhaustive oracle.

The polynomial verifiers are what makes verify-before-deploy practical:
checking a round is reachability/cycle detection on the union graph,
while the oracle enumerates 2^|round| configurations.  The table shows
wall-time per full-schedule verification as the instance grows, and the
benchmark groups let pytest-benchmark quantify each verifier.
"""

import time

import pytest

from repro.core.hardness import reversal_instance, waypoint_slalom_instance
from repro.core.oneshot import oneshot_schedule
from repro.core.peacock import peacock_schedule
from repro.core.verify import Property, verify_exhaustive, verify_schedule
from repro.core.wayup import wayup_schedule


def _time_ms(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1000.0


@pytest.mark.benchmark(group="e9-verifier")
def test_e9_poly_vs_exhaustive(benchmark, emit):
    rows = []
    for n in (6, 8, 10, 12, 14):
        schedule = oneshot_schedule(reversal_instance(n), include_cleanup=False)
        properties = (Property.SLF, Property.RLF, Property.BLACKHOLE)
        poly_ms = _time_ms(lambda: verify_schedule(schedule, properties=properties))
        brute_ms = (
            _time_ms(
                lambda: verify_exhaustive(
                    schedule, properties=properties, max_flexible=n
                )
            )
            if n <= 12
            else None
        )
        rows.append([
            n,
            poly_ms,
            brute_ms if brute_ms is not None else "-",
            (brute_ms / poly_ms) if brute_ms else "-",
        ])
    emit(
        "E9a / verification wall time: polynomial vs exhaustive (one-shot)",
        ["n", "poly ms", "exhaustive ms", "speedup"],
        rows,
    )

    benchmark.pedantic(
        lambda: verify_schedule(
            oneshot_schedule(reversal_instance(12), include_cleanup=False),
            properties=(Property.SLF, Property.RLF, Property.BLACKHOLE),
        ),
        rounds=5,
        iterations=2,
    )


@pytest.mark.benchmark(group="e9-verifier")
def test_e9_poly_scales_to_large_instances(benchmark, emit):
    rows = []
    for n in (50, 100, 200, 400, 1000, 2000):
        schedule = peacock_schedule(
            reversal_instance(n), include_cleanup=False, exact=False
        )
        elapsed = _time_ms(
            lambda: verify_schedule(
                schedule,
                properties=(Property.RLF, Property.BLACKHOLE),
                exact_rlf=False,
            )
        )
        rows.append([n, schedule.n_rounds, elapsed])
    emit(
        "E9b / conservative verification scales (Peacock schedules)",
        ["n", "rounds", "verify ms"],
        rows,
    )

    problem = reversal_instance(2000)
    schedule = peacock_schedule(problem, include_cleanup=False, exact=False)
    benchmark.pedantic(
        lambda: verify_schedule(
            schedule, properties=(Property.RLF,), exact_rlf=False
        ),
        rounds=5,
        iterations=1,
    )


@pytest.mark.benchmark(group="e9-verifier")
def test_e9_wayup_verification_cost(benchmark):
    """Per-schedule cost of the WPE check on a large slalom (n=1003)."""
    schedule = wayup_schedule(waypoint_slalom_instance(500))
    report = benchmark.pedantic(
        lambda: verify_schedule(
            schedule, properties=(Property.WPE, Property.BLACKHOLE)
        ),
        rounds=5,
        iterations=2,
    )
    assert report.ok
