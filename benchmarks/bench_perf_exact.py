"""Perf benchmark: the bitmask exact-search engine vs the PR 1 path.

Tracks what the integer-state rewrite of :mod:`repro.core.optimal` buys
over the frozenset BFS it replaced (the PR 1 path: oracle-backed
``engine="sets"``).  Three series go into ``BENCH_exact.json``:

* **mask_vs_pr1** -- ``minimal_round_schedule(reversal(n), RLF)`` at
  n=10/12/14 on the PR 1 sets engine, the mask BFS (canonical order,
  bit-identical schedules -- asserted) and the mask IDDFS mode (the
  default for campaign ground-truthing);
* **cap_lift** -- instances beyond the old ``DEFAULT_MAX_NODES = 12``
  cap: reversal n=16/18 and sawtooth-18-4 (15--17 required updates),
  plus a waypointed slalom row for the WPE property mix (its update
  count is constant at 4: only the nodes adjacent to the crossing ever
  switch), all settled by IDDFS;
* **warm_memo** -- a warm repeat against the shared int-keyed verdict
  memo;
* **bnb** -- the branch-and-bound engine against IDDFS on its target
  worst cases: the WPE+SLF infeasible clash family (forced-order
  certificates and conflict-learned nogoods vs deepening
  re-expansion) and the lifted n=24 cap.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_exact.py [--quick] [--out PATH]

Acceptance targets (gated by the exit status, wired into
``make bench-smoke`` via ``benchmarks/run_smoke.py``):

* IDDFS speedup over the PR 1 path at n=12 under RLF: >= 5x;
* reversal n=16 (15 required updates, beyond the old cap) completes;
* bnb over IDDFS on the infeasible clash family at n=16: >= 5x;
* bnb settles the clash-24 infeasibility proof and reversal-24 under
  RLF within the smoke budget.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from _provenance import provenance
from repro.core.hardness import (
    crossing_clash_instance,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.optimal import DEFAULT_MAX_NODES, minimal_round_schedule
from repro.core.oracle import clear_registry, oracle_for
from repro.core.verify import Property
from repro.errors import InfeasibleUpdateError

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_exact.json"

IDDFS_TARGET_SPEEDUP = 5.0
CAP_LIFT_BUDGET_S = 30.0
BNB_INFEASIBLE_TARGET_SPEEDUP = 5.0
BNB_BUDGET_S = 30.0


def _time(fn, repeats=3):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_mask_vs_pr1(quick: bool) -> dict:
    """reversal(n) under RLF: PR 1 sets engine vs mask BFS vs mask IDDFS."""
    rows = []
    pr1_repeats = {10: 3, 12: 3 if not quick else 2, 14: 1}
    for n in (10, 12, 14):
        problem = reversal_instance(n)
        properties = (Property.RLF,)

        def cold(engine, search="bfs"):
            clear_registry()
            return minimal_round_schedule(
                problem, properties, engine=engine, search=search
            )

        pr1_s, pr1 = _time(lambda: cold("sets"), repeats=pr1_repeats[n])
        bfs_s, bfs = _time(lambda: cold("mask"), repeats=pr1_repeats[n])
        iddfs_s, iddfs = _time(
            lambda: cold("mask", "iddfs"), repeats=5 if quick else 10
        )
        assert bfs.rounds == pr1.rounds, (
            "mask BFS must be bit-identical to the PR 1 path"
        )
        assert iddfs.n_rounds == pr1.n_rounds, (
            "IDDFS must agree on the optimal round count"
        )
        rows.append({
            "n": n,
            "required_updates": len(problem.required_updates),
            "rounds": pr1.n_rounds,
            "pr1_sets_ms": round(pr1_s * 1000, 2),
            "mask_bfs_ms": round(bfs_s * 1000, 2),
            "mask_iddfs_ms": round(iddfs_s * 1000, 3),
            "bfs_speedup": round(pr1_s / bfs_s, 2),
            "iddfs_speedup": round(pr1_s / iddfs_s, 1),
        })
    at_12 = next(r for r in rows if r["n"] == 12)
    return {
        "description": (
            "minimal_round_schedule(reversal(n), RLF): PR 1 frozenset BFS "
            "vs bitmask BFS (bit-identical schedules) vs bitmask IDDFS"
        ),
        "target_iddfs_speedup_at_12": IDDFS_TARGET_SPEEDUP,
        "rows": rows,
        "iddfs_speedup_at_12": at_12["iddfs_speedup"],
        "meets_target": at_12["iddfs_speedup"] >= IDDFS_TARGET_SPEEDUP,
    }


def bench_cap_lift(quick: bool) -> dict:
    """Instances beyond the old n=12 cap, settled by the IDDFS mode."""
    cases = [
        ("reversal-16", reversal_instance(16), (Property.RLF,)),
        ("reversal-18", reversal_instance(18), (Property.RLF,)),
        ("sawtooth-18-4", sawtooth_instance(18, 4), (Property.RLF,)),
        (
            "slalom-8 (wpe+blackhole)",
            waypoint_slalom_instance(8),
            (Property.WPE, Property.BLACKHOLE),
        ),
    ]
    rows = []
    for label, problem, properties in cases:
        clear_registry()
        start = time.perf_counter()
        try:
            schedule = minimal_round_schedule(
                problem, properties, search="iddfs"
            )
        except Exception as exc:  # noqa: BLE001 - report, then fail the gate
            rows.append({
                "instance": label,
                "required_updates": len(problem.required_updates),
                "completed": False,
                "error": f"{type(exc).__name__}: {exc}",
            })
            continue
        rows.append({
            "instance": label,
            "required_updates": len(problem.required_updates),
            "completed": True,
            "rounds": schedule.n_rounds,
            "seconds": round(time.perf_counter() - start, 4),
        })
    n16 = rows[0]
    return {
        "description": (
            f"exact schedules past the old cap (DEFAULT_MAX_NODES is now "
            f"{DEFAULT_MAX_NODES}); gate: reversal-16 completes within "
            f"{CAP_LIFT_BUDGET_S}s"
        ),
        "rows": rows,
        "meets_target": bool(
            n16["completed"] and n16["seconds"] <= CAP_LIFT_BUDGET_S
        ),
    }


def bench_bnb(quick: bool) -> dict:
    """Branch-and-bound vs IDDFS on infeasibility proofs and the new cap."""
    clash_props = (Property.WPE, Property.SLF)

    def settle(problem, properties, search):
        clear_registry()
        try:
            schedule = minimal_round_schedule(
                problem, properties, search=search
            )
        except InfeasibleUpdateError:
            return "infeasible"
        return schedule.n_rounds

    def settle_raw_iddfs(problem, properties):
        # The PR 3 baseline: the raw deepening engine.  The public entry
        # point now short-circuits certified-infeasible instances for
        # every engine (the certificates are shared), so the honest
        # before-number must invoke the engine underneath it.
        from repro.core.optimal import _MaskSearch, _search_mask_iddfs

        clear_registry()
        state = _MaskSearch(problem, properties, None, True)
        try:
            _search_mask_iddfs(state, properties, None)
        except InfeasibleUpdateError:
            return "infeasible"
        raise AssertionError("the clash family must be infeasible")

    # --- infeasible clash family at n=16: the 5x gate ------------------
    clash16 = crossing_clash_instance(16)
    iddfs_s, iddfs_verdict = _time(
        lambda: settle_raw_iddfs(clash16, clash_props),
        repeats=3 if quick else 5,
    )
    bnb_s, bnb_verdict = _time(
        lambda: settle(clash16, clash_props, "bnb"),
        repeats=5 if quick else 10,
    )
    assert iddfs_verdict == bnb_verdict == "infeasible", (
        "both engines must prove the clash infeasible"
    )
    speedup = iddfs_s / bnb_s

    # --- worst cases only bnb settles inside the budget ----------------
    rows = []
    for label, problem, properties, expected in (
        ("clash-24 (wpe+slf)", crossing_clash_instance(24), clash_props,
         "infeasible"),
        ("reversal-24 (rlf)", reversal_instance(24), (Property.RLF,), 3),
        ("reversal-24 (slf)", reversal_instance(24), (Property.SLF,), 22),
    ):
        clear_registry()
        start = time.perf_counter()
        verdict = settle(problem, properties, "bnb")
        elapsed = time.perf_counter() - start
        rows.append({
            "instance": label,
            "required_updates": len(problem.required_updates),
            "result": verdict,
            "expected": expected,
            "seconds": round(elapsed, 4),
            "within_budget": bool(
                verdict == expected and elapsed <= BNB_BUDGET_S
            ),
        })
    return {
        "description": (
            "branch-and-bound (forced-chain bounds, nogood learning, "
            "incumbent seeding) vs IDDFS on the WPE+SLF infeasible clash "
            "family and the n=24 cap instances"
        ),
        "target_infeasible_speedup_at_16": BNB_INFEASIBLE_TARGET_SPEEDUP,
        "clash16_iddfs_ms": round(iddfs_s * 1000, 2),
        "clash16_bnb_ms": round(bnb_s * 1000, 3),
        "infeasible_speedup_at_16": round(speedup, 1),
        "budget_seconds": BNB_BUDGET_S,
        "rows": rows,
        "meets_target": bool(
            speedup >= BNB_INFEASIBLE_TARGET_SPEEDUP
            and all(row["within_budget"] for row in rows)
        ),
    }


def bench_warm_memo() -> dict:
    """Warm repeat of the exact search against the int-keyed verdict memo."""
    problem = reversal_instance(12)
    properties = (Property.RLF,)
    clear_registry()
    cold_s, _ = _time(
        lambda: minimal_round_schedule(problem, properties), repeats=1
    )
    warm_s, _ = _time(
        lambda: minimal_round_schedule(problem, properties), repeats=3
    )
    oracle = oracle_for(problem, properties)
    return {
        "description": "repeat mask BFS on a warm shared oracle memo",
        "cold_ms": round(cold_s * 1000, 2),
        "warm_ms": round(warm_s * 1000, 2),
        "warm_speedup": round(cold_s / warm_s, 1),
        "memo_hits": oracle.stats.memo_hits,
        "memo_misses": oracle.stats.memo_misses,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="~10s subset (fewer repeats), for make bench-smoke",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    started = time.time()
    payload = {
        "benchmark": "exact-search-perf",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "provenance": provenance(),
        "default_max_nodes": DEFAULT_MAX_NODES,
        "results": {},
    }
    print(f"[bench_perf_exact] mode={payload['mode']}")
    for name, fn in (
        ("mask_vs_pr1", lambda: bench_mask_vs_pr1(args.quick)),
        ("cap_lift", lambda: bench_cap_lift(args.quick)),
        ("warm_memo", bench_warm_memo),
        ("bnb", lambda: bench_bnb(args.quick)),
    ):
        section_start = time.time()
        payload["results"][name] = fn()
        print(f"  {name}: {time.time() - section_start:.1f}s")
    payload["wall_seconds"] = round(time.time() - started, 1)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_perf_exact] wrote {args.out} ({payload['wall_seconds']}s)")

    versus = payload["results"]["mask_vs_pr1"]
    cap = payload["results"]["cap_lift"]
    bnb = payload["results"]["bnb"]
    print(
        f"  iddfs speedup at n=12: {versus['iddfs_speedup_at_12']}x "
        f"(target {IDDFS_TARGET_SPEEDUP}x, meets={versus['meets_target']})"
    )
    print(
        f"  cap lift: {[r['instance'] for r in cap['rows'] if r['completed']]} "
        f"completed (meets={cap['meets_target']})"
    )
    print(
        f"  bnb infeasible clash-16: {bnb['infeasible_speedup_at_16']}x over "
        f"iddfs (target {BNB_INFEASIBLE_TARGET_SPEEDUP}x); "
        f"{[r['instance'] for r in bnb['rows'] if r['within_budget']]} within "
        f"{BNB_BUDGET_S}s (meets={bnb['meets_target']})"
    )
    ok = (
        versus["meets_target"]
        and cap["meets_target"]
        and bnb["meets_target"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
