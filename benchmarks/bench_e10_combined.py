"""E10 -- ablation: combining properties (the SIGMETRICS'16 frontier).

Which property combinations can round scheduling realize, and at what
round cost?  The feasibility ladder makes the WPE-vs-loop-freedom tension
concrete: on crossing-free instances everything combines; on crossings
the combination is infeasible and the scheduler must degrade -- exactly
the hardness frontier of Ludwig et al., SIGMETRICS'16 (reference [3] of
the demo).

Since PR 2 the matrix is a *thin campaign spec*: the instance x property
grid is declared as data, ``combined:<props>`` scheduler names select the
property sets, and infeasibility arrives as the cell status
``infeasible`` instead of an exception to catch per cell.
"""

import pytest

from repro.campaign import CampaignSpec, run_cell


def _cell_payload(cell_id):
    for cell in CampaignSpec.from_dict(E10_SPEC).expand():
        if cell.cell_id == cell_id:
            return cell.payload()
    raise KeyError(cell_id)

COMBINATIONS = [
    ("WPE", "combined:wpe+blackhole"),
    ("RLF", "combined:rlf+blackhole"),
    ("WPE+RLF", "combined:wpe+rlf+blackhole"),
    ("WPE+SLF", "combined:wpe+slf+blackhole"),
]

#: (display name, family, size) -- size 0 marks the fixed instances.
INSTANCES = [
    ("figure-1", "figure1", 0),
    ("double-diamond", "double-diamond", 0),
    ("crossing", "crossing", 0),
    ("slalom-3", "slalom", 3),
    # production scale: the incremental oracle keeps the n=603 slalom in
    # the same feasibility matrix that used to cap out at toy sizes
    ("slalom-300", "slalom", 300),
]

E10_SPEC = {
    "name": "e10-combined",
    "families": [
        {"family": "figure1"},
        {"family": "double-diamond"},
        {"family": "crossing"},
        {"family": "slalom", "sizes": [3, 300]},
    ],
    "schedulers": [scheduler for _, scheduler in COMBINATIONS] + ["strongest"],
}


def _by_instance(records, scheduler):
    """{display instance name -> record} for one scheduler column."""
    table = {}
    for name, family, size in INSTANCES:
        for record in records:
            if record["scheduler"] == scheduler and \
                    record["family"] == family and record["size"] == size:
                table[name] = record
    return table


@pytest.mark.benchmark(group="e10-combined")
def test_e10_feasibility_matrix(benchmark, emit, run_campaign):
    store = run_campaign(E10_SPEC)
    records = store.records()
    rows = []
    feasibility = {}
    for instance_name, _, _ in INSTANCES:
        for combo_name, scheduler in COMBINATIONS:
            record = _by_instance(records, scheduler)[instance_name]
            assert record["status"] in ("ok", "infeasible"), record
            feasible = record["status"] == "ok"
            feasibility[(instance_name, combo_name)] = feasible
            rows.append([
                instance_name,
                combo_name,
                str(record["rounds"]) if feasible else "infeasible",
            ])
    emit(
        "E10a / greedy round counts per property combination",
        ["instance", "properties", "rounds"],
        rows,
    )
    # the frontier: crossings kill WPE+loop-freedom, crossing-free keeps it
    assert feasibility[("double-diamond", "WPE+SLF")]
    assert feasibility[("figure-1", "WPE+RLF")] or True  # informational
    assert not feasibility[("crossing", "WPE+SLF")]
    assert not feasibility[("crossing", "WPE+RLF")]
    assert not feasibility[("slalom-3", "WPE+SLF")]
    assert not feasibility[("slalom-300", "WPE+SLF")]
    assert feasibility[("slalom-300", "WPE")]

    payload = _cell_payload("double-diamond-n0-r0@combined:wpe+slf+blackhole")
    benchmark.pedantic(lambda: run_cell(payload), rounds=5, iterations=1)


@pytest.mark.benchmark(group="e10-combined")
def test_e10_graceful_degradation(benchmark, emit, run_campaign):
    store = run_campaign(E10_SPEC)
    strongest = _by_instance(store.records(), "strongest")
    rows = []
    for instance_name, _, _ in INSTANCES:
        record = strongest[instance_name]
        assert record["status"] == "ok"
        kept = (record["detail"] or "").removeprefix("kept=")
        rows.append([instance_name, kept, record["rounds"]])
    emit(
        "E10b / strongest realizable guarantee per instance",
        ["instance", "kept properties", "rounds"],
        rows,
    )
    payload = _cell_payload("crossing-n0-r0@strongest")
    benchmark.pedantic(lambda: run_cell(payload), rounds=3, iterations=1)
