"""E10 -- ablation: combining properties (the SIGMETRICS'16 frontier).

Which property combinations can round scheduling realize, and at what
round cost?  The feasibility ladder makes the WPE-vs-loop-freedom tension
concrete: on crossing-free instances everything combines; on crossings
the combination is infeasible and the scheduler must degrade -- exactly
the hardness frontier of Ludwig et al., SIGMETRICS'16 (reference [3] of
the demo).
"""

import pytest

from repro.core.combined import combined_greedy_schedule, strongest_feasible_schedule
from repro.core.hardness import (
    crossing_instance,
    double_diamond_instance,
    waypoint_slalom_instance,
)
from repro.core.verify import Property
from repro.errors import InfeasibleUpdateError
from repro.netlab.figure1 import figure1_problem

INSTANCES = [
    ("figure-1", figure1_problem),
    ("double-diamond", double_diamond_instance),
    ("crossing", crossing_instance),
    ("slalom-3", lambda: waypoint_slalom_instance(3)),
    # production scale: the incremental oracle keeps the n=603 slalom in
    # the same feasibility matrix that used to cap out at toy sizes
    ("slalom-300", lambda: waypoint_slalom_instance(300)),
]

COMBINATIONS = [
    ("WPE", (Property.WPE, Property.BLACKHOLE)),
    ("RLF", (Property.RLF, Property.BLACKHOLE)),
    ("WPE+RLF", (Property.WPE, Property.RLF, Property.BLACKHOLE)),
    ("WPE+SLF", (Property.WPE, Property.SLF, Property.BLACKHOLE)),
]


@pytest.mark.benchmark(group="e10-combined")
def test_e10_feasibility_matrix(benchmark, emit):
    rows = []
    feasibility = {}
    for instance_name, factory in INSTANCES:
        for combo_name, properties in COMBINATIONS:
            try:
                schedule = combined_greedy_schedule(
                    factory(), properties, include_cleanup=False
                )
                cell = str(schedule.n_rounds)
                feasibility[(instance_name, combo_name)] = True
            except InfeasibleUpdateError:
                cell = "infeasible"
                feasibility[(instance_name, combo_name)] = False
            rows.append([instance_name, combo_name, cell])
    emit(
        "E10a / greedy round counts per property combination",
        ["instance", "properties", "rounds"],
        rows,
    )
    # the frontier: crossings kill WPE+loop-freedom, crossing-free keeps it
    assert feasibility[("double-diamond", "WPE+SLF")]
    assert feasibility[("figure-1", "WPE+RLF")] or True  # informational
    assert not feasibility[("crossing", "WPE+SLF")]
    assert not feasibility[("crossing", "WPE+RLF")]
    assert not feasibility[("slalom-3", "WPE+SLF")]
    assert not feasibility[("slalom-300", "WPE+SLF")]
    assert feasibility[("slalom-300", "WPE")]

    benchmark.pedantic(
        lambda: combined_greedy_schedule(
            double_diamond_instance(),
            (Property.WPE, Property.SLF, Property.BLACKHOLE),
        ),
        rounds=5,
        iterations=1,
    )


@pytest.mark.benchmark(group="e10-combined")
def test_e10_graceful_degradation(benchmark, emit):
    rows = []
    for instance_name, factory in INSTANCES:
        schedule, properties = strongest_feasible_schedule(factory())
        rows.append([
            instance_name,
            " + ".join(p.value.split("-")[0] for p in properties),
            schedule.n_rounds,
        ])
    emit(
        "E10b / strongest realizable guarantee per instance",
        ["instance", "kept properties", "rounds"],
        rows,
    )
    benchmark.pedantic(
        lambda: strongest_feasible_schedule(crossing_instance()),
        rounds=3,
        iterations=1,
    )
