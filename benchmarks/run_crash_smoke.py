"""Crash smoke: a twice-SIGKILLed coordinator must reproduce the pool runner.

Stands up the campaign coordinator as its *own process* behind the REST
surface, points a healthy 2-worker process fleet at it, and kills the
coordinator twice mid-campaign on a deterministic schedule
(:class:`~repro.campaign.fabric.CoordinatorKillSchedule`): SIGKILL right
after the Nth accept is write-ahead journaled but before it is
acknowledged or flushed -- the exact window the fabric journal exists to
cover -- then restart the coordinator on the same port after a delay.
Workers ride out each outage by reconnecting with capped exponential
backoff and resubmitting their undelivered records.

Gates (non-zero exit on any miss, so it can gate CI):

* the final ``results.jsonl`` is byte-identical to a 1-worker
  :class:`~repro.campaign.runner.CampaignRunner` baseline;
* no cell with a journaled accept was ever executed twice: every
  ``campaign.cell`` run span must *start* before the cell's settlement
  (its accepted submit, or the recovery event standing in for an ack
  that died with the old coordinator);
* every recovery actually recovered: both restarts re-admit >= 1
  journaled-but-unflushed shard (``fabric.recovered`` trace events);
* all 42 cell lifecycles reconstruct from the merged trace
  (:func:`repro.obs.verify_lifecycles`);
* the write-ahead journal stays bounded by its compaction interval.

Usage::

    PYTHONPATH=src python benchmarks/run_crash_smoke.py [--root DIR]
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import socket
import sys
import tempfile
import time

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.fabric import CoordinatorKillSchedule, worker_main
from repro.campaign.fabric.journal import JOURNAL
from repro.campaign.store import RunStore
from repro.obs import (
    load_trace,
    reconstruct_cell_lifecycles,
    verify_lifecycles,
)

SPEC = {
    "name": "crash-smoke",
    "seed": 42,
    "schedulers": ["peacock", "greedy-slf", "wayup"],
    "timeout_s": 30,
    "families": [
        {"family": "reversal", "sizes": [6, 10, 14, 18]},
        {"family": "sawtooth", "sizes": [10, 14, 18]},
        {"family": "slalom", "sizes": [2, 4, 6]},
        {"family": "random-update", "sizes": [8, 12], "repeats": 2},
    ],
}

#: Two mid-campaign coordinator deaths, then a clean final incarnation.
KILLS = [
    CoordinatorKillSchedule(kill_after_accepts=5, restart_delay_s=1.0),
    CoordinatorKillSchedule(kill_after_accepts=8, restart_delay_s=1.0),
]

JOURNAL_COMPACT_EVERY = 64
N_WORKERS = 2


def serve_once(
    root: str, port: int, kill_after_accepts: int | None, timeout_s: float
) -> None:
    """One coordinator incarnation (process entry point).

    Serves the campaign -- recovering from the fabric journal when a
    previous incarnation died over the same run directory -- *before*
    binding the port, so workers never reach a served-less server.  With
    a kill configured the process SIGKILLs itself mid-accept and never
    returns; otherwise it exits 0 once the campaign completes.
    """
    from repro.rest.api import build_campaign_api
    from repro.rest.http_binding import RestHttpServer

    spec = CampaignSpec.from_dict(SPEC)
    api = build_campaign_api(campaign_root=root)
    body: dict = {
        "spec": spec.to_dict(),
        "lease_ttl_s": 1.0,
        "heartbeat_interval_s": 0.2,
        "lease_cells": 4,
        "journal_compact_every": JOURNAL_COMPACT_EVERY,
    }
    if kill_after_accepts is not None:
        body["chaos"] = {
            "kill_after_accepts": kill_after_accepts,
            "kill_mode": "sigkill",
        }
    api.campaigns.serve(body)
    coordinator = api.campaigns.fabric(spec.campaign_id)
    server = RestHttpServer(api, port=port)
    server.start()
    try:
        finished = coordinator.wait(timeout_s=timeout_s)
    finally:
        server.stop()
        api.campaigns.close()
    sys.exit(0 if finished else 3)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _span_start(record: dict) -> float:
    """Span records carry their *end* time; recover the start."""
    return float(record["ts"]) - float(record.get("dur_ms", 0.0)) / 1000.0


def check_no_rerun_after_settle(records: list[dict]) -> list[str]:
    """No ``campaign.cell`` run may start after the cell settled.

    Settlement time is the earliest accepted ``fabric.submit`` span end,
    or -- when the accept's ack died with the killed coordinator -- the
    ``fabric.recovered_cell`` event that re-admitted the journaled shard.
    A run starting later would mean a journaled accept was re-executed.
    """
    settled_at: dict[str, float] = {}
    for record in records:
        cell_id = (record.get("attrs") or {}).get("cell_id")
        if not isinstance(cell_id, str):
            continue
        name = record.get("name")
        when = None
        if (
            name == "fabric.submit"
            and (record.get("attrs") or {}).get("outcome") == "accepted"
        ):
            when = float(record["ts"])
        elif name == "fabric.recovered_cell":
            when = float(record["ts"])
        if when is not None:
            settled_at[cell_id] = min(
                settled_at.get(cell_id, when), when
            )
    problems = []
    for record in records:
        if record.get("name") != "campaign.cell":
            continue
        cell_id = (record.get("attrs") or {}).get("cell_id")
        settle = settled_at.get(cell_id)
        if settle is None:
            continue
        started = _span_start(record)
        if started > settle + 0.05:
            problems.append(
                f"{cell_id}: run started {started - settle:.2f}s after its "
                "accept was journaled (re-executed settled work)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="work directory (default: a fresh temp dir)")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)
    root = args.root or tempfile.mkdtemp(prefix="crash-smoke-")

    spec = CampaignSpec.from_dict(SPEC)
    n_cells = len(spec.expand())
    print(f"crash-smoke: {n_cells} cells -> {root}")

    print("running 1-worker pool baseline ...")
    runner = CampaignRunner(spec, root=f"{root}/baseline", workers=1)
    runner.run()
    baseline = runner.store.results_bytes()

    # every spawned process (coordinator incarnations + workers) inherits
    # the env var and writes its own traces/trace-<pid>.jsonl
    trace_dir = f"{root}/traces"
    os.environ["REPRO_TRACE_DIR"] = trace_dir

    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    fleet_root = f"{root}/fleet"
    ctx = multiprocessing.get_context("spawn")

    schedule = [entry.kill_after_accepts for entry in KILLS] + [None]
    print(f"fleet: {N_WORKERS} workers on {url}; coordinator kill "
          f"schedule: {[e.to_dict() for e in KILLS]}")

    workers = [
        ctx.Process(
            target=worker_main, args=(url, spec.campaign_id),
            kwargs={"name": f"steady{i}", "max_offline_s": 60.0},
            daemon=True,
        )
        for i in range(N_WORKERS)
    ]
    failures: list[str] = []
    exitcodes: list[int | None] = []
    try:
        started_workers = False
        for incarnation, kill_after in enumerate(schedule, start=1):
            label = (
                f"kill after {kill_after} accepts"
                if kill_after is not None else "run to completion"
            )
            print(f"coordinator incarnation {incarnation}: {label} ...")
            coord = ctx.Process(
                target=serve_once,
                args=(fleet_root, port, kill_after, args.timeout),
                daemon=True,
            )
            coord.start()
            if not started_workers:
                # workers knock until the first incarnation answers
                for worker in workers:
                    worker.start()
                started_workers = True
            coord.join(timeout=args.timeout)
            if coord.is_alive():  # wedged incarnation: fail loudly
                coord.kill()
                coord.join(timeout=10)
                failures.append(
                    f"incarnation {incarnation} hung past {args.timeout}s"
                )
                break
            exitcodes.append(coord.exitcode)
            if kill_after is not None:
                if coord.exitcode != -9:
                    failures.append(
                        f"incarnation {incarnation} exited {coord.exitcode}, "
                        "expected SIGKILL (-9)"
                    )
                    break
                time.sleep(KILLS[incarnation - 1].restart_delay_s)
            elif coord.exitcode != 0:
                failures.append(
                    f"final incarnation exited {coord.exitcode}"
                )
        for worker in workers:
            worker.join(timeout=30)
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
        os.environ.pop("REPRO_TRACE_DIR", None)
    print(f"coordinator exitcodes: {exitcodes} (expect [-9, -9, 0])")

    store = RunStore(fleet_root, spec.campaign_id)
    status = store.status()
    fleet_bytes = store.results_bytes()
    if status["done"] != n_cells:
        failures.append(f"{status['done']}/{n_cells} cells done")
    if fleet_bytes != baseline:
        failures.append(
            "fleet results.jsonl differs from 1-worker baseline"
        )

    journal_lines = 0
    journal_path = os.path.join(store.directory, JOURNAL)
    if os.path.exists(journal_path):
        with open(journal_path, encoding="utf-8") as handle:
            journal_lines = sum(1 for line in handle if line.strip())
    print(f"journal tail after completion: {journal_lines} records "
          f"(compaction interval {JOURNAL_COMPACT_EVERY})")
    if journal_lines > JOURNAL_COMPACT_EVERY:
        failures.append(
            f"journal has {journal_lines} records; compaction should bound "
            f"it at {JOURNAL_COMPACT_EVERY}"
        )

    records = load_trace(trace_dir)
    lifecycles = reconstruct_cell_lifecycles(records)
    recoveries = [
        record for record in records
        if record.get("name") == "fabric.recovered"
    ]
    recovered_cells = sum(
        1 for c in lifecycles.values() if c.recovered
    )
    print(
        f"trace: {len(records)} records, {len(lifecycles)} cell "
        f"lifecycles, {len(recoveries)} recoveries, "
        f"{recovered_cells} cells re-admitted from the journal"
    )
    if len(recoveries) != len(KILLS):
        failures.append(
            f"{len(recoveries)} fabric.recovered events, expected "
            f"{len(KILLS)} (one per restart)"
        )
    for ordinal, event in enumerate(recoveries, start=1):
        buffered = (event.get("attrs") or {}).get("buffered", 0)
        if not buffered:
            failures.append(
                f"recovery #{ordinal} re-admitted no buffered shards; the "
                "kill lands on a journaled-but-unflushed accept"
            )
    expected = [cell.cell_id for cell in spec.expand()]
    for problem in verify_lifecycles(records, expected):
        failures.append(f"trace: {problem}")
    failures.extend(check_no_rerun_after_settle(records))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"crash-smoke OK: {n_cells} cells survived {len(KILLS)} "
          "coordinator SIGKILLs byte-identical to the 1-worker baseline; "
          "no journaled accept was re-executed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
