"""Churn smoke: the online controller must stay clean under churn.

Drives a small arrival-rate grid of fat-tree churn traces through the
online controller and gates on the subsystem's three contracts:

* **quiescence** -- every run settles every request (arrivals,
  cancellations, link-failure re-plans and restorations included);
* **safety** -- in scheduled mode the dataplane probe checker counts
  zero transient violations (waypoint bypasses, loops, blackholes),
  while the unscheduled one-shot baseline on the same traces shows a
  nonzero count (the gap is the paper's point);
* **determinism** -- two same-seed runs produce byte-identical metrics
  JSON.

Non-zero exit on any miss, so it can gate CI (``make churn-smoke``).

Usage::

    PYTHONPATH=src python benchmarks/run_churn_smoke.py
"""

from __future__ import annotations

import json
import sys

from repro.churn import ChurnPolicy, generate_trace, run_churn

#: (rate_per_s, duration_ms) arrival grid; fat-tree k=4, seeds both used.
GRID = [(25.0, 300.0), (50.0, 300.0), (100.0, 300.0)]
SEEDS = [7, 11]


def metrics_bytes(seed: int, rate: float, duration: float, scheduled: bool) -> bytes:
    trace = generate_trace(
        "fat-tree", 4, seed, rate_per_s=rate, duration_ms=duration
    )
    metrics = run_churn(trace, ChurnPolicy(scheduled=scheduled))
    return json.dumps(metrics.to_dict(), sort_keys=True).encode("utf-8")


def main() -> int:
    failures = []
    baseline_violations = 0
    for seed in SEEDS:
        for rate, duration in GRID:
            name = f"fat-tree/4 seed={seed} rate={rate:g}/s"
            first = metrics_bytes(seed, rate, duration, scheduled=True)
            second = metrics_bytes(seed, rate, duration, scheduled=True)
            if first != second:
                failures.append(f"{name}: same-seed runs differ")
            summary = json.loads(first)
            if not summary["quiescent"]:
                failures.append(f"{name}: did not reach quiescence")
            if summary["transient_violations"]:
                failures.append(
                    f"{name}: {summary['transient_violations']} transient "
                    "violations in scheduled mode"
                )
            print(
                f"{name}: arrivals={summary['arrivals']} "
                f"rounds={summary['rounds_issued']} replans={summary['replans']} "
                f"restorations={summary['restorations']} "
                f"violations={summary['transient_violations']} "
                f"ttq={summary['time_to_quiescence_ms']:.1f}ms"
            )
    # the unscheduled baseline must show why scheduling exists
    for seed in SEEDS:
        rate, duration = GRID[1]
        unscheduled = json.loads(
            metrics_bytes(seed, rate, duration, scheduled=False)
        )
        if not unscheduled["quiescent"]:
            failures.append(f"baseline seed={seed}: did not reach quiescence")
        baseline_violations += unscheduled["transient_violations"]
    print(f"unscheduled baseline violations: {baseline_violations}")
    if baseline_violations == 0:
        failures.append("unscheduled baseline shows zero violations")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"churn-smoke OK: {len(SEEDS) * len(GRID)} scheduled runs quiescent, "
        "zero violations, byte-identical across same-seed runs; "
        f"baseline shows {baseline_violations} violations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
