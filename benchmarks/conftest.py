"""Shared reporting helpers for the benchmark suite.

Every benchmark prints its paper-table analogue through :func:`emit` and
also appends it to ``benchmarks/results/tables.txt`` so the regenerated
tables survive pytest's output capture.  EXPERIMENTS.md records a
reference run of these tables.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _emit(title: str, headers, rows) -> str:
    from repro.metrics.report import ascii_table

    table = ascii_table(headers, rows, title=title)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "tables.txt", "a", encoding="utf-8") as handle:
        handle.write(table + "\n\n")
    print("\n" + table)
    return table


@pytest.fixture(scope="session")
def emit():
    """Print + persist an experiment table."""
    return _emit


@pytest.fixture(scope="session")
def run_campaign(tmp_path_factory):
    """Execute a campaign spec dict inline; returns the populated RunStore.

    Session-scoped on a shared root: tests reusing a spec (E3's throughput
    probe, E10's two views) resume the finished run instead of re-executing
    minutes of scheduling.
    """
    root = str(tmp_path_factory.mktemp("campaigns"))

    def _run(spec_dict, workers=1):
        from repro.campaign import CampaignRunner, CampaignSpec

        spec = CampaignSpec.from_dict(spec_dict)
        runner = CampaignRunner(spec, root=root, workers=workers)
        runner.run()
        return runner.store

    return _run


@pytest.fixture(scope="session", autouse=True)
def _fresh_results():
    RESULTS_DIR.mkdir(exist_ok=True)
    tables = RESULTS_DIR / "tables.txt"
    if tables.exists():
        tables.unlink()
    yield
