"""E7 -- extension: updating multiple policies (DSN'16 direction).

Isolated per-flow policies merge round-by-round, so k concurrent updates
finish in max-of-rounds, not sum-of-rounds; shared destination-based
rules need a joint schedule that every policy accepts.  The table shows
both effects plus the joint scheduler's throughput.
"""

import pytest

from repro.core.multipolicy import (
    JointUpdateProblem,
    greedy_joint_schedule,
    merge_isolated_schedules,
    verify_joint_schedule,
)
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateProblem
from repro.core.verify import Property


def _isolated_policies(k: int) -> list[UpdateProblem]:
    """k independent reversal-flavoured policies over disjoint node sets."""
    policies = []
    for index in range(k):
        base = 100 * index
        old = [base + i for i in range(1, 7)]
        new = [old[0], old[4], old[3], old[2], old[1], old[5]]
        policies.append(UpdateProblem(old, new, name=f"flow-{index}"))
    return policies


def _shared_policies(k: int) -> JointUpdateProblem:
    """k sources sharing the tail 3-4/5-6 towards destination 6."""
    policies = []
    for index in range(k):
        source = 10 + index
        policies.append(
            UpdateProblem(
                [source, 3, 4, 6], [source, 3, 5, 6], name=f"src-{source}"
            )
        )
    return JointUpdateProblem(policies)


@pytest.mark.benchmark(group="e7-multipolicy")
def test_e7_isolated_merge_scaling(benchmark, emit):
    rows = []
    for k in (1, 2, 4, 8, 16):
        schedules = [
            peacock_schedule(policy, include_cleanup=False)
            for policy in _isolated_policies(k)
        ]
        plan = merge_isolated_schedules(schedules)
        sequential_rounds = sum(s.n_rounds for s in schedules)
        rows.append([
            k, plan.total_updates(), sequential_rounds, plan.n_rounds,
        ])
    emit(
        "E7a / k isolated policies: merged vs sequential rounds",
        ["policies", "rule changes", "sequential rounds", "merged rounds"],
        rows,
    )
    assert all(row[3] <= row[2] for row in rows)
    assert rows[-1][3] == rows[0][3]  # merging keeps rounds constant

    benchmark.pedantic(
        lambda: merge_isolated_schedules(
            [peacock_schedule(p, include_cleanup=False)
             for p in _isolated_policies(16)]
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="e7-multipolicy")
def test_e7_shared_rules_joint_schedule(benchmark, emit):
    rows = []
    for k in (1, 2, 4, 8):
        joint = _shared_policies(k)
        schedule = greedy_joint_schedule(
            joint, properties=(Property.RLF, Property.BLACKHOLE)
        )
        report = verify_joint_schedule(
            joint, schedule, properties=(Property.RLF, Property.BLACKHOLE)
        )
        rows.append([
            k, len(joint.required_updates), schedule.n_rounds, report.ok,
        ])
    emit(
        "E7b / k policies on shared destination-based rules",
        ["policies", "shared updates", "joint rounds", "safe for all"],
        rows,
    )
    assert all(row[3] for row in rows)
    # shared rules: round count independent of k (one rule set flips once)
    assert rows[-1][2] == rows[0][2]

    benchmark.pedantic(
        lambda: greedy_joint_schedule(
            _shared_policies(8), properties=(Property.RLF, Property.BLACKHOLE)
        ),
        rounds=3,
        iterations=1,
    )
