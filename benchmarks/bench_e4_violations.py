"""E4 -- transient violations under asynchrony (the demo's motivation).

One-shot updates under an asynchronous control channel let packets bypass
the firewall, loop, and blackhole; the schedulers eliminate the violation
class they promise to.  The table sweeps channel jitter; expected shape:

* one-shot violations grow with jitter,
* WayUp: zero bypasses at any jitter (loops allowed -- not its contract),
* Peacock: zero loops at any jitter (bypasses allowed),
* two-phase: zero everything (at 2x rule cost).
"""

import pytest

from repro.netlab.figure1 import run_figure1

JITTER = [("const 0.5ms", "0.5"), ("uniform 0.5-4ms", "uniform:0.5:4"),
          ("uniform 0.5-10ms", "uniform:0.5:10")]
SEEDS = range(4)


def _totals(algorithm: str, latency: str) -> dict:
    bypass = loop = drop = injected = 0
    for seed in SEEDS:
        result = run_figure1(
            algorithm=algorithm, seed=seed, channel_latency=latency
        )
        counters = result.traffic.counters
        bypass += counters.bypassed_waypoint
        loop += counters.looped
        drop += counters.dropped
        injected += counters.injected
    return {"bypass": bypass, "loop": loop, "drop": drop, "injected": injected}


@pytest.mark.benchmark(group="e4-violations")
def test_e4_violation_matrix(benchmark, emit):
    rows = []
    results = {}
    for jitter_name, latency in JITTER:
        for algorithm in ("oneshot", "wayup", "peacock", "two-phase"):
            totals = _totals(algorithm, latency)
            results[(jitter_name, algorithm)] = totals
            rows.append([
                jitter_name, algorithm, totals["injected"],
                totals["bypass"], totals["loop"], totals["drop"],
            ])
    emit(
        "E4 / transient violations vs channel jitter (4 seeds each)",
        ["channel", "algorithm", "probes", "fw bypass", "loops", "drops"],
        rows,
    )
    for jitter_name, _ in JITTER:
        assert results[(jitter_name, "wayup")]["bypass"] == 0
        assert results[(jitter_name, "wayup")]["drop"] == 0
        assert results[(jitter_name, "peacock")]["loop"] == 0
        assert results[(jitter_name, "two-phase")]["bypass"] == 0
        assert results[(jitter_name, "two-phase")]["loop"] == 0
    heavy = results[("uniform 0.5-10ms", "oneshot")]
    assert heavy["bypass"] + heavy["loop"] + heavy["drop"] > 0

    benchmark.pedantic(
        lambda: run_figure1(
            algorithm="oneshot", seed=0, channel_latency="uniform:0.5:10"
        ),
        rounds=3,
        iterations=1,
    )
