"""E3 -- round counts: the algorithmic separation the demo demonstrates.

WayUp finishes any waypointed update in a constant number of rounds
(HotNets'14); Peacock's relaxed loop freedom needs few rounds where any
strong-loop-free schedule needs Theta(n) (PODC'15).  We regenerate the
round-count curves on the adversarial families and cross-check small
instances against the exact minimum-round search.
"""

import pytest

from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.hardness import (
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.optimal import minimal_round_count
from repro.core.peacock import peacock_schedule
from repro.core.verify import Property
from repro.core.wayup import wayup_schedule


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_reversal_round_scaling(benchmark, emit):
    rows = []
    for n in (6, 10, 20, 50, 100, 200, 500, 1000, 2000):
        problem = reversal_instance(n)
        peacock = peacock_schedule(problem, include_cleanup=False)
        greedy = greedy_slf_schedule(problem, include_cleanup=False)
        optimal_rlf = (
            minimal_round_count(problem, (Property.RLF,)) if n <= 10 else "-"
        )
        rows.append([n, peacock.n_rounds, optimal_rlf, greedy.n_rounds, n - 2])
    emit(
        "E3a / rounds on the reversal family (RLF constant, SLF linear)",
        ["n", "peacock (RLF)", "optimal RLF", "greedy (SLF)", "SLF bound"],
        rows,
    )
    assert all(row[1] == 3 for row in rows)
    assert all(row[3] == row[4] for row in rows)

    benchmark.pedantic(
        lambda: peacock_schedule(reversal_instance(100), include_cleanup=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_sawtooth_interpolation(benchmark, emit):
    n = 26
    rows = []
    for block in (1, 2, 4, 8, 12, 24):
        problem = sawtooth_instance(n, block=block)
        if not problem.required_updates:
            rows.append([block, 0, 0])
            continue
        peacock = peacock_schedule(problem, include_cleanup=False)
        greedy = greedy_slf_schedule(problem, include_cleanup=False)
        rows.append([block, peacock.n_rounds, greedy.n_rounds])
    emit(
        f"E3b / rounds on sawtooth instances (n={n}) vs tooth size",
        ["tooth size", "peacock (RLF)", "greedy (SLF)"],
        rows,
    )
    # bigger teeth hurt SLF far more than RLF
    assert rows[-1][2] > rows[-1][1]

    benchmark.pedantic(
        lambda: greedy_slf_schedule(sawtooth_instance(n, 12), include_cleanup=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_wayup_constant_rounds(benchmark, emit):
    rows = []
    for k in (1, 2, 4, 8, 16, 32):
        schedule = wayup_schedule(waypoint_slalom_instance(k), include_cleanup=False)
        rows.append([2 * k + 3, k, schedule.n_rounds])
    emit(
        "E3c / WayUp rounds on waypoint slaloms (constant in n)",
        ["n", "crossings k", "wayup rounds"],
        rows,
    )
    assert max(row[2] for row in rows) <= 5

    benchmark.pedantic(
        lambda: wayup_schedule(waypoint_slalom_instance(32)),
        rounds=5,
        iterations=1,
    )


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_scheduler_throughput_large(benchmark):
    """Scheduler cost on a 2000-node reversal (exact RLF, incremental oracle)."""
    problem = reversal_instance(2000)
    schedule = benchmark.pedantic(
        lambda: peacock_schedule(problem, include_cleanup=False),
        rounds=3,
        iterations=1,
    )
    assert schedule.n_rounds <= 5
