"""E3 -- round counts: the algorithmic separation the demo demonstrates.

WayUp finishes any waypointed update in a constant number of rounds
(HotNets'14); Peacock's relaxed loop freedom needs few rounds where any
strong-loop-free schedule needs Theta(n) (PODC'15).  We regenerate the
round-count curves on the adversarial families and cross-check small
instances against the exact minimum-round search.

Since PR 2 these experiments are *thin campaign specs*: the scenario grid
is declared as data and executed by :mod:`repro.campaign`, and the tables
are read back from the run directory's records -- the same engine (and the
same records) a ``repro campaign run`` would produce.
"""

import pytest

from repro.campaign import run_cell

E3A_SIZES = (6, 10, 20, 50, 100, 200, 500, 1000, 2000)
E3A_EXACT_SIZES = (6, 10)  # exact minimum-round search stays exponential

E3A_SPEC = {
    "name": "e3a-reversal",
    "families": [
        {"family": "reversal", "sizes": list(E3A_SIZES)},
        {
            "family": "reversal",
            "sizes": list(E3A_EXACT_SIZES),
            "schedulers": ["optimal:rlf"],
        },
    ],
    "schedulers": ["peacock", "greedy-slf"],
}

E3B_N = 26
E3B_SPEC = {
    "name": "e3b-sawtooth",
    "families": [
        {
            "family": "sawtooth",
            "sizes": [E3B_N],
            "grid": {"block": [1, 2, 4, 8, 12, 24]},
        }
    ],
    "schedulers": ["peacock", "greedy-slf"],
}

E3C_SPEC = {
    "name": "e3c-slalom",
    "families": [{"family": "slalom", "sizes": [1, 2, 4, 8, 16, 32]}],
    "schedulers": ["wayup"],
}


def _rounds(records, scheduler, **match):
    """Index campaign records: {size-or-param -> rounds} for one scheduler."""
    table = {}
    for record in records:
        if record["scheduler"] != scheduler:
            continue
        if any(record.get(key) != value for key, value in match.items()):
            continue
        table[record["size"]] = record["rounds"]
    return table


def _cell_payload(store, cell_id):
    """Rebuild one cell's worker payload from the run directory (for perf)."""
    from repro.campaign import CampaignSpec

    spec = CampaignSpec.from_dict(store.manifest()["spec"])
    for cell in spec.expand():
        if cell.cell_id == cell_id:
            return cell.payload()
    raise KeyError(cell_id)


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_reversal_round_scaling(benchmark, emit, run_campaign):
    store = run_campaign(E3A_SPEC)
    records = store.records()
    peacock = _rounds(records, "peacock")
    greedy = _rounds(records, "greedy-slf")
    optimal = _rounds(records, "optimal:rlf")
    rows = [
        [n, peacock[n], optimal.get(n, "-"), greedy[n], n - 2]
        for n in E3A_SIZES
    ]
    emit(
        "E3a / rounds on the reversal family (RLF constant, SLF linear)",
        ["n", "peacock (RLF)", "optimal RLF", "greedy (SLF)", "SLF bound"],
        rows,
    )
    assert all(record["status"] == "ok" for record in records)
    assert all(peacock[n] == 3 for n in E3A_SIZES)
    assert all(greedy[n] == n - 2 for n in E3A_SIZES)
    assert all(optimal[n] == 3 for n in E3A_EXACT_SIZES)

    # engine cost of one mid-size cell, instance construction included
    payload = _cell_payload(store, "reversal-n100-r0@peacock")
    benchmark.pedantic(lambda: run_cell(payload), rounds=3, iterations=1)


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_sawtooth_interpolation(benchmark, emit, run_campaign):
    store = run_campaign(E3B_SPEC)
    records = store.records()
    rows = []
    for block in (1, 2, 4, 8, 12, 24):
        cells = [r for r in records if r["id"].startswith(f"sawtooth-block{block}-")]
        peacock = next(r for r in cells if r["scheduler"] == "peacock")
        greedy = next(r for r in cells if r["scheduler"] == "greedy-slf")
        # block=1 keeps the old order: every node a no-op, zero rounds
        assert (peacock["status"] == "noop") == (block == 1)
        rows.append([block, peacock["rounds"], greedy["rounds"]])
    emit(
        f"E3b / rounds on sawtooth instances (n={E3B_N}) vs tooth size",
        ["tooth size", "peacock (RLF)", "greedy (SLF)"],
        rows,
    )
    # bigger teeth hurt SLF far more than RLF
    assert rows[-1][2] > rows[-1][1]

    payload = _cell_payload(store, "sawtooth-block12-n26-r0@greedy-slf")
    benchmark.pedantic(lambda: run_cell(payload), rounds=3, iterations=1)


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_wayup_constant_rounds(benchmark, emit, run_campaign):
    store = run_campaign(E3C_SPEC)
    wayup = _rounds(store.records(), "wayup")
    rows = [[2 * k + 3, k, wayup[k]] for k in (1, 2, 4, 8, 16, 32)]
    emit(
        "E3c / WayUp rounds on waypoint slaloms (constant in n)",
        ["n", "crossings k", "wayup rounds"],
        rows,
    )
    assert max(row[2] for row in rows) <= 5

    payload = _cell_payload(store, "slalom-n32-r0@wayup")
    benchmark.pedantic(lambda: run_cell(payload), rounds=5, iterations=1)


@pytest.mark.benchmark(group="e3-rounds")
def test_e3_scheduler_throughput_large(benchmark, run_campaign):
    """Scheduler cost on a 2000-node reversal (exact RLF, incremental oracle)."""
    store = run_campaign(E3A_SPEC)
    payload = _cell_payload(store, "reversal-n2000-r0@peacock")
    record, _ = benchmark.pedantic(
        lambda: run_cell(payload), rounds=3, iterations=1
    )
    assert record["status"] == "ok" and record["rounds"] <= 5
